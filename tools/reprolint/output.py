"""Diagnostic renderers: human text, machine JSON, and SARIF 2.1.0.

The text form is what a developer reads in a terminal; JSON is for ad-hoc
scripting (one object per diagnostic, stable keys); SARIF is the
interchange format GitHub code scanning ingests, so CI can surface
reprolint findings as inline PR annotations instead of a log to scroll.
Only the minimal SARIF subset those consumers need is emitted — one run,
one rule descriptor per distinct rule, one result per diagnostic.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from reprolint.diagnostics import Diagnostic

FORMATS = ("text", "json", "sarif")

#: One-line rule descriptions for SARIF rule metadata; derived lazily from
#: the registry so new rules never need a second catalogue entry here.
_EXTRA_RULE_DOCS = {
    "R0": "'# reprolint: ok' comments must carry a reason",
    "E0": "file does not parse",
}


def _rule_docs() -> Dict[str, str]:
    from reprolint.rules import ALL_RULES, TREE_RULES

    docs = dict(_EXTRA_RULE_DOCS)
    for cls in (*ALL_RULES, *TREE_RULES):
        doc = (cls.__doc__ or "").strip().splitlines()
        docs[cls.rule_id] = doc[0] if doc else cls.symbol
    return docs


def render_text(diagnostics: Sequence[Diagnostic]) -> str:
    lines = [diag.format() for diag in diagnostics]
    n = len(diagnostics)
    lines.append(f"reprolint: {n} finding{'s' if n != 1 else ''}")
    return "\n".join(lines)


def render_json(diagnostics: Sequence[Diagnostic]) -> str:
    payload = [
        {
            "path": d.path,
            "line": d.line,
            "col": d.col,
            "rule": d.rule,
            "symbol": d.symbol,
            "message": d.message,
        }
        for d in diagnostics
    ]
    return json.dumps(payload, indent=2)


def render_sarif(diagnostics: Sequence[Diagnostic]) -> str:
    from reprolint import __version__

    docs = _rule_docs()
    rule_ids = sorted({d.rule for d in diagnostics} | set(docs))
    rule_index = {rid: i for i, rid in enumerate(rule_ids)}
    rules: List[dict] = [
        {
            "id": rid,
            "shortDescription": {"text": docs.get(rid, rid)},
            "defaultConfiguration": {
                "level": "error" if rid == "E0" else "warning",
            },
        }
        for rid in rule_ids
    ]
    results = [
        {
            "ruleId": d.rule,
            "ruleIndex": rule_index[d.rule],
            "level": "error" if d.rule == "E0" else "warning",
            "message": {"text": f"{d.symbol}: {d.message}"},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": d.path.replace("\\", "/"),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": d.line,
                            "startColumn": d.col,
                        },
                    }
                }
            ],
        }
        for d in diagnostics
    ]
    sarif = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "version": __version__,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(sarif, indent=2)


def render(diagnostics: Sequence[Diagnostic], fmt: str) -> str:
    if fmt == "text":
        return render_text(diagnostics)
    if fmt == "json":
        return render_json(diagnostics)
    if fmt == "sarif":
        return render_sarif(diagnostics)
    raise ValueError(f"unknown format {fmt!r}; expected one of {FORMATS}")


__all__ = ["FORMATS", "render", "render_json", "render_sarif", "render_text"]

"""reprolint — project-specific AST lint rules for the repro codebase.

The paper's guarantees (Rosenthal potential descent, the Eq. 7 capacity
split, the ``2*delta*kappa`` Appro bound) only hold in code when three
repo-wide disciplines hold:

* every stochastic path goes through :func:`repro.utils.rng.as_rng` /
  :func:`repro.utils.rng.spawn` (bit-identical replay);
* every capacity/cost feasibility comparison uses the shared
  ``CAPACITY_EPS`` slack (an epsilon mismatch between layers silently
  flips equilibria);
* everything handed to ``ParallelSweepRunner`` pickles.

reprolint enforces those disciplines mechanically.  Run it as::

    python -m reprolint src tests

Rules
-----
R1  raw-random        ``random.*`` / ``np.random.default_rng`` /
                      ``np.random.seed`` outside ``utils/rng.py``
R2  capacity-epsilon  bare float ``==``/``<=``/``>=`` against
                      capacity/load/cost/budget expressions
R3  sweep-pickle      lambdas / closures passed as sweep builders
R4  stable-order      mutable default arguments; iteration over
                      ``set(...)`` of players/cloudlets/resources
R5  rng-plumbing      public stochastic APIs without an ``rng``/``seed``
                      parameter
R6  market-mutation   direct market/cloudlet attribute writes that bypass
                      ``ServiceMarket.apply(MarketDelta(...))``
R7  swallowed-error   bare/broad ``except`` that silences failures
R8  worker-purity     impurity (global/nonlocal mutation, module RNG,
                      unpicklable captures) reachable from worker dispatch
                      — a whole-tree call-graph rule
R9  array-escape      in-place writes to ``CompiledMarket``/``CompiledGame``
                      tables off the build/``apply_delta`` path; accessors
                      leaking writable internals
R10 delta-atomicity   state writes preceding validation inside
                      ``apply``/``apply_delta``
R0  suppression       a ``# reprolint: ok`` escape hatch without a
                      justification

Suppress a diagnostic with an inline comment carrying a reason::

    occ[r] <= capacity  # reprolint: ok[R2] occupancy counts are exact ints

See ``docs/static_analysis.md`` for the full rule catalogue.
"""

from reprolint.diagnostics import Diagnostic
from reprolint.engine import lint_file, lint_paths, lint_source, lint_sources
from reprolint.project import ProjectContext, build_project
from reprolint.rules import ALL_RULES, TREE_RULES

__version__ = "2.0.0"

__all__ = [
    "ALL_RULES",
    "TREE_RULES",
    "Diagnostic",
    "ProjectContext",
    "__version__",
    "build_project",
    "lint_file",
    "lint_paths",
    "lint_source",
    "lint_sources",
]

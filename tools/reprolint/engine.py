"""File discovery, rule execution and suppression filtering.

The engine parses each file exactly once: the resulting trees feed both
the per-file rules (R1–R7, R9, R10) and, through
:class:`reprolint.project.ProjectContext`, the whole-tree rules (R8)
that need resolved call edges across module boundaries.  Suppression
comments are honoured uniformly — a tree rule's diagnostic lands in the
file that contains the flagged node, and that file's
``# reprolint: ok[Rn]`` table is what filters it.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple, Type

from reprolint.diagnostics import Diagnostic
from reprolint.project import ProjectContext, build_project
from reprolint.rules import ALL_RULES, TREE_RULES
from reprolint.rules.base import Rule
from reprolint.suppress import SuppressionTable

#: Directory names never descended into.
_SKIP_DIRS = {".git", "__pycache__", ".mypy_cache", ".ruff_cache", "build", "dist"}


def iter_python_files(paths: Sequence[str]) -> Iterable[Path]:
    """Expand files/directories into a deterministic list of ``.py`` files."""
    for raw in paths:
        p = Path(raw)
        if p.is_file() and p.suffix == ".py":
            yield p
        elif p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    yield sub


def _select(rules: Optional[Sequence[str]]) -> List[Type[Rule]]:
    if not rules:
        return list(ALL_RULES)
    wanted = {r.upper() for r in rules}
    return [cls for cls in ALL_RULES if cls.rule_id in wanted]


def _select_tree(rules: Optional[Sequence[str]]) -> list:
    if not rules:
        return list(TREE_RULES)
    wanted = {r.upper() for r in rules}
    return [cls for cls in TREE_RULES if cls.rule_id in wanted]


def lint_sources(
    sources: Sequence[Tuple[str, str]],
    rules: Optional[Sequence[str]] = None,
) -> List[Diagnostic]:
    """Lint ``(path, source)`` pairs as one project; the core entry point.

    Files that fail to parse produce an E0 diagnostic and sit out both
    passes; everything else is parsed once and shared between the
    per-file rules and the whole-tree pass.
    """
    project, parse_errors = build_project(sources)

    diagnostics: List[Diagnostic] = [
        Diagnostic(
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            rule="E0",
            symbol="syntax-error",
            message=f"cannot parse: {exc.msg}",
        )
        for path, exc in parse_errors
    ]

    per_file = _select(rules)
    for module in project.modules:
        for rule_cls in per_file:
            for diag in rule_cls(module.ctx).run():
                if not module.suppressions.covers(diag.line, diag.rule):
                    diagnostics.append(diag)
        diagnostics.extend(_suppression_hygiene(module.path, module.suppressions))

    for tree_cls in _select_tree(rules):
        for diag in tree_cls(project).run():
            owner = project.by_path.get(diag.path)
            if owner is None or not owner.suppressions.covers(diag.line, diag.rule):
                diagnostics.append(diag)

    diagnostics.sort(key=Diagnostic.sort_key)
    return diagnostics


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[str]] = None,
) -> List[Diagnostic]:
    """Lint one source string as a single-file project."""
    return lint_sources([(path, source)], rules=rules)


def _suppression_hygiene(path: str, table: SuppressionTable) -> List[Diagnostic]:
    """R0: every escape hatch needs a written justification."""
    return [
        Diagnostic(
            path=path,
            line=sup.line,
            col=1,
            rule="R0",
            symbol="suppression",
            message=(
                "'# reprolint: ok' without a justification; state why the "
                "rule does not apply, e.g. '# reprolint: ok[R2] integer slots'"
            ),
        )
        for sup in table.unjustified()
    ]


def lint_file(path: Path, rules: Optional[Sequence[str]] = None) -> List[Diagnostic]:
    source = path.read_text(encoding="utf-8")
    return lint_source(source, path=str(path), rules=rules)


def lint_paths(paths: Sequence[str], rules: Optional[Sequence[str]] = None) -> List[Diagnostic]:
    sources = [
        (str(p), p.read_text(encoding="utf-8")) for p in iter_python_files(paths)
    ]
    return lint_sources(sources, rules=rules)


__all__ = [
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "lint_sources",
]

"""File discovery, rule execution and suppression filtering."""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Type

from reprolint.diagnostics import Diagnostic
from reprolint.rules import ALL_RULES
from reprolint.rules.base import LintContext, Rule
from reprolint.suppress import SuppressionTable, parse_suppressions

#: Directory names never descended into.
_SKIP_DIRS = {".git", "__pycache__", ".mypy_cache", ".ruff_cache", "build", "dist"}


def iter_python_files(paths: Sequence[str]) -> Iterable[Path]:
    """Expand files/directories into a deterministic list of ``.py`` files."""
    for raw in paths:
        p = Path(raw)
        if p.is_file() and p.suffix == ".py":
            yield p
        elif p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    yield sub


def _select(rules: Optional[Sequence[str]]) -> List[Type[Rule]]:
    if not rules:
        return list(ALL_RULES)
    wanted = {r.upper() for r in rules}
    return [cls for cls in ALL_RULES if cls.rule_id in wanted]


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[str]] = None,
) -> List[Diagnostic]:
    """Lint one source string; the core entry point the CLI and tests share."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule="E0",
                symbol="syntax-error",
                message=f"cannot parse: {exc.msg}",
            )
        ]
    ctx = LintContext.build(path, source, tree)
    table = parse_suppressions(source)

    diagnostics: List[Diagnostic] = []
    for rule_cls in _select(rules):
        for diag in rule_cls(ctx).run():
            if not table.covers(diag.line, diag.rule):
                diagnostics.append(diag)
    diagnostics.extend(_suppression_hygiene(path, table))
    diagnostics.sort(key=Diagnostic.sort_key)
    return diagnostics


def _suppression_hygiene(path: str, table: SuppressionTable) -> List[Diagnostic]:
    """R0: every escape hatch needs a written justification."""
    return [
        Diagnostic(
            path=path,
            line=sup.line,
            col=1,
            rule="R0",
            symbol="suppression",
            message=(
                "'# reprolint: ok' without a justification; state why the "
                "rule does not apply, e.g. '# reprolint: ok[R2] integer slots'"
            ),
        )
        for sup in table.unjustified()
    ]


def lint_file(path: Path, rules: Optional[Sequence[str]] = None) -> List[Diagnostic]:
    source = path.read_text(encoding="utf-8")
    return lint_source(source, path=str(path), rules=rules)


def lint_paths(paths: Sequence[str], rules: Optional[Sequence[str]] = None) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for path in iter_python_files(paths):
        diagnostics.extend(lint_file(path, rules=rules))
    diagnostics.sort(key=Diagnostic.sort_key)
    return diagnostics


__all__ = ["iter_python_files", "lint_file", "lint_paths", "lint_source"]

"""Whole-tree analysis context: the resolved-module and call-graph layer.

The R1–R7 rules are per-file: each sees one ``ast.Module`` and nothing
else.  That is enough for lexical discipline (raw randomness, bare
epsilon compares) but not for *flow* properties — "every function a
worker can reach is pure" is a statement about the transitive closure of
calls across module boundaries, which no single file can witness.

:class:`ProjectContext` parses every file under analysis exactly once
(the per-file rules re-use the same trees, so the whole-tree pass adds no
second parse) and indexes, per module:

* module-level function and class definitions,
* names bound at module scope (the globals a worker-reachable function
  might mutate or draw randomness from),
* the import table — which local names denote which modules/objects.

Resolution is deliberately *suffix-based*: ``from repro.experiments.
parallel import run_point_task`` resolves to any indexed module whose
dotted path ends in ``repro.experiments.parallel``.  That makes the
analysis independent of where the lint roots sit (``src/`` layouts,
test fixture trees under a tmp dir) without configuring package roots,
at the cost of theoretical ambiguity that does not occur in practice
(ties resolve to the lexicographically first path, deterministically).

The call graph itself is resolved on demand by
:meth:`ProjectContext.resolve_call`: direct names (module-local or
``from``-imported functions), ``module.attr`` calls through an imported
module alias, and ``functools.partial`` unwrapping.  Unresolvable calls
(methods on objects, higher-order parameters) are skipped — the analysis
is a sound-for-what-it-sees heuristic, not a type system.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Dict, List, Optional, Sequence, Set, Tuple

from reprolint.rules.base import LintContext
from reprolint.suppress import SuppressionTable, parse_suppressions

#: One function definition, addressed by its defining module.
FunctionRef = Tuple["ModuleInfo", ast.FunctionDef]


@dataclass(frozen=True)
class ImportTarget:
    """What one locally-bound import name denotes."""

    #: ``"module"`` (``import x.y as m`` / ``from pkg import mod``) or
    #: ``"object"`` (``from x.y import f``).
    kind: str
    #: Dotted path parts of the source module.
    module: Tuple[str, ...]
    #: Object name within the module, for ``kind="object"``.
    name: Optional[str] = None


@dataclass
class ModuleInfo:
    """Everything the whole-tree pass knows about one parsed module."""

    path: str
    #: Dotted module path parts derived from the file path
    #: (``src/repro/game/engine.py`` -> ``("src", "repro", "game", "engine")``;
    #: ``__init__.py`` maps to its package).
    parts: Tuple[str, ...]
    tree: ast.Module
    ctx: LintContext
    suppressions: SuppressionTable
    #: Module-level ``def``s (including async), by name.
    functions: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: Module-level ``class``es, by name.
    classes: Dict[str, ast.ClassDef] = field(default_factory=dict)
    #: Names bound by assignment at module scope (candidate mutable globals
    #: and module-level RNG streams).
    module_level_names: Set[str] = field(default_factory=set)
    #: Import table: local name -> :class:`ImportTarget`.
    imports: Dict[str, ImportTarget] = field(default_factory=dict)

    @classmethod
    def build(
        cls, path: str, source: str, tree: ast.Module, ctx: LintContext,
        suppressions: SuppressionTable,
    ) -> "ModuleInfo":
        info = cls(
            path=path,
            parts=_module_parts(path),
            tree=tree,
            ctx=ctx,
            suppressions=suppressions,
        )
        info._index_top_level()
        info._index_imports()
        return info

    def _index_top_level(self) -> None:
        for stmt in self.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[stmt.name] = stmt  # type: ignore[assignment]
            elif isinstance(stmt, ast.ClassDef):
                self.classes[stmt.name] = stmt
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                for tgt in targets:
                    for node in ast.walk(tgt):
                        if isinstance(node, ast.Name):
                            self.module_level_names.add(node.id)

    def _index_imports(self) -> None:
        """Bind import names anywhere in the module (function-local imports
        included — a lazily imported callee is still a call edge)."""
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    dotted = tuple(alias.name.split("."))
                    if alias.asname:
                        self.imports[alias.asname] = ImportTarget("module", dotted)
                    else:
                        # ``import a.b.c`` binds ``a``; only a single-part
                        # module is then resolvable through the bare name.
                        self.imports[dotted[0]] = ImportTarget("module", dotted[:1])
            elif isinstance(node, ast.ImportFrom):
                base: Tuple[str, ...]
                if node.level == 0:
                    base = tuple(node.module.split(".")) if node.module else ()
                else:
                    # Relative import: resolve against this module's path.
                    anchor = self.parts[: len(self.parts) - node.level]
                    extra = tuple(node.module.split(".")) if node.module else ()
                    base = anchor + extra
                if not base:
                    continue
                for alias in node.names:
                    bound = alias.asname or alias.name
                    # ``from pkg import mod`` may bind a submodule; record
                    # both readings and let resolution try object first.
                    self.imports[bound] = ImportTarget("object", base, alias.name)


def _module_parts(path: str) -> Tuple[str, ...]:
    posix = PurePosixPath(path.replace("\\", "/"))
    parts = posix.with_suffix("").parts
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    # Drop filesystem-root markers so suffix matching sees clean names.
    return tuple(p for p in parts if p not in ("/", "."))


class ProjectContext:
    """All modules under analysis, with import and call resolution."""

    def __init__(self, modules: Sequence[ModuleInfo]) -> None:
        self.modules: List[ModuleInfo] = sorted(modules, key=lambda m: m.path)
        self.by_path: Dict[str, ModuleInfo] = {m.path: m for m in self.modules}
        self._by_tail: Dict[str, List[ModuleInfo]] = {}
        for m in self.modules:
            if m.parts:
                self._by_tail.setdefault(m.parts[-1], []).append(m)

    # ------------------------------------------------------------------ #
    # Module / function resolution
    # ------------------------------------------------------------------ #
    def resolve_module(self, dotted: Sequence[str]) -> Optional[ModuleInfo]:
        """The indexed module whose path ends in ``dotted``, if any."""
        dotted = tuple(dotted)
        if not dotted:
            return None
        for cand in self._by_tail.get(dotted[-1], ()):
            if cand.parts[-len(dotted):] == dotted:
                return cand
        return None

    def resolve_function(
        self, module: ModuleInfo, name: str
    ) -> Optional[FunctionRef]:
        """Resolve a bare name used in ``module`` to a function definition:
        a module-level def, or a ``from``-imported module-level def."""
        fn = module.functions.get(name)
        if fn is not None:
            return (module, fn)
        tgt = module.imports.get(name)
        if tgt is not None and tgt.kind == "object" and tgt.name is not None:
            src = self.resolve_module(tgt.module)
            if src is not None:
                fn = src.functions.get(tgt.name)
                if fn is not None:
                    return (src, fn)
            # ``from pkg import mod`` — the bound name may itself be a module.
            sub = self.resolve_module(tgt.module + (tgt.name,))
            if sub is not None:
                return None  # a module, not a function
        return None

    def resolve_call(
        self, module: ModuleInfo, call: ast.Call
    ) -> Optional[FunctionRef]:
        """Resolve a call expression to the function it invokes, if the
        target is statically evident (see module docstring for scope)."""
        return self.resolve_callable(module, call.func)

    def resolve_callable(
        self, module: ModuleInfo, expr: ast.expr
    ) -> Optional[FunctionRef]:
        """Resolve a callable-valued expression: a name, a ``mod.attr``
        chain through an imported module alias, or ``functools.partial``
        over either."""
        expr = unwrap_partial(expr)
        if isinstance(expr, ast.Name):
            return self.resolve_function(module, expr.id)
        if isinstance(expr, ast.Attribute):
            dotted = _attribute_parts(expr)
            if dotted is None:
                return None
            head, attr = dotted[:-1], dotted[-1]
            # First segment must be an imported module alias.
            tgt = module.imports.get(head[0]) if head else None
            if tgt is None:
                return None
            if tgt.kind == "module":
                src = self.resolve_module(tgt.module + head[1:])
            else:
                src = self.resolve_module(
                    tgt.module + ((tgt.name,) if tgt.name else ()) + head[1:]
                )
            if src is not None:
                fn = src.functions.get(attr)
                if fn is not None:
                    return (src, fn)
        return None


def unwrap_partial(expr: ast.expr) -> ast.expr:
    """``functools.partial(f, ...)`` (or bare ``partial``) -> ``f``."""
    if isinstance(expr, ast.Call) and expr.args:
        fn = expr.func
        name = (
            fn.id if isinstance(fn, ast.Name)
            else fn.attr if isinstance(fn, ast.Attribute)
            else None
        )
        if name == "partial":
            return unwrap_partial(expr.args[0])
    return expr


def _attribute_parts(expr: ast.Attribute) -> Optional[Tuple[str, ...]]:
    parts: List[str] = []
    node: ast.expr = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def build_project(
    sources: Sequence[Tuple[str, str]],
) -> Tuple[ProjectContext, List[Tuple[str, SyntaxError]]]:
    """Parse ``(path, source)`` pairs into a :class:`ProjectContext`.

    Returns the project plus the files that failed to parse (reported as
    E0 diagnostics by the engine; they simply do not take part in the
    whole-tree pass).
    """
    modules: List[ModuleInfo] = []
    errors: List[Tuple[str, SyntaxError]] = []
    for path, source in sources:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            errors.append((path, exc))
            continue
        ctx = LintContext.build(path, source, tree)
        table = parse_suppressions(source)
        modules.append(ModuleInfo.build(path, source, tree, ctx, table))
    return ProjectContext(modules), errors


__all__ = [
    "FunctionRef",
    "ImportTarget",
    "ModuleInfo",
    "ProjectContext",
    "build_project",
    "unwrap_partial",
]

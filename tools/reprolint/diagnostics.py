"""Diagnostic records emitted by reprolint rules."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding, pointing at a source location.

    ``rule`` is the short rule id (``"R1"`` .. ``"R5"``, or ``"R0"`` for
    suppression hygiene); ``symbol`` is the human-readable rule slug shown
    next to the id (``raw-random``, ``capacity-epsilon``, ...).
    """

    path: str
    line: int
    col: int
    rule: str
    symbol: str
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}[{self.symbol}] {self.message}"


__all__ = ["Diagnostic"]

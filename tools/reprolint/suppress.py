"""The ``# reprolint: ok`` escape hatch.

Grammar (one comment per physical line)::

    # reprolint: ok <reason>            suppress every rule on this line
    # reprolint: ok[R1] <reason>        suppress rule R1 on this line
    # reprolint: ok[R1,R4] <reason>     suppress several rules

A suppression applies to the physical line it sits on.  When the comment is
the only thing on its line, it applies to the *next* physical line instead,
so long conditions can keep their suppression above them.

Every suppression must carry a reason — the justification is the contract
that makes the escape hatch reviewable.  A bare ``# reprolint: ok`` without
trailing text is itself reported as an R0 diagnostic by the engine.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

#: Matches the escape-hatch comment anywhere in a line's trailing comment.
_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*ok(?:\[(?P<rules>[A-Za-z0-9 ,]+)\])?(?P<reason>[^\n]*)"
)

#: Suppress every rule on the line.
ALL_RULES_TOKEN = "*"


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# reprolint: ok`` comment."""

    line: int
    #: Rule ids suppressed (upper-case), or ``frozenset({"*"})`` for all.
    rules: FrozenSet[str]
    #: Free-text justification after the marker (stripped); empty = unjustified.
    reason: str
    #: The physical line the suppression targets (itself, or the next line
    #: when the comment stands alone).
    target_line: int


@dataclass
class SuppressionTable:
    """All suppressions of one file, keyed by the line they silence."""

    by_line: Dict[int, List[Suppression]] = field(default_factory=dict)
    all: List[Suppression] = field(default_factory=list)

    def covers(self, line: int, rule: str) -> bool:
        for sup in self.by_line.get(line, ()):
            if ALL_RULES_TOKEN in sup.rules or rule.upper() in sup.rules:
                return True
        return False

    def unjustified(self) -> List[Suppression]:
        return [s for s in self.all if not s.reason]


def _parse_one(line_no: int, text: str) -> Optional[Suppression]:
    m = _SUPPRESS_RE.search(text)
    if m is None:
        return None
    raw_rules = m.group("rules")
    if raw_rules is None:
        rules = frozenset({ALL_RULES_TOKEN})
    else:
        rules = frozenset(r.strip().upper() for r in raw_rules.split(",") if r.strip())
    reason = (m.group("reason") or "").strip(" \t-—:")
    code_before = text[: m.start()].strip()
    target = line_no if code_before else line_no + 1
    return Suppression(line=line_no, rules=rules, reason=reason, target_line=target)


def parse_suppressions(source: str) -> SuppressionTable:
    """Scan raw source text for escape-hatch comments.

    A plain string scan (rather than the tokenizer) is enough here: the
    marker is distinctive, and false positives inside string literals would
    only ever *widen* suppression on lines that also carry a real marker.
    """
    table = SuppressionTable()
    for i, text in enumerate(source.splitlines(), start=1):
        if "reprolint" not in text:
            continue
        sup = _parse_one(i, text)
        if sup is None:
            continue
        table.all.append(sup)
        table.by_line.setdefault(sup.target_line, []).append(sup)
    return table


__all__ = ["ALL_RULES_TOKEN", "Suppression", "SuppressionTable", "parse_suppressions"]

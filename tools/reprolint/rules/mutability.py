"""R4 (stable-order): mutable defaults and order-sensitive set iteration.

Equilibrium code is order-sensitive by construction: best-response dynamics
visit players in a fixed round-robin order, tie-breaks take the *first*
minimum, and the potential trace is replayed bit-for-bit in tests.  Two
Python habits quietly break that determinism:

* mutable default arguments (``def f(x, acc=[])``) — shared state across
  calls, and a classic source of run-order-dependent results;
* iterating a ``set`` of players/cloudlets/resources — set iteration order
  depends on insertion history and hash seeding of the element type, so
  ``for p in set(players)`` visits players in an unstable order.  Sets are
  fine for membership tests; iterate lists, or wrap in ``sorted(...)``.
"""

from __future__ import annotations

import ast
import re

from reprolint.rules.base import Rule, identifier_tokens

#: Entity names whose iteration order is semantically load-bearing.
_ENTITY_TOKEN_RE = re.compile(r"player|cloudlet|resource|provider|service|node")

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CONSTRUCTORS = {"list", "dict", "set", "defaultdict", "deque"}


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CONSTRUCTORS
    return False


def _set_valued(node: ast.expr) -> bool:
    """Is this expression syntactically a set?  (``set(...)`` calls, set
    literals/comprehensions, and set-algebra over those.)"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)
    ):
        return _set_valued(node.left) or _set_valued(node.right)
    return False


class StableOrderRule(Rule):
    """R4: mutable defaults anywhere; set iteration over game entities."""

    rule_id = "R4"
    symbol = "stable-order"

    def _check_defaults(self, node: ast.FunctionDef) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                self.report(
                    default,
                    f"mutable default argument in '{node.name}'; use None and "
                    f"construct inside the body",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Lambda(self, node: ast.Lambda) -> None:
        for default in list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]:
            if _is_mutable_default(default):
                self.report(default, "mutable default argument in lambda")
        self.generic_visit(node)

    def _check_iteration(self, iter_expr: ast.expr) -> None:
        if not _set_valued(iter_expr):
            return
        tokens = list(identifier_tokens(iter_expr))
        if any(_ENTITY_TOKEN_RE.search(t) for t in tokens):
            self.report(
                iter_expr,
                "iteration over a set of players/cloudlets/resources has "
                "unstable order; iterate the original sequence or sorted(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)


__all__ = ["StableOrderRule"]

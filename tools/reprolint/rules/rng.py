"""R1 (raw-random) and R5 (rng-plumbing): determinism discipline.

Replayability is load-bearing here: the parallel sweep harness promises
bit-identical results for a fixed seed, which only holds when every
stochastic path is fed from :func:`repro.utils.rng.as_rng` /
:func:`repro.utils.rng.spawn`.  A single ``np.random.default_rng()`` buried
in a helper silently forks an uncontrolled stream.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from reprolint.rules.base import Rule

#: ``numpy.random`` attributes that are fine to name anywhere: types used in
#: annotations/isinstance checks, and ``SeedSequence`` (the deterministic
#: spawn-key mixer ``sweep_task_seed`` is built on — it consumes no stream).
_NUMPY_RANDOM_ALLOWED: Set[str] = {
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
    "RandomState",  # only as a *type*; constructing one is caught via Call
}

#: Parameter names that count as rng/seed plumbing for R5.
_PLUMBING_PARAMS: Set[str] = {
    "rng",
    "seed",
    "base_seed",
    "random_source",
    "rng_or_seed",
    "random_state",
}

#: Local names assumed to hold a Generator when methods are called on them.
_RNG_RECEIVER_NAMES: Set[str] = {"rng", "gen", "generator", "random_state", "child", "sub_rng"}

#: Generator draw methods that consume the stream.
_DRAW_METHODS: Set[str] = {
    "binomial",
    "choice",
    "exponential",
    "geometric",
    "integers",
    "lognormal",
    "normal",
    "pareto",
    "permutation",
    "permuted",
    "poisson",
    "random",
    "shuffle",
    "standard_normal",
    "uniform",
    "zipf",
}


class RawRandomRule(Rule):
    """R1: raw randomness outside ``utils/rng.py``.

    Flags ``import random`` / ``from random import ...``, any attribute use
    of a stdlib-``random`` alias, and any ``numpy.random`` attribute outside
    the allow-list above (``default_rng``, ``seed``, legacy draws, ...).
    ``utils/rng.py`` itself is exempt — it is the one sanctioned wrapper.
    """

    rule_id = "R1"
    symbol = "raw-random"

    _FIX = "route randomness through repro.utils.rng.as_rng/spawn"

    def visit_Import(self, node: ast.Import) -> None:
        if not self.ctx.is_rng_module:
            for alias in node.names:
                if alias.name == "random":
                    self.report(node, f"import of stdlib 'random'; {self._FIX}")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if not self.ctx.is_rng_module and node.level == 0 and node.module == "random":
            self.report(node, f"import from stdlib 'random'; {self._FIX}")
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self.ctx.is_rng_module:
            return  # sanctioned module; don't even recurse for R1
        # stdlib random usage: ``random.<anything>`` on a tracked alias.
        if (
            isinstance(node.value, ast.Name)
            and node.value.id in self.ctx.stdlib_random_aliases
        ):
            self.report(node, f"stdlib random.{node.attr}; {self._FIX}")
        # numpy.random usage outside the type allow-list.
        elif self.ctx.is_numpy_random_expr(node.value):
            if node.attr not in _NUMPY_RANDOM_ALLOWED:
                self.report(node, f"numpy.random.{node.attr}; {self._FIX}")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # RandomState is tolerated as a type name but never as a constructor.
        if self.ctx.is_rng_module:
            return
        fn = node.func
        if (
            isinstance(fn, ast.Attribute)
            and fn.attr == "RandomState"
            and self.ctx.is_numpy_random_expr(fn.value)
        ):
            self.report(node, f"legacy numpy.random.RandomState(); {self._FIX}")
        self.generic_visit(node)


class _StochasticUseFinder(ast.NodeVisitor):
    """Finds the first stream-consuming expression inside one function body,
    without descending into nested function definitions."""

    def __init__(self) -> None:
        self.first: Optional[ast.AST] = None
        self.what: str = ""

    def _note(self, node: ast.AST, what: str) -> None:
        if self.first is None:
            self.first = node
            self.what = what

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs are separate scopes; R5 checks them on their own

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Call(self, node: ast.Call) -> None:
        fn = node.func
        if isinstance(fn, ast.Name) and fn.id in {"as_rng", "spawn"}:
            self._note(node, f"{fn.id}(...)")
        elif (
            isinstance(fn, ast.Attribute)
            and fn.attr in _DRAW_METHODS
            and isinstance(fn.value, ast.Name)
            and fn.value.id in _RNG_RECEIVER_NAMES
        ):
            self._note(node, f"{fn.value.id}.{fn.attr}(...)")
        self.generic_visit(node)


class RngPlumbingRule(Rule):
    """R5: public stochastic APIs must accept ``rng``/``seed``.

    A module-level public function (or public method) that consumes
    randomness — calls ``as_rng``/``spawn`` or draws from a local ``rng``
    object — without any rng/seed-like parameter cannot be replayed by its
    caller.  Private helpers (leading underscore) and test files are exempt:
    the rule is about API surface, not internals.
    """

    rule_id = "R5"
    symbol = "rng-plumbing"

    def _check_function(self, node: ast.FunctionDef) -> None:
        if node.name.startswith("_"):
            return
        args = node.args
        names = {
            a.arg
            for a in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            )
        }
        if args.vararg:
            names.add(args.vararg.arg)
        if args.kwarg:
            names.add(args.kwarg.arg)
        if names & _PLUMBING_PARAMS:
            return
        if "self" in names or "cls" in names:
            # Methods may carry the generator as object state (self.rng);
            # attribute receivers are not flagged by the finder anyway, but
            # constructors storing seeds also count as plumbing.
            pass
        finder = _StochasticUseFinder()
        for stmt in node.body:
            finder.visit(stmt)
        if finder.first is not None:
            self.report(
                finder.first,
                f"public API '{node.name}' uses randomness ({finder.what}) but has "
                f"no rng/seed parameter; thread a repro.utils.rng.RandomSource through",
            )

    def visit_Module(self, node: ast.Module) -> None:
        if self.ctx.is_test_file or self.ctx.is_rng_module:
            return
        # Only module-level functions and class methods are API surface;
        # nested local functions are internals and stay out of scope.
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(stmt)
            elif isinstance(stmt, ast.ClassDef):
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._check_function(sub)


__all__ = ["RawRandomRule", "RngPlumbingRule"]

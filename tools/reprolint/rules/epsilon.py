"""R2 (capacity-epsilon): feasibility comparisons must share one slack.

Every layer of the stack answers "does this demand still fit?"; if one
layer tests ``load + d <= capacity`` exactly while another allows
``CAPACITY_EPS`` of slack, a demand equal to the residual capacity is
feasible in one layer and infeasible in the next — precisely the kind of
epsilon disagreement that flips equilibria in competitive-caching models.

The rule is a name heuristic: a bare ``==``/``<=``/``>=`` comparison where
either operand mentions a capacity-ish identifier (``capacity``, ``load``,
``cost``, ``budget``, ``demand``) is flagged, unless the comparison already
involves an epsilon/tolerance term or an ``isclose``-style call.  Exact
integer comparisons (occupancy counts, slot indices) are legitimate — mark
them with ``# reprolint: ok[R2] <why>``.

``assert`` statements inside test files are exempt: a test oracle is
allowed to be *stricter* than the library (pinning exact round-trips,
checking a solver never uses its slack), and flagging every such assertion
would bury the real findings.  Library code gets no such exemption.
"""

from __future__ import annotations

import ast
import re
from typing import Set

from reprolint.rules.base import Rule, called_names, identifier_tokens

#: Operand identifiers that make a comparison "capacity-like".  ``cap``/
#: ``caps`` only count as their own underscore-delimited word so that e.g.
#: ``escape`` or ``capture`` stay out of scope.
_CAPACITY_TOKEN_RE = re.compile(r"capacit|(?:^|_)caps?(?:_|$)|load|budget|cost")

#: Identifiers whose presence shows the comparison already carries slack.
_EPSILON_TOKEN_RE = re.compile(r"eps|tol|slack")

#: Calls that already encode tolerant comparison.
_TOLERANT_CALLS: Set[str] = {"isclose", "allclose", "isfinite", "approx"}

_CHECKED_OPS = (ast.Eq, ast.LtE, ast.GtE)

#: Strict comparisons (``<``/``>``) are usually legitimate orderings, but a
#: strict comparison against a *raw* tiny float literal (``residual > 1e-9``)
#: is a hand-rolled tolerance that drifts from the shared constant.  Any
#: non-zero float literal at or below this magnitude counts as one.
_RAW_EPSILON_LIMIT = 1e-6


def _has_raw_epsilon(node: ast.expr) -> bool:
    """Does the expression contain a literal tiny non-zero float?"""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Constant)
            and isinstance(sub.value, float)
            and 0.0 < abs(sub.value) <= _RAW_EPSILON_LIMIT
        ):
            return True
    return False


class CapacityEpsilonRule(Rule):
    """R2: flag exact float comparisons on capacity/cost expressions."""

    rule_id = "R2"
    symbol = "capacity-epsilon"

    def visit_Assert(self, node: ast.Assert) -> None:
        if self.ctx.is_test_file:
            return  # test oracles may be deliberately exact
        self.generic_visit(node)

    def _operand_is_trivial(self, node: ast.expr) -> bool:
        """Constants compare exactly by design (e.g. ``cost == 0.0`` guards)
        only when *both* sides are constant — a single constant side still
        usually means a capacity threshold and stays flagged."""
        return isinstance(node, ast.Constant)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        # Tokens and tolerance evidence are judged over the whole comparison:
        # ``load <= cap + EPS`` exempts via the right-hand epsilon term.
        all_tokens = [t for op in operands for t in identifier_tokens(op)]
        has_capacity_token = any(_CAPACITY_TOKEN_RE.search(t) for t in all_tokens)
        if has_capacity_token:
            has_slack = any(_EPSILON_TOKEN_RE.search(t) for t in all_tokens) or any(
                name in _TOLERANT_CALLS
                for op in operands
                for name in called_names(op)
            )
            if not has_slack:
                for op_node, (lhs, rhs) in zip(
                    node.ops, zip(operands[:-1], operands[1:])
                ):
                    if isinstance(op_node, _CHECKED_OPS):
                        if self._operand_is_trivial(lhs) and self._operand_is_trivial(rhs):
                            continue
                        pretty = {"Eq": "==", "LtE": "<=", "GtE": ">="}[
                            type(op_node).__name__
                        ]
                        self.report(
                            node,
                            f"exact float '{pretty}' on a capacity/cost expression; "
                            f"compare with repro.utils.validation.CAPACITY_EPS slack "
                            f"(or mark integer semantics with '# reprolint: ok[R2] ...')",
                        )
                        break  # one diagnostic per comparison is enough
                    if isinstance(op_node, (ast.Lt, ast.Gt)) and (
                        _has_raw_epsilon(lhs) or _has_raw_epsilon(rhs)
                    ):
                        pretty = {"Lt": "<", "Gt": ">"}[type(op_node).__name__]
                        self.report(
                            node,
                            f"strict '{pretty}' against a raw epsilon literal on a "
                            f"capacity/cost expression; use "
                            f"repro.utils.validation.CAPACITY_EPS as the shared "
                            f"tolerance (or '# reprolint: ok[R2] ...')",
                        )
                        break
        self.generic_visit(node)


__all__ = ["CapacityEpsilonRule"]

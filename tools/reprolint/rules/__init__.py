"""Rule registry.

Two kinds of rule live here.  *Per-file* rules subclass
:class:`reprolint.rules.base.Rule`; the engine instantiates every entry
of :data:`ALL_RULES` per file.  *Tree* rules (:data:`TREE_RULES`) take
the whole :class:`reprolint.project.ProjectContext` and run once per
lint invocation — they see call edges across module boundaries that no
single file can witness.  Order here is the order diagnostics tie-break
on equal locations.
"""

from __future__ import annotations

from typing import List, Type

from reprolint.rules.base import Rule
from reprolint.rules.rng import RawRandomRule, RngPlumbingRule
from reprolint.rules.epsilon import CapacityEpsilonRule
from reprolint.rules.pickling import SweepPickleRule
from reprolint.rules.mutability import StableOrderRule
from reprolint.rules.market_mutation import MarketMutationRule
from reprolint.rules.swallowed import SwallowedErrorRule
from reprolint.rules.array_escape import ArrayEscapeRule
from reprolint.rules.delta_atomicity import DeltaAtomicityRule
from reprolint.rules.worker_purity import WorkerPurityRule

ALL_RULES: List[Type[Rule]] = [
    RawRandomRule,
    CapacityEpsilonRule,
    SweepPickleRule,
    StableOrderRule,
    RngPlumbingRule,
    MarketMutationRule,
    SwallowedErrorRule,
    ArrayEscapeRule,
    DeltaAtomicityRule,
]

#: Whole-tree rules, instantiated once with the ProjectContext.
TREE_RULES = [
    WorkerPurityRule,
]

__all__ = ["ALL_RULES", "TREE_RULES", "Rule"]

"""Rule registry.

Each rule is a subclass of :class:`reprolint.rules.base.Rule`; the engine
instantiates every entry of :data:`ALL_RULES` per file.  Order here is the
order diagnostics tie-break on equal locations.
"""

from __future__ import annotations

from typing import List, Type

from reprolint.rules.base import Rule
from reprolint.rules.rng import RawRandomRule, RngPlumbingRule
from reprolint.rules.epsilon import CapacityEpsilonRule
from reprolint.rules.pickling import SweepPickleRule
from reprolint.rules.mutability import StableOrderRule
from reprolint.rules.market_mutation import MarketMutationRule
from reprolint.rules.swallowed import SwallowedErrorRule

ALL_RULES: List[Type[Rule]] = [
    RawRandomRule,
    CapacityEpsilonRule,
    SweepPickleRule,
    StableOrderRule,
    RngPlumbingRule,
    MarketMutationRule,
    SwallowedErrorRule,
]

__all__ = ["ALL_RULES", "Rule"]

"""R3 (sweep-pickle): sweep builders must cross the process-pool boundary.

``ParallelSweepRunner`` fans tasks over a ``ProcessPoolExecutor``; every
builder stored on a :class:`PointTask` is pickled into the workers.
Lambdas, closures and local functions pickle by qualified name and fail the
moment ``workers > 1`` — often long after the code was written, on someone
else's machine.  The runner has a runtime guard; this rule catches the
mistake at review time.

Heuristic: a lambda (anywhere), a name bound to a lambda, or a name bound
to a *locally defined* function is flagged when passed to a sweep-shaped
call — ``map_tasks``, ``PointTask``, a ``.run(...)`` on a receiver whose
name mentions ``runner``/``sweep``, or any call site using the builder
keywords (``make_market``, ``make_algorithms``, ``seed_fn``).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from reprolint.rules.base import Rule

#: Direct callee names that take builders.
_SWEEP_CALLEES: Set[str] = {"map_tasks", "PointTask", "run_sweep", "submit_sweep"}

#: Keyword argument names that always carry a pool-crossing callable.
_BUILDER_KEYWORDS: Set[str] = {
    "make_market",
    "make_algorithms",
    "make_network",
    "seed_fn",
    "task_fn",
    "builder",
}

#: Receiver-name fragments that mark ``<recv>.run(...)`` as a sweep call.
_RUNNER_NAME_FRAGMENTS = ("runner", "sweep", "pool")


def _is_sweep_call(node: ast.Call) -> bool:
    fn = node.func
    if isinstance(fn, ast.Name):
        return fn.id in _SWEEP_CALLEES
    if isinstance(fn, ast.Attribute):
        if fn.attr in _SWEEP_CALLEES:
            return True
        if fn.attr in {"run", "map"} and isinstance(fn.value, ast.Name):
            recv = fn.value.id.lower()
            return any(frag in recv for frag in _RUNNER_NAME_FRAGMENTS)
    return False


class SweepPickleRule(Rule):
    """R3: lambdas/closures handed to the parallel sweep machinery."""

    rule_id = "R3"
    symbol = "sweep-pickle"

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        #: Function-nesting depth; > 0 means "inside a function body".
        self._depth = 0
        #: Names known to be unpicklable callables, by kind.
        self._local_defs: Dict[str, str] = {}

    # ------------------------------ scope tracking ------------------------------ #
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if self._depth > 0:
            self._local_defs[node.name] = "locally defined function"
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Assign(self, node: ast.Assign) -> None:
        if isinstance(node.value, ast.Lambda):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    self._local_defs[tgt.id] = "lambda"
        self.generic_visit(node)

    # ------------------------------ call checking ------------------------------ #
    def _unpicklable_kind(self, arg: ast.expr) -> Optional[str]:
        if isinstance(arg, ast.Lambda):
            return "lambda"
        if isinstance(arg, ast.Name) and arg.id in self._local_defs:
            return self._local_defs[arg.id]
        return None

    def visit_Call(self, node: ast.Call) -> None:
        sweep_call = _is_sweep_call(node)
        suspects: List[ast.expr] = []
        if sweep_call:
            suspects.extend(node.args)
            suspects.extend(kw.value for kw in node.keywords if kw.value is not None)
        else:
            suspects.extend(
                kw.value for kw in node.keywords if kw.arg in _BUILDER_KEYWORDS
            )
        for arg in suspects:
            kind = self._unpicklable_kind(arg)
            if kind is not None:
                self.report(
                    arg,
                    f"{kind} passed as a sweep builder cannot be pickled into "
                    f"ProcessPoolExecutor workers; use a module-level function "
                    f"or functools.partial",
                )
        self.generic_visit(node)


__all__ = ["SweepPickleRule"]

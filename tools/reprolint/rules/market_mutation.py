"""R6 (market-mutation): direct market mutation outside the ``market/`` package.

PR 4 made market mutation a first-class protocol: every change a
:class:`~repro.market.delta.MarketDelta` can express (provider churn,
cloudlet capacity and congestion-price changes) must go through
``ServiceMarket.apply(delta)``, which updates the object graph and the
cached :class:`~repro.market.compiled.CompiledMarket` together.  A direct
attribute write from anywhere else either leaves the compiled tables stale
(the exact latent bug this rule was added to catch) or forces a full
``invalidate_compiled()`` recompile where an O(changed rows) patch would do.

Two shapes are flagged, outside ``market/`` and outside tests:

* assignment (or augmented assignment) to an attribute reached *through* a
  market object — ``market.providers = ...``,
  ``self.market.cost_model.remote_premium = ...``;
* assignment to a compiled-table-backed cloudlet attribute
  (``compute_capacity``, ``bandwidth_capacity``, ``alpha``, ``beta``) on a
  cloudlet-named base — ``cl.compute_capacity *= 2``.

Rebinding a variable *to* a market (``self.market = ServiceMarket(...)``)
is construction, not mutation, and is not flagged.  Genuinely exceptional
sites (e.g. transient bookkeeping that deliberately bypasses the protocol)
carry the usual escape hatch: ``# reprolint: ok[R6] reason``.
"""

from __future__ import annotations

import ast
import re
from pathlib import PurePosixPath

from reprolint.rules.base import Rule, identifier_tokens

#: Base-expression identifiers that denote a market object.
_MARKET_TOKEN_RE = re.compile(r"market")
#: Base-expression identifiers that denote a cloudlet object.
_CLOUDLET_TOKEN_RE = re.compile(r"^cl$|cloudlet")
#: Cloudlet attributes mirrored into compiled tables (capacity vectors and
#: the congestion price coefficients alpha/beta).
_WATCHED_CLOUDLET_ATTRS = {"compute_capacity", "bandwidth_capacity", "alpha", "beta"}


class MarketMutationRule(Rule):
    """R6: mutate markets through ``ServiceMarket.apply(MarketDelta(...))``."""

    rule_id = "R6"
    symbol = "market-mutation"

    def _exempt(self) -> bool:
        if self.ctx.is_test_file:
            return True
        # The market package itself is the protocol's implementation — the
        # sanctioned home of direct writes.
        dir_parts = PurePosixPath(self.ctx.path.replace("\\", "/")).parts[:-1]
        return "market" in dir_parts

    def _check_target(self, assign: ast.stmt, target: ast.expr) -> None:
        if not isinstance(target, ast.Attribute):
            return
        base_tokens = list(identifier_tokens(target.value))
        if any(_MARKET_TOKEN_RE.search(tok) for tok in base_tokens):
            self.report(
                assign,
                f"direct write to market attribute {target.attr!r} bypasses "
                "the mutation protocol; route it through "
                "ServiceMarket.apply(MarketDelta(...)) so the compiled "
                "tables stay in sync",
            )
            return
        if target.attr in _WATCHED_CLOUDLET_ATTRS and any(
            _CLOUDLET_TOKEN_RE.search(tok) for tok in base_tokens
        ):
            self.report(
                assign,
                f"direct write to cloudlet {target.attr!r} is mirrored in "
                "compiled market tables; use a MarketDelta "
                "capacity_changes/price_changes entry via ServiceMarket.apply",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        if not self._exempt():
            for target in node.targets:
                self._check_target(node, target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if not self._exempt():
            self._check_target(node, node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if not self._exempt() and node.value is not None:
            self._check_target(node, node.target)
        self.generic_visit(node)


__all__ = ["MarketMutationRule"]

"""R9 (array-mutation escape): compiled tables are immutable outside the patch path.

``CompiledMarket``/``CompiledGame`` are structure-of-arrays views shared
by every algorithm layer, the dynamics loop, and (next on the roadmap)
shared-memory workers and market shards.  The whole design rests on one
invariant: the *only* code that writes those arrays in place is the
build/patch machinery (``__init__``, ``apply_delta``, ``compact`` and
their private helpers).  An in-place write anywhere else corrupts every
other holder of the same table silently — no exception, just wrong
equilibria three calls later.

Flagged shapes, outside tests:

* subscript stores and augmented assigns whose base is a compiled-table
  expression — ``cm.capacity[j] = 0``, ``tbl = cm.fixed`` then
  ``tbl[i] += 1`` (simple aliases are tracked);
* mutating ndarray methods on such arrays — ``cm.fixed.sort()``,
  ``.fill()``, ``.partition()``, ``.put()``, ``.resize()``;
* handing a compiled table to a numpy ``out=`` kwarg —
  ``np.add(a, b, out=cm.shared)``;
* inside a ``Compiled*`` class: the same write shapes on bare
  ``self.<table>`` in any *public, non-sanctioned* method (the build and
  patch paths — ``__init__``, ``apply_delta``, ``compact``,
  ``from_market``, ``__setstate__`` and ``_``-private helpers — are the
  sanctioned home of direct writes);
* public accessors of a ``Compiled*`` class that ``return`` an internal
  table attribute outright, without taking a copy or marking the array
  read-only (a body that touches ``.flags.writeable`` counts as the
  read-only-view idiom).

A compiled-table expression is recognised lexically: an attribute named
like a table (``fixed``, ``coeff``, ``shared``, ``capacity``, …) reached
through a receiver that is compiled-flavoured (``cm``, ``cg``, anything
containing ``compiled``) or through a variable assigned from
``.compiled()`` / ``CompiledMarket(...)`` / ``CompiledGame(...)`` /
``from_market(...)``.  The runtime witness for this rule is the
``REPRO_SANITIZE=1`` sanitizer, which freezes the same arrays so any
shape the heuristic misses raises at the faulting write.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set

from reprolint.rules.base import Rule, identifier_tokens

#: Receiver identifiers that denote a compiled instance.
_COMPILED_RECV_RE = re.compile(r"^cm$|^cg$|compiled")
#: Structure-of-arrays attributes mirrored across holders.
_TABLE_ATTRS = {
    "fixed", "instantiation", "access", "update", "coeff", "g", "shared",
    "demand", "capacity", "remote", "user_delay", "provider_index",
    "cloudlet_index", "active_rows",
}
#: ndarray methods that mutate the receiver in place.
_MUTATING_METHODS = {"sort", "fill", "partition", "put", "resize", "itemset"}
#: Constructors/factories whose result is a compiled instance.
_COMPILED_FACTORIES = {"compiled", "CompiledMarket", "CompiledGame", "from_market"}
#: Methods of ``Compiled*`` classes sanctioned to write tables directly.
_SANCTIONED_METHODS = {"__init__", "__setstate__", "apply_delta", "compact", "from_market"}


class ArrayEscapeRule(Rule):
    """R9: in-place writes to compiled tables must stay on the patch path."""

    rule_id = "R9"
    symbol = "array-escape"

    def __init__(self, ctx) -> None:  # type: ignore[no-untyped-def]
        super().__init__(ctx)
        #: Alias name -> human-readable origin (``cm.fixed``).
        self._aliases: Dict[str, str] = {}
        #: Variables holding a compiled instance (from factory calls).
        self._compiled_vars: Set[str] = set()
        self._class_stack: List[str] = []
        self._func_stack: List[str] = []

    # ------------------------------------------------------------------ #
    # Recognising compiled-table expressions
    # ------------------------------------------------------------------ #
    def _is_compiled_receiver(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name) and expr.id in self._compiled_vars:
            return True
        return any(
            _COMPILED_RECV_RE.search(tok) for tok in identifier_tokens(expr)
        )

    def _in_sanctioned_method(self) -> bool:
        if not self._func_stack:
            return False
        name = self._func_stack[-1]
        return name in _SANCTIONED_METHODS or name.startswith("_")

    def _internal_array(self, expr: ast.expr) -> Optional[str]:
        """If ``expr`` denotes a compiled table, its display name."""
        if isinstance(expr, ast.Name):
            return self._aliases.get(expr.id)
        if not isinstance(expr, ast.Attribute):
            return None
        attr = expr.attr
        if attr.lstrip("_") not in _TABLE_ATTRS:
            return None
        base = expr.value
        if (
            isinstance(base, ast.Name)
            and base.id == "self"
            and self._class_stack
            and self._class_stack[-1].startswith("Compiled")
        ):
            # Bare-self table writes are the patch path's own business —
            # but only inside the sanctioned build/patch methods.
            return None if self._in_sanctioned_method() else f"self.{attr}"
        if self._is_compiled_receiver(base):
            return f"{_display(base)}.{attr}"
        return None

    # ------------------------------------------------------------------ #
    # Scope + taint bookkeeping
    # ------------------------------------------------------------------ #
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._func_stack.append(node.name)
        if not self.ctx.is_test_file:
            self._check_accessor(node)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _track_binding(self, target: ast.expr, value: Optional[ast.expr]) -> None:
        if not isinstance(target, ast.Name) or value is None:
            return
        origin = self._internal_array(value)
        if origin is not None:
            self._aliases[target.id] = origin
            return
        self._aliases.pop(target.id, None)
        self._compiled_vars.discard(target.id)
        if isinstance(value, ast.Call):
            fn = value.func
            name = (
                fn.id if isinstance(fn, ast.Name)
                else fn.attr if isinstance(fn, ast.Attribute)
                else None
            )
            if name in _COMPILED_FACTORIES:
                self._compiled_vars.add(target.id)

    # ------------------------------------------------------------------ #
    # Write shapes
    # ------------------------------------------------------------------ #
    def _check_store(self, stmt: ast.stmt, target: ast.expr) -> None:
        if isinstance(target, ast.Subscript):
            origin = self._internal_array(target.value)
            if origin is not None:
                self.report(
                    stmt,
                    f"in-place write to compiled table '{origin}'; these "
                    "arrays are shared across holders — route the change "
                    "through apply_delta, or operate on a .copy()",
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        if not self.ctx.is_test_file:
            for target in node.targets:
                self._check_store(node, target)
        for target in node.targets:
            self._track_binding(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if not self.ctx.is_test_file:
            self._check_store(node, node.target)
        self._track_binding(node.target, node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if not self.ctx.is_test_file:
            self._check_store(node, node.target)
            # ``tbl += 1`` on an alias mutates the underlying table too.
            if isinstance(node.target, ast.Name):
                origin = self._aliases.get(node.target.id)
                if origin is not None:
                    self.report(
                        node,
                        f"augmented assignment mutates compiled table "
                        f"'{origin}' through an alias; take a .copy() first",
                    )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if not self.ctx.is_test_file:
            fn = node.func
            if isinstance(fn, ast.Attribute) and fn.attr in _MUTATING_METHODS:
                origin = self._internal_array(fn.value)
                if origin is not None:
                    self.report(
                        node,
                        f".{fn.attr}() mutates compiled table '{origin}' in "
                        "place; sort/fill a .copy() instead",
                    )
            for kw in node.keywords:
                if kw.arg == "out":
                    origin = self._internal_array(kw.value)
                    if origin is not None:
                        self.report(
                            node,
                            f"out= targets compiled table '{origin}'; numpy "
                            "will write the shared array in place",
                        )
        self.generic_visit(node)

    # ------------------------------------------------------------------ #
    # Leaky accessors
    # ------------------------------------------------------------------ #
    def _check_accessor(self, fn: ast.FunctionDef) -> None:
        if not (self._class_stack and self._class_stack[-1].startswith("Compiled")):
            return
        if fn.name.startswith("_") or fn.name in _SANCTIONED_METHODS:
            return
        # A body that touches .flags.writeable is the read-only-view idiom.
        for sub in ast.walk(fn):
            if isinstance(sub, ast.Attribute) and sub.attr == "writeable":
                return
        for sub in ast.walk(fn):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) and sub is not fn:
                continue
            if not isinstance(sub, ast.Return) or sub.value is None:
                continue
            ret = sub.value
            if (
                isinstance(ret, ast.Attribute)
                and isinstance(ret.value, ast.Name)
                and ret.value.id == "self"
                and ret.attr.lstrip("_") in _TABLE_ATTRS
            ):
                self.report(
                    sub,
                    f"public accessor '{fn.name}' returns internal array "
                    f"'self.{ret.attr}' by reference; return a .copy() or "
                    "mark the array read-only (flags.writeable = False)",
                )


def _display(expr: ast.expr) -> str:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return f"{_display(expr.value)}.{expr.attr}"
    return "<expr>"


__all__ = ["ArrayEscapeRule"]

"""R7 (swallowed-error): broad exception handlers must not drop errors.

A reproduction pipeline lives and dies by its error surface.  A handler
that catches ``Exception`` (or worse) and silently continues converts a
programming bug — an index error in a cost table, a shape mismatch in a
compiled blob — into a *quietly wrong number* in a figure.  The library's
own error hierarchy (:class:`~repro.exceptions.ReproError`) exists exactly
so expected failures (infeasible profiles, solver timeouts) can be caught
narrowly while genuine bugs propagate.

A handler is flagged when all of the following hold:

* it catches broadly — a bare ``except:``, ``except Exception``, or
  ``except BaseException`` (narrow catches such as ``except
  InfeasibleError: continue`` are legitimate control flow and never
  flagged);
* its body neither re-raises (no ``raise``) nor uses the bound exception
  object (``except Exception as exc: ... str(exc) ...`` is structured
  handling, e.g. wrapping the error into a report);
* its body does not hand the error to a logger (``log``/``warning``/
  ``error``/``exception``/``debug``/``info``/``print``).

The rule also knows the runtime's :class:`WorkerCrash` hierarchy
(:mod:`repro.runtime.transport`): ``PoolCrash`` subclasses both
``WorkerCrash`` and the stdlib ``BrokenProcessPool``, but ``HostLost`` —
a worker lost over :class:`~repro.runtime.remote.RemoteTransport` — does
*not*.  A handler written as ``except BrokenProcessPool`` therefore
silently narrows: it catches local pool crashes but lets remote host
loss escape.  Such handlers are flagged regardless of what their body
does; catch ``WorkerCrash``, or mark a deliberate boundary translation
with the escape hatch.

Deliberate broad swallows (e.g. best-effort cleanup in a ``finally``
replacement) carry the usual escape hatch: ``# reprolint: ok[R7] reason``.
Test files are exempt — teardown code may legitimately ignore everything.
"""

from __future__ import annotations

import ast
from typing import Iterator

from reprolint.rules.base import Rule

#: Exception names considered "broad": catching one of these catches bugs.
_BROAD_NAMES = {"Exception", "BaseException"}

#: The crash-hierarchy names an ``except BrokenProcessPool`` handler must
#: mention to not be a narrowing bug: ``WorkerCrash`` covers the whole
#: hierarchy (``HostLost`` included); a handler that names ``HostLost``
#: alongside ``BrokenProcessPool`` has spelled the union by hand.
_CRASH_UNION_NAMES = {"WorkerCrash", "HostLost"}

#: Called names that count as routing the error somewhere visible.
_LOGGING_CALLS = {
    "log",
    "debug",
    "info",
    "warning",
    "warn",
    "error",
    "exception",
    "critical",
    "print",
}


def _caught_names(type_node: ast.expr) -> Iterator[str]:
    """The exception class names a handler's ``type`` expression mentions."""
    nodes = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
    for node in nodes:
        if isinstance(node, ast.Name):
            yield node.id
        elif isinstance(node, ast.Attribute):
            yield node.attr


class SwallowedErrorRule(Rule):
    """R7: a broad ``except`` must re-raise, log, or use the exception."""

    rule_id = "R7"
    symbol = "swallowed-error"

    def _is_broad(self, handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        return any(n in _BROAD_NAMES for n in _caught_names(handler.type))

    def _body_handles(self, handler: ast.ExceptHandler) -> bool:
        bound = handler.name  # the ``as exc`` name, if any
        for stmt in handler.body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Raise):
                    return True
                if (
                    bound is not None
                    and isinstance(sub, ast.Name)
                    and sub.id == bound
                ):
                    return True
                if isinstance(sub, ast.Call):
                    fn = sub.func
                    name = (
                        fn.id
                        if isinstance(fn, ast.Name)
                        else fn.attr if isinstance(fn, ast.Attribute) else None
                    )
                    if name in _LOGGING_CALLS:
                        return True
        return False

    def _narrows_crash_hierarchy(self, handler: ast.ExceptHandler) -> bool:
        """``except BrokenProcessPool`` without ``WorkerCrash``: catches
        local pool crashes, misses remote :class:`HostLost`."""
        if handler.type is None:
            return False
        caught = set(_caught_names(handler.type))
        return (
            "BrokenProcessPool" in caught
            and not (caught & _CRASH_UNION_NAMES)
        )

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if not self.ctx.is_test_file and self._narrows_crash_hierarchy(node):
            self.report(
                node,
                "except BrokenProcessPool narrows the WorkerCrash hierarchy: "
                "HostLost (a worker lost over RemoteTransport) is not a "
                "BrokenProcessPool and escapes this handler; catch "
                "repro.runtime.WorkerCrash, or mark a deliberate boundary "
                "translation with '# reprolint: ok[R7] ...'",
            )
        if (
            not self.ctx.is_test_file
            and self._is_broad(node)
            and not self._body_handles(node)
        ):
            caught = (
                "bare except"
                if node.type is None
                else f"except {ast.unparse(node.type)}"
            )
            self.report(
                node,
                f"{caught!s} swallows the error without re-raising, logging, "
                "or using it; catch a narrow repro.exceptions type, or mark "
                "a deliberate best-effort swallow with '# reprolint: ok[R7] ...'",
            )
        self.generic_visit(node)


__all__ = ["SwallowedErrorRule"]

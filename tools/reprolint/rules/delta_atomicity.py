"""R10 (delta-atomicity): validate everything, then mutate — never interleave.

``ServiceMarket.apply`` and ``CompiledMarket.apply_delta`` are the
transaction boundary of the mutation protocol: callers (the dynamics
loop, the supervisor's replay path, soon per-shard reconcilers) rely on
a failed delta leaving the market exactly as it was.  That guarantee
holds only if every validator that can raise runs *before* the first
state write.  A write that sneaks ahead of a later ``raise`` turns a
rejected delta into a half-applied one — tombstoned rows with their
provider index still live, a capacity patched while its outage was
refused.

The rule scans ``apply``/``apply_delta`` methods of market-flavoured
classes (class name containing ``Market`` or starting with ``Compiled``)
and flags any state write — assignment, augmented assignment or
subscript store on ``self``, ``del`` of ``self`` state, or a mutating
container-method call (``.pop``/``.append``/… ) on ``self`` state —
whose line precedes a subsequent validation point.  Validation points
are ``raise`` statements and calls to ``_validate*``/``_check*``/
``require*`` helpers; post-commit verification hooks (``verify_*``,
e.g. ``verify_against`` under ``REPRO_DEBUG_INVARIANTS``) are *not*
validation and do not retro-flag the writes before them.  Rollback code
that deliberately writes before re-raising carries the usual
``# reprolint: ok[R10] reason`` escape hatch.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional

from reprolint.rules.base import Rule

#: Method names forming the delta transaction boundary.
_APPLY_METHODS = {"apply", "apply_delta"}
#: Enclosing class names the rule cares about.
_MARKET_CLASS_RE = re.compile(r"Market|^Compiled")
#: Validator helper calls that count as validation points.
_VALIDATOR_NAME_RE = re.compile(r"^_?(validate|check)|^require")
#: Container methods that mutate their receiver.
_MUTATOR_METHODS = {
    "pop", "append", "extend", "remove", "clear", "insert", "add",
    "update", "setdefault", "popitem", "insort",
}


def _self_rooted(expr: ast.expr) -> bool:
    """Is this expression an attribute/subscript chain hanging off ``self``?"""
    node = expr
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return isinstance(node, ast.Name) and node.id == "self"


class DeltaAtomicityRule(Rule):
    """R10: in apply/apply_delta, all validation precedes the first write."""

    rule_id = "R10"
    symbol = "delta-atomicity"

    def __init__(self, ctx) -> None:  # type: ignore[no-untyped-def]
        super().__init__(ctx)
        self._class_stack: List[str] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if (
            not self.ctx.is_test_file
            and node.name in _APPLY_METHODS
            and self._class_stack
            and _MARKET_CLASS_RE.search(self._class_stack[-1])
        ):
            self._check_apply(node)
        # Do not descend: nested defs are helpers, not the transaction body.

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    # ------------------------------------------------------------------ #
    def _check_apply(self, fn: ast.FunctionDef) -> None:
        writes: List[ast.stmt] = []
        last_validation_line: Optional[int] = None

        for node in ast.walk(fn):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not fn:
                continue
            stmt = self._as_write(node)
            if stmt is not None:
                writes.append(stmt)
                continue
            line = self._as_validation(node)
            if line is not None:
                if last_validation_line is None or line > last_validation_line:
                    last_validation_line = line

        if last_validation_line is None:
            return
        for stmt in writes:
            if stmt.lineno < last_validation_line:
                self.report(
                    stmt,
                    f"state write at line {stmt.lineno} precedes validation "
                    f"at line {last_validation_line}; a raised validator "
                    "would leave the delta half-applied — hoist all "
                    "validation above the first mutation",
                )

    def _as_write(self, node: ast.AST) -> Optional[ast.stmt]:
        if isinstance(node, ast.Assign):
            if any(
                _self_rooted(t) and isinstance(t, (ast.Attribute, ast.Subscript))
                for t in node.targets
            ):
                return node
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            t = node.target
            if isinstance(t, (ast.Attribute, ast.Subscript)) and _self_rooted(t):
                if not (isinstance(node, ast.AnnAssign) and node.value is None):
                    return node
        elif isinstance(node, ast.Delete):
            if any(_self_rooted(t) for t in node.targets):
                return node
        elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            call = node.value
            fnode = call.func
            if isinstance(fnode, ast.Attribute) and fnode.attr in _MUTATOR_METHODS:
                # ``self.x.pop(...)`` — or ``bisect.insort(self.x, ...)``
                # style where self-state is the first argument.
                if _self_rooted(fnode.value):
                    return node
                if call.args and _self_rooted(call.args[0]):
                    return node
            elif isinstance(fnode, ast.Name) and fnode.id in _MUTATOR_METHODS:
                if call.args and _self_rooted(call.args[0]):
                    return node
        return None

    def _as_validation(self, node: ast.AST) -> Optional[int]:
        if isinstance(node, ast.Raise):
            return node.lineno
        if isinstance(node, ast.Call):
            fnode = node.func
            name = (
                fnode.id if isinstance(fnode, ast.Name)
                else fnode.attr if isinstance(fnode, ast.Attribute)
                else None
            )
            if name is not None and _VALIDATOR_NAME_RE.search(name):
                return node.lineno
        return None


__all__ = ["DeltaAtomicityRule"]

"""Shared infrastructure for reprolint rules."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Iterator, List, Set

from reprolint.diagnostics import Diagnostic


@dataclass
class LintContext:
    """Everything a rule may want to know about the file under analysis."""

    path: str
    source: str
    tree: ast.Module
    #: ``True`` for ``repro/utils/rng.py`` — the one module allowed to touch
    #: ``numpy.random`` constructors directly.
    is_rng_module: bool = False
    #: ``True`` for files under a ``tests``/``benchmarks`` tree or named
    #: ``test_*.py`` — rule R5 (public-API rng plumbing) does not apply there.
    is_test_file: bool = False
    #: Names bound to the ``numpy`` module in this file (``numpy``, ``np``).
    numpy_aliases: Set[str] = field(default_factory=set)
    #: Names bound to the ``numpy.random`` module (``from numpy import random``).
    numpy_random_aliases: Set[str] = field(default_factory=set)
    #: Names bound to the stdlib ``random`` module.
    stdlib_random_aliases: Set[str] = field(default_factory=set)

    @classmethod
    def build(cls, path: str, source: str, tree: ast.Module) -> "LintContext":
        posix = PurePosixPath(path.replace("\\", "/"))
        parts = posix.parts
        ctx = cls(
            path=path,
            source=source,
            tree=tree,
            is_rng_module=posix.name == "rng.py" and "utils" in parts,
            is_test_file=(
                "tests" in parts
                or "benchmarks" in parts
                or posix.name.startswith("test_")
                or posix.name == "conftest.py"
            ),
        )
        ctx._collect_imports()
        return ctx

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "numpy" or alias.name.startswith("numpy."):
                        if alias.name == "numpy.random" and alias.asname:
                            self.numpy_random_aliases.add(alias.asname)
                        else:
                            self.numpy_aliases.add(bound)
                    elif alias.name == "random":
                        self.stdlib_random_aliases.add(alias.asname or "random")
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            self.numpy_random_aliases.add(alias.asname or "random")

    # ------------------------------------------------------------------ #
    # Shared AST helpers
    # ------------------------------------------------------------------ #
    def is_numpy_random_expr(self, node: ast.expr) -> bool:
        """Does ``node`` denote the ``numpy.random`` module object?"""
        if isinstance(node, ast.Name):
            return node.id in self.numpy_random_aliases
        if isinstance(node, ast.Attribute):
            return node.attr == "random" and (
                isinstance(node.value, ast.Name) and node.value.id in self.numpy_aliases
            )
        return False


def identifier_tokens(node: ast.expr) -> Iterator[str]:
    """Every identifier spelled inside an expression, lower-cased.

    Both bare names and attribute components count, so a heuristic match on
    ``capacity`` sees ``cl.compute_capacity`` as well as ``capacity``.
    """
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id.lower()
        elif isinstance(sub, ast.Attribute):
            yield sub.attr.lower()
        elif isinstance(sub, ast.keyword) and sub.arg:
            yield sub.arg.lower()


def called_names(node: ast.expr) -> Iterator[str]:
    """Names of functions called anywhere inside an expression."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            fn = sub.func
            if isinstance(fn, ast.Name):
                yield fn.id
            elif isinstance(fn, ast.Attribute):
                yield fn.attr


class Rule(ast.NodeVisitor):
    """Base class: a rule is a NodeVisitor that collects diagnostics."""

    rule_id: str = "R?"
    symbol: str = "unnamed"

    def __init__(self, ctx: LintContext) -> None:
        self.ctx = ctx
        self.diagnostics: List[Diagnostic] = []

    def run(self) -> List[Diagnostic]:
        self.visit(self.ctx.tree)
        return self.diagnostics

    def report(self, node: ast.AST, message: str) -> None:
        self.diagnostics.append(
            Diagnostic(
                path=self.ctx.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule=self.rule_id,
                symbol=self.symbol,
                message=message,
            )
        )


__all__ = ["LintContext", "Rule", "called_names", "identifier_tokens"]

"""R8 (worker-purity): the transitive closure shipped to workers must be pure.

The parallel sweep harness promises two things about worker execution:
results are bit-identical to a serial run, and a cell can be retried or
replayed from a checkpoint at any time.  Both die the moment anything in
the *reachable closure* of a dispatched task function touches shared
mutable state: a mutated module global makes results depend on which
worker ran which cells in what order; a module-level RNG stream makes
them depend on scheduling; a non-module-level task function does not even
survive pickling into the pool.

R3 (sweep-pickle) checks the *argument* at the dispatch site.  R8 is its
flow-aware big sibling: it roots a call-graph walk (see
:mod:`reprolint.project`) at every worker-dispatch site —

* ``map_tasks(fn, ...)`` / ``supervised_map(fn, ...)`` /
  ``supervise(fn, ...)``,
* ``pool.map`` / ``imap`` / ``imap_unordered`` / ``starmap`` /
  ``submit`` / ``apply_async`` / ``run`` on pool/executor/runtime-named
  receivers (``runtime.run(fn, tasks)`` and ``runtime.map(fn, tasks)``
  are the :class:`repro.runtime.Runtime` dispatch surface),
* builder keywords (``make_market=``, ``make_algorithms=``,
  ``seed_fn=``, ``task_fn=``, ``builder=``) on any call,
* and — with no call site at all — every module-level definition of a
  ``repro host`` agent entry point (``run_host_agent``): the agent body
  *is* worker execution on a remote machine, reached by the ``repro
  host`` CLI rather than by any statically visible dispatch call, so its
  whole closure gets the same purity walk —

and flags, anywhere in the reachable closure:

* **global mutation** — a function that declares ``global x`` and
  assigns it;
* **nonlocal mutation** — closed-over state shared between calls;
* **module-level RNG use** — draws on a module-scope rng-named object,
  or legacy ``np.random.<draw>`` / ``np.random.seed`` module-stream use;
* and at the dispatch site itself: **non-module-level task functions**
  (lambdas, nested defs — unpicklable) and **closure capture of
  unpicklable objects** (file handles, locks, pools) by a nested task.

``utils/rng.py`` is exempt from the closure checks — it is the
sanctioned wrapper, and a worker calling ``as_rng(seed)`` is exactly the
discipline the rule exists to protect.  Test files do not dispatch real
workers' closures and are skipped as dispatch roots.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set, Tuple

from reprolint.diagnostics import Diagnostic
from reprolint.rules.pickling import _BUILDER_KEYWORDS
from reprolint.rules.rng import _DRAW_METHODS

if TYPE_CHECKING:  # imported lazily at runtime: rules/__init__ loads before project
    from reprolint.project import FunctionRef, ModuleInfo, ProjectContext

#: Direct callee names that dispatch their first argument to workers.
_DISPATCH_FUNCS: Set[str] = {
    "map_tasks", "supervise", "supervised_map", "run_sweep", "submit_sweep",
}

#: Pool/executor methods whose first argument crosses the pool boundary
#: (``run`` covers ``Runtime.run``; a same-named method on a non-pool
#: receiver is filtered by the receiver-name check below).
_POOL_METHODS: Set[str] = {
    "map", "imap", "imap_unordered", "starmap", "apply_async", "submit", "run",
}

#: Receiver-name fragments that mark a call as pool dispatch.
_POOL_RECEIVERS = ("pool", "executor", "runner", "sweep", "runtime", "transport")

#: Module-level receiver names treated as RNG streams when drawn from.
_RNG_NAME_FRAGMENTS = ("rng", "random", "gen")

#: Constructors whose results cannot cross a pickle boundary.
_UNPICKLABLE_FACTORIES: Set[str] = {
    "open",
    "Lock",
    "RLock",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
    "Event",
    "Barrier",
    "Thread",
    "Pool",
    "ProcessPoolExecutor",
    "ThreadPoolExecutor",
    "socket",
    "create_connection",
}

#: Module-level function names that are worker execution in their own
#: right: a ``repro host`` agent's body runs on the remote machine, so it
#: roots the purity walk with no dispatch call site required.
_AGENT_ENTRY_POINTS: Set[str] = {"run_host_agent"}

#: Call-graph breadth bound (paranoia cap; real closures are tiny).
_MAX_CLOSURE = 500


class _DispatchSite:
    """One worker-dispatch call site with its task-callable expression."""

    def __init__(
        self, module: ModuleInfo, call: ast.Call, task_expr: ast.expr,
        local_defs: Dict[str, ast.FunctionDef],
        unpicklable_locals: Dict[str, str],
    ) -> None:
        self.module = module
        self.call = call
        self.task_expr = task_expr
        self.local_defs = local_defs
        self.unpicklable_locals = unpicklable_locals


def _is_dispatch_call(node: ast.Call) -> bool:
    fn = node.func
    if isinstance(fn, ast.Name):
        return fn.id in _DISPATCH_FUNCS
    if isinstance(fn, ast.Attribute):
        if fn.attr in _DISPATCH_FUNCS:
            return True
        if fn.attr in _POOL_METHODS and isinstance(fn.value, ast.Name):
            recv = fn.value.id.lower()
            return any(frag in recv for frag in _POOL_RECEIVERS)
    return False


class _SiteScanner(ast.NodeVisitor):
    """Collects dispatch sites in one module, tracking enclosing-function
    local defs and known-unpicklable local bindings for capture checks."""

    def __init__(self, module: ModuleInfo) -> None:
        self.module = module
        self.sites: List[_DispatchSite] = []
        #: Stack of (local function defs, unpicklable local bindings).
        self._scopes: List[Tuple[Dict[str, ast.FunctionDef], Dict[str, str]]] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if self._scopes:
            self._scopes[-1][0][node.name] = node
        self._scopes.append(({}, {}))
        self.generic_visit(node)
        self._scopes.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._scopes and isinstance(node.value, ast.Call):
            fn = node.value.func
            name = (
                fn.id if isinstance(fn, ast.Name)
                else fn.attr if isinstance(fn, ast.Attribute)
                else None
            )
            if name in _UNPICKLABLE_FACTORIES:
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        self._scopes[-1][1][tgt.id] = f"{name}(...)"
        self.generic_visit(node)

    def _local_defs(self) -> Dict[str, ast.FunctionDef]:
        merged: Dict[str, ast.FunctionDef] = {}
        for defs, _ in self._scopes:
            merged.update(defs)
        return merged

    def _unpicklable_locals(self) -> Dict[str, str]:
        merged: Dict[str, str] = {}
        for _, bindings in self._scopes:
            merged.update(bindings)
        return merged

    def visit_Call(self, node: ast.Call) -> None:
        task_exprs: List[ast.expr] = []
        if _is_dispatch_call(node) and node.args:
            task_exprs.append(node.args[0])
        task_exprs.extend(
            kw.value for kw in node.keywords if kw.arg in _BUILDER_KEYWORDS
        )
        for expr in task_exprs:
            self.sites.append(
                _DispatchSite(
                    self.module, node, expr,
                    self._local_defs(), self._unpicklable_locals(),
                )
            )
        self.generic_visit(node)


def _free_names(fn: ast.FunctionDef) -> Set[str]:
    """Names a function loads but does not bind (approximate closure set)."""
    bound: Set[str] = {a.arg for a in _all_args(fn)}
    loaded: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load):
                loaded.add(node.id)
            else:
                bound.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            bound.add(node.name)
    return loaded - bound


def _all_args(fn: ast.FunctionDef) -> Iterator[ast.arg]:
    args = fn.args
    yield from args.posonlyargs
    yield from args.args
    yield from args.kwonlyargs
    if args.vararg:
        yield args.vararg
    if args.kwarg:
        yield args.kwarg


def _assigned_names(fn: ast.FunctionDef) -> Set[str]:
    """Names stored to anywhere in the function body (locals, mostly)."""
    names: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
    return names


class WorkerPurityRule:
    """R8: the closure reachable from worker dispatch must be pure."""

    rule_id = "R8"
    symbol = "worker-purity"

    def __init__(self, project: ProjectContext) -> None:
        self.project = project
        self.diagnostics: List[Diagnostic] = []

    def report(self, module: ModuleInfo, node: ast.AST, message: str) -> None:
        self.diagnostics.append(
            Diagnostic(
                path=module.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule=self.rule_id,
                symbol=self.symbol,
                message=message,
            )
        )

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def run(self) -> List[Diagnostic]:
        roots: Dict[Tuple[str, int], Tuple[FunctionRef, str]] = {}
        for module in self.project.modules:
            if module.ctx.is_test_file:
                continue
            scanner = _SiteScanner(module)
            scanner.visit(module.tree)
            for site in scanner.sites:
                self._check_site(site, roots)
            # Agent entry points root the walk without a dispatch site:
            # the ``repro host`` CLI reaches them, not a visible call.
            for name, fn in module.functions.items():
                if name in _AGENT_ENTRY_POINTS:
                    roots.setdefault(
                        (module.path, fn.lineno),
                        ((module, fn), f"{name} (repro host agent)"),
                    )

        closure = self._closure(list(roots.values()))
        for (mod, fn), root_name in closure:
            if mod.ctx.is_rng_module or mod.ctx.is_test_file:
                continue
            self._check_purity(mod, fn, root_name)

        # A function reachable from several roots is checked once per root;
        # identical findings collapse here.
        unique = {
            (d.path, d.line, d.col, d.message): d for d in self.diagnostics
        }
        return list(unique.values())

    # ------------------------------------------------------------------ #
    # Dispatch sites
    # ------------------------------------------------------------------ #
    def _check_site(
        self,
        site: _DispatchSite,
        roots: Dict[Tuple[str, int], Tuple[FunctionRef, str]],
    ) -> None:
        from reprolint.project import unwrap_partial

        expr = unwrap_partial(site.task_expr)
        if isinstance(expr, ast.Lambda):
            self.report(
                site.module, expr,
                "lambda dispatched to workers is not a module-level function "
                "and cannot be pickled; define the task at module scope",
            )
            return
        if isinstance(expr, ast.Name) and expr.id in site.local_defs:
            nested = site.local_defs[expr.id]
            self.report(
                site.module, site.task_expr,
                f"task function '{expr.id}' is defined inside another "
                f"function; workers unpickle tasks by qualified name, so "
                f"task functions must live at module level",
            )
            captured = _free_names(nested) & set(site.unpicklable_locals)
            for name in sorted(captured):
                self.report(
                    site.module, nested,
                    f"task function '{nested.name}' captures unpicklable "
                    f"object '{name}' ({site.unpicklable_locals[name]}) from "
                    f"its enclosing scope; pass picklable data instead",
                )
            return
        ref = self.project.resolve_callable(site.module, site.task_expr)
        if ref is not None:
            mod, fn = ref
            roots.setdefault((mod.path, fn.lineno), (ref, fn.name))

    # ------------------------------------------------------------------ #
    # Call-graph closure
    # ------------------------------------------------------------------ #
    def _closure(
        self, roots: List[Tuple[FunctionRef, str]]
    ) -> List[Tuple[FunctionRef, str]]:
        seen: Set[Tuple[str, int]] = set()
        out: List[Tuple[FunctionRef, str]] = []
        stack = list(roots)
        while stack and len(out) < _MAX_CLOSURE:
            (mod, fn), root_name = stack.pop()
            key = (mod.path, fn.lineno)
            if key in seen:
                continue
            seen.add(key)
            out.append(((mod, fn), root_name))
            for call in ast.walk(fn):
                if not isinstance(call, ast.Call):
                    continue
                ref = self.project.resolve_call(mod, call)
                if ref is not None:
                    stack.append((ref, root_name))
        return out

    # ------------------------------------------------------------------ #
    # Purity checks on one reachable function
    # ------------------------------------------------------------------ #
    def _check_purity(self, mod: ModuleInfo, fn: ast.FunctionDef, root: str) -> None:
        where = f"'{fn.name}' is reachable from worker dispatch (task root '{root}')"

        global_decls: Set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Global):
                global_decls.update(node.names)
            elif isinstance(node, ast.Nonlocal):
                self.report(
                    mod, node,
                    f"{where} and mutates closed-over state via nonlocal "
                    f"{', '.join(node.names)}; workers must not share "
                    f"mutable state across calls",
                )
        if global_decls:
            stored = _assigned_names(fn) & global_decls
            for name in sorted(stored):
                self.report(
                    mod, fn,
                    f"{where} and mutates module-level global '{name}'; "
                    f"per-process globals silently diverge between workers "
                    f"and serial runs",
                )

        local_names = _assigned_names(fn) | {a.arg for a in _all_args(fn)}
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            if not isinstance(callee, ast.Attribute):
                continue
            # Legacy module-stream use: np.random.<draw> / np.random.seed.
            if mod.ctx.is_numpy_random_expr(callee.value):
                if callee.attr in _DRAW_METHODS or callee.attr == "seed":
                    self.report(
                        mod, node,
                        f"{where} and draws from the numpy global stream "
                        f"(np.random.{callee.attr}); workers must take an "
                        f"explicit seeded Generator",
                    )
                continue
            # Draws on a module-level rng-named stream.
            if (
                callee.attr in _DRAW_METHODS
                and isinstance(callee.value, ast.Name)
                and callee.value.id in mod.module_level_names
                and callee.value.id not in local_names
                and any(
                    frag in callee.value.id.lower()
                    for frag in _RNG_NAME_FRAGMENTS
                )
            ):
                self.report(
                    mod, node,
                    f"{where} and draws from module-level RNG "
                    f"'{callee.value.id}'; a shared stream makes results "
                    f"depend on worker scheduling — plumb a per-task "
                    f"Generator instead",
                )


__all__ = ["WorkerPurityRule"]

"""Entry point: ``python -m reprolint [paths...]``."""

from reprolint.cli import main

if __name__ == "__main__":
    raise SystemExit(main())

"""``python -m reprolint`` command line.

Exit codes are CI-diagnosable at a glance:

* ``0`` — clean (no findings);
* ``1`` — findings reported (the lint *worked*; the tree is dirty);
* ``2`` — usage error (argparse's own convention);
* ``3`` — the analyzer itself crashed (a reprolint bug or unreadable
  input, never a property of the linted code).
"""

from __future__ import annotations

import argparse
import sys
import traceback
from typing import List, Optional

from reprolint.engine import lint_paths
from reprolint.output import FORMATS, render
from reprolint.rules import ALL_RULES, TREE_RULES

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2  # argparse's own exit code for bad invocations
EXIT_CRASH = 3


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "Project-specific AST lint for the repro codebase: determinism "
            "(R1/R5), capacity-epsilon discipline (R2), sweep picklability "
            "(R3), stable iteration order (R4), mutation protocol (R6), "
            "error hygiene (R7), worker-closure purity (R8, whole-tree "
            "call graph), compiled-table write escapes (R9) and delta "
            "atomicity (R10)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (e.g. R1,R8); default: all",
    )
    parser.add_argument(
        "--format",
        choices=FORMATS,
        default="text",
        dest="fmt",
        help="output format (default: text); sarif feeds GitHub code scanning",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="print a per-rule diagnostic count after the findings (text only)",
    )
    return parser


def _list_rules() -> str:
    lines = ["reprolint rules:"]
    for cls in (*ALL_RULES, *TREE_RULES):
        doc = (cls.__doc__ or "").strip().splitlines()[0]
        lines.append(f"  {cls.rule_id:<3} {cls.symbol:<18} {doc}")
    lines.append(
        "  R0  suppression        '# reprolint: ok' comments must carry a reason"
    )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return EXIT_CLEAN
    rules = args.select.split(",") if args.select else None

    try:
        diagnostics = lint_paths(args.paths, rules=rules)
        report = render(diagnostics, args.fmt)
    except Exception:  # noqa: BLE001 - the crash path IS the feature here
        traceback.print_exc()
        print("reprolint: internal error (exit 3)", file=sys.stderr)
        return EXIT_CRASH

    if args.fmt == "text" and not diagnostics:
        report = ""  # a clean text run stays silent, as before
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(report + ("\n" if report else ""))
    elif report:
        print(report)

    if args.fmt == "text" and args.statistics and diagnostics:
        counts: dict = {}
        for diag in diagnostics:
            counts[diag.rule] = counts.get(diag.rule, 0) + 1
        for rule in sorted(counts):
            print(f"{counts[rule]:5d}  {rule}")

    return EXIT_FINDINGS if diagnostics else EXIT_CLEAN


__all__ = [
    "EXIT_CLEAN",
    "EXIT_CRASH",
    "EXIT_FINDINGS",
    "EXIT_USAGE",
    "main",
]

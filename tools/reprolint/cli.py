"""``python -m reprolint`` command line."""

from __future__ import annotations

import argparse
from typing import List, Optional

from reprolint.engine import lint_paths
from reprolint.rules import ALL_RULES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "Project-specific AST lint for the repro codebase: determinism "
            "(R1/R5), capacity-epsilon discipline (R2), sweep picklability "
            "(R3) and stable iteration order (R4)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (e.g. R1,R2); default: all",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="print a per-rule diagnostic count after the findings",
    )
    return parser


def _list_rules() -> str:
    lines = ["reprolint rules:"]
    for cls in ALL_RULES:
        doc = (cls.__doc__ or "").strip().splitlines()[0]
        lines.append(f"  {cls.rule_id}  {cls.symbol:<18} {doc}")
    lines.append("  R0  suppression        '# reprolint: ok' comments must carry a reason")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    rules = args.select.split(",") if args.select else None
    diagnostics = lint_paths(args.paths, rules=rules)
    for diag in diagnostics:
        print(diag.format())
    if args.statistics and diagnostics:
        counts: dict = {}
        for diag in diagnostics:
            counts[diag.rule] = counts.get(diag.rule, 0) + 1
        for rule in sorted(counts):
            print(f"{counts[rule]:5d}  {rule}")
    if diagnostics:
        n = len(diagnostics)
        print(f"reprolint: {n} finding{'s' if n != 1 else ''}")
        return 1
    return 0


__all__ = ["main"]

"""JSON (de)serialisation of networks, markets and assignments.

Reproducibility plumbing: an experiment can dump the exact market instance
it ran on and anyone can reload it bit-identically — no re-rolling of RNG
streams required. Only plain-JSON types are emitted.

The congestion function serialises by registry name + parameters; custom
callables are rejected with a clear error rather than pickled.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

from repro.core.assignment import CachingAssignment
from repro.exceptions import ConfigurationError
from repro.market.costs import (
    CongestionFunction,
    LinearCongestion,
    MM1Congestion,
    QuadraticCongestion,
)
from repro.market.market import ServiceMarket
from repro.market.pricing import Pricing
from repro.market.service import Service, ServiceProvider
from repro.network.elements import Cloudlet, DataCenter
from repro.network.topology import MECNetwork

FORMAT_VERSION = 1


# --------------------------------------------------------------------- #
# Congestion registry
# --------------------------------------------------------------------- #
def _congestion_to_dict(fn: CongestionFunction) -> Dict:
    if isinstance(fn, LinearCongestion):
        return {"kind": "linear"}
    if isinstance(fn, QuadraticCongestion):
        return {"kind": "quadratic", "scale": fn.scale}
    if isinstance(fn, MM1Congestion):
        return {
            "kind": "mm1",
            "capacity": fn.capacity,
            "saturation_penalty": fn.saturation_penalty,
        }
    raise ConfigurationError(
        f"cannot serialise congestion function {type(fn).__name__}; "
        "register it in repro.io or use a built-in model"
    )


def _congestion_from_dict(data: Dict) -> CongestionFunction:
    kind = data.get("kind")
    if kind == "linear":
        return LinearCongestion()
    if kind == "quadratic":
        return QuadraticCongestion(scale=data["scale"])
    if kind == "mm1":
        return MM1Congestion(
            capacity=data["capacity"],
            saturation_penalty=data["saturation_penalty"],
        )
    raise ConfigurationError(f"unknown congestion kind {kind!r}")


# --------------------------------------------------------------------- #
# Network
# --------------------------------------------------------------------- #
def network_to_dict(network: MECNetwork) -> Dict:
    return {
        "name": network.name,
        "nodes": sorted(int(n) for n in network.graph.nodes),
        "links": [
            {
                "u": int(link.u),
                "v": int(link.v),
                "bandwidth": link.bandwidth,
                "delay_ms": link.delay_ms,
            }
            for link in network.links()
        ],
        "cloudlets": [
            {
                "node_id": cl.node_id,
                "compute_capacity": cl.compute_capacity,
                "bandwidth_capacity": cl.bandwidth_capacity,
                "alpha": cl.alpha,
                "beta": cl.beta,
                "bdw_unit_cost": cl.bdw_unit_cost,
                "name": cl.name,
            }
            for cl in network.cloudlets
        ],
        "data_centers": [
            {
                "node_id": dc.node_id,
                "name": dc.name,
                "processing_unit_cost": dc.processing_unit_cost,
            }
            for dc in network.data_centers
        ],
    }


def network_from_dict(data: Dict) -> MECNetwork:
    network = MECNetwork(name=data.get("name", "mec"))
    for node in data["nodes"]:
        network.add_switch(int(node))
    for link in data["links"]:
        network.add_link(
            int(link["u"]), int(link["v"]),
            bandwidth=link["bandwidth"], delay_ms=link["delay_ms"],
        )
    for cl in data["cloudlets"]:
        network.attach_cloudlet(Cloudlet(**cl))
    for dc in data["data_centers"]:
        network.attach_data_center(DataCenter(**dc))
    network.validate()
    return network


# --------------------------------------------------------------------- #
# Market
# --------------------------------------------------------------------- #
_SERVICE_FIELDS = (
    "service_id", "requests", "compute_per_request", "bandwidth_per_request",
    "data_volume_gb", "home_dc", "user_node", "update_ratio",
    "sync_frequency", "request_traffic_gb", "instantiation_cost",
)


def market_to_dict(market: ServiceMarket) -> Dict:
    pricing = market.cost_model.pricing
    return {
        "version": FORMAT_VERSION,
        "network": network_to_dict(market.network),
        "pricing": {
            "transmit_per_gb": pricing.transmit_per_gb,
            "process_per_gb": pricing.process_per_gb,
            "hop_surcharge": pricing.hop_surcharge,
        },
        "congestion": _congestion_to_dict(market.cost_model.congestion),
        "remote_premium": market.cost_model.remote_premium,
        "providers": [
            {
                **{f: getattr(p.service, f) for f in _SERVICE_FIELDS},
                "user_clusters": (
                    [list(c) for c in p.service.user_clusters]
                    if p.service.user_clusters is not None
                    else None
                ),
                "coordinated": p.coordinated,
                "name": p.name,
            }
            for p in market.providers
        ],
    }


def market_from_dict(data: Dict) -> ServiceMarket:
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported market format version {version!r}"
        )
    network = network_from_dict(data["network"])
    providers = []
    for entry in data["providers"]:
        clusters = entry.get("user_clusters")
        service = Service(
            **{f: entry[f] for f in _SERVICE_FIELDS},
            user_clusters=(
                tuple((int(n), float(w)) for n, w in clusters)
                if clusters is not None
                else None
            ),
        )
        provider = ServiceProvider(
            provider_id=service.service_id,
            service=service,
            name=entry.get("name", ""),
        )
        provider.coordinated = bool(entry.get("coordinated", False))
        providers.append(provider)
    return ServiceMarket(
        network,
        providers,
        pricing=Pricing(**data["pricing"]),
        congestion=_congestion_from_dict(data["congestion"]),
        remote_premium=float(data.get("remote_premium", 20.0)),
    )


# --------------------------------------------------------------------- #
# Assignments
# --------------------------------------------------------------------- #
def assignment_to_dict(assignment: CachingAssignment) -> Dict:
    return {
        "version": FORMAT_VERSION,
        "algorithm": assignment.algorithm,
        "runtime_s": assignment.runtime_s,
        "placement": {str(pid): int(node) for pid, node in assignment.placement.items()},
        "rejected": sorted(int(pid) for pid in assignment.rejected),
    }


def assignment_from_dict(data: Dict, market: ServiceMarket) -> CachingAssignment:
    if data.get("version") != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported assignment format version {data.get('version')!r}"
        )
    return CachingAssignment(
        market=market,
        placement={int(pid): int(node) for pid, node in data["placement"].items()},
        rejected=frozenset(int(pid) for pid in data["rejected"]),
        algorithm=data.get("algorithm", ""),
        runtime_s=float(data.get("runtime_s", 0.0)),
    )


# --------------------------------------------------------------------- #
# File helpers
# --------------------------------------------------------------------- #
def save_market(market: ServiceMarket, path: Union[str, Path]) -> None:
    Path(path).write_text(json.dumps(market_to_dict(market), indent=2))


def load_market(path: Union[str, Path]) -> ServiceMarket:
    return market_from_dict(json.loads(Path(path).read_text()))


def save_assignment(assignment: CachingAssignment, path: Union[str, Path]) -> None:
    Path(path).write_text(json.dumps(assignment_to_dict(assignment), indent=2))


def load_assignment(path: Union[str, Path], market: ServiceMarket) -> CachingAssignment:
    return assignment_from_dict(json.loads(Path(path).read_text()), market)


__all__ = [
    "FORMAT_VERSION",
    "network_to_dict",
    "network_from_dict",
    "market_to_dict",
    "market_from_dict",
    "assignment_to_dict",
    "assignment_from_dict",
    "save_market",
    "load_market",
    "save_assignment",
    "load_assignment",
]

"""Fault-tolerant execution of sweep grids: the supervising executor.

``pool.map`` turns one worker crash into a dead multi-hour grid: a
``BrokenProcessPool`` aborts every cell, nothing is retried, and nothing
can be resumed.  :func:`supervised_map` replaces it with a supervisor that
treats each cell as an independently retriable unit of work:

* **Per-task timeout.**  ``RetryPolicy.timeout_s`` arms a ``SIGALRM``
  timer inside the worker around the task body, so a wedged cell raises
  :class:`~repro.exceptions.TaskTimeout` instead of stalling the grid.
* **Bounded retry, deterministic backoff.**  Each failed attempt requeues
  the cell until ``RetryPolicy.max_attempts`` is spent.  The backoff
  delay is a pure function of the attempt number —
  ``base_delay_s * backoff**(attempt-1)`` — never of the wall clock, so
  scheduling decisions replay identically (the actual sleeping is an
  injectable side effect).
* **Worker-crash isolation.**  A SIGKILLed worker breaks the whole
  ``ProcessPoolExecutor``, and the supervisor cannot tell which of the
  (at most ``workers``) in-flight cells killed it.  It refunds their
  attempts, rebuilds the pool, and re-runs the suspects one at a time —
  only a cell that breaks the pool while running *alone* is charged the
  crash.  Only a cell that keeps dying exhausts its budget and surfaces
  as a structured :class:`TaskFailure` in the result list — innocent
  bystanders are never charged and the rest of the grid completes.
* **Checkpoint journaling.**  With a :class:`CheckpointJournal`, every
  completed cell is appended to a JSONL file (flushed and fsynced) the
  moment it finishes.  A re-run that loads the journal replays completed
  cells from disk — JSON round-trips Python floats exactly
  (shortest-repr), so a resumed sweep is bit-identical to an
  uninterrupted one — and executes only the missing cells.
* **Published blobs.**  Pickling a multi-megabyte ``CompiledMarket``
  into every task payload is what drove ``parallel_sweep.speedup`` to
  0.70x.  :class:`ShardExecutor` instead *publishes* each heavy blob
  once per ``(shard id, delta sequence number)`` key — pickled to a
  spill file, re-read and memoized inside each persistent worker by
  :func:`fetch_blob` — so tasks carry only a token string and the
  per-task cost stays flat across epochs of an unchanged shard.

The executor is generic over the task type; the sweep integration lives
in :mod:`repro.experiments.parallel`.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import tempfile
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

from repro.exceptions import ConfigurationError, TaskTimeout

T = TypeVar("T")
R = TypeVar("R")

#: JSON-serialisable journal key for one cell (e.g. ``(x_index, rep)``).
TaskKey = Tuple[object, ...]


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervisor retries a failing cell.

    ``delay(attempt)`` is deliberately a pure function of the attempt
    number — retry *scheduling* never consults the wall clock, which the
    property tests pin.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    backoff: float = 2.0
    #: Per-attempt time budget, enforced by a SIGALRM timer inside the
    #: worker; ``None`` disables enforcement.
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0:
            raise ConfigurationError(
                f"base_delay_s must be >= 0, got {self.base_delay_s}"
            )
        if self.backoff < 1:
            raise ConfigurationError(f"backoff must be >= 1, got {self.backoff}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigurationError(
                f"timeout_s must be positive, got {self.timeout_s}"
            )

    def delay(self, attempt: int) -> float:
        """Backoff before re-running an attempt that just failed.

        ``attempt`` is 1-based (the attempt that failed); the delay grows
        exponentially: ``base_delay_s * backoff**(attempt-1)``.
        """
        if attempt < 1:
            raise ConfigurationError(f"attempt must be >= 1, got {attempt}")
        return self.base_delay_s * self.backoff ** (attempt - 1)


@dataclass(frozen=True)
class TaskFailure:
    """A cell that exhausted its retry budget — the structured tombstone
    that takes the place of its result instead of aborting the sweep."""

    key: TaskKey
    attempts: int
    #: ``"exception"``, ``"timeout"`` or ``"worker-crash"``.
    kind: str
    error_type: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TaskFailure(key={self.key}, kind={self.kind}, "
            f"attempts={self.attempts}, {self.error_type}: {self.message})"
        )


class CheckpointJournal:
    """An append-only JSONL journal of completed cells.

    Each line is ``{"key": [...], "value": <payload>}``; records are
    flushed and fsynced as they complete, so a SIGKILL loses at most the
    line being written (a truncated trailing line is ignored on load).
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = os.fspath(path)

    def load(self) -> Dict[TaskKey, object]:
        """All intact records, ``key -> payload``; missing file -> empty."""
        records: Dict[TaskKey, object] = {}
        if not os.path.exists(self.path):
            return records
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    # A crash mid-append leaves one truncated line at the
                    # tail; the cell simply re-runs.
                    continue
                records[_as_key(entry["key"])] = entry["value"]
        return records

    def record(self, key: TaskKey, value: object) -> None:
        """Durably append one completed cell."""
        line = json.dumps({"key": list(key), "value": value}, sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def clear(self) -> None:
        """Start a fresh journal (truncate any existing file)."""
        with open(self.path, "w", encoding="utf-8"):
            pass


def _as_key(raw: object) -> TaskKey:
    if isinstance(raw, (list, tuple)):
        return tuple(raw)
    return (raw,)


def _invoke(fn: Callable[[T], R], task: T, timeout_s: Optional[float]) -> R:
    """Run one attempt, optionally under a SIGALRM deadline.

    Runs in the worker's main thread (both the pool workers and the
    serial path), where ``signal`` is allowed to install handlers; the
    timer is disarmed and the previous handler restored on every exit.
    """
    if not timeout_s:
        return fn(task)
    import signal

    def _expired(signum, frame):
        raise TaskTimeout(f"task exceeded its {timeout_s}s budget")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        return fn(task)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _failure(key: TaskKey, attempts: int, exc: BaseException) -> TaskFailure:
    if isinstance(exc, TaskTimeout):
        kind = "timeout"
    elif isinstance(exc, BrokenProcessPool):
        kind = "worker-crash"
    else:
        kind = "exception"
    return TaskFailure(
        key=key,
        attempts=attempts,
        kind=kind,
        error_type=type(exc).__name__,
        message=str(exc),
    )


def supervised_map(
    fn: Callable[[T], R],
    tasks: Sequence[T],
    keys: Optional[Sequence[TaskKey]] = None,
    workers: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    journal: Optional[CheckpointJournal] = None,
    encode: Optional[Callable[[R], object]] = None,
    decode: Optional[Callable[[object], R]] = None,
    sleep: Callable[[float], None] = time.sleep,
    fail_fast: bool = False,
) -> List[Union[R, TaskFailure]]:
    """Apply ``fn`` to every task under supervision.

    Returns one entry per task, in task order: the result, or a
    :class:`TaskFailure` for cells that exhausted their retry budget.

    Parameters
    ----------
    keys:
        One JSON-serialisable key per task (defaults to ``(index,)``);
        identifies cells in the journal and in failures.
    retry:
        The :class:`RetryPolicy`; defaults to three attempts with 50 ms
        doubling backoff and no timeout.
    journal:
        Optional :class:`CheckpointJournal`. Cells already present in it
        are returned from disk without running; completed cells are
        appended as they finish. Pass ``encode``/``decode`` to map
        results to/from their JSON payloads (identity by default).
    sleep:
        The side-effect used to realise backoff delays. Injectable so
        tests (and the purity property) can run without waiting.
    fail_fast:
        Re-raise the original exception when a cell exhausts its retry
        budget, instead of recording a :class:`TaskFailure` — the
        ``pool.map``-compatible contract :func:`repro.experiments.
        parallel.map_tasks` keeps.
    """
    retry = retry if retry is not None else RetryPolicy()
    encode = encode if encode is not None else (lambda r: r)
    decode = decode if decode is not None else (lambda p: p)
    if keys is None:
        keys = [(i,) for i in range(len(tasks))]
    if len(keys) != len(tasks):
        raise ConfigurationError(
            f"got {len(keys)} keys for {len(tasks)} tasks"
        )
    if len(set(keys)) != len(keys):
        raise ConfigurationError("task keys must be unique")

    from repro.experiments.parallel import resolve_workers

    results: List[Union[R, TaskFailure, None]] = [None] * len(tasks)
    remaining = deque(range(len(tasks)))

    if journal is not None:
        completed = journal.load()
        remaining = deque(
            i for i in remaining if keys[i] not in completed
        )
        for i, key in enumerate(keys):
            if key in completed:
                results[i] = decode(completed[key])

    def _finish(i: int, value: R) -> None:
        results[i] = value
        if journal is not None:
            journal.record(keys[i], encode(value))

    attempts = [0] * len(tasks)
    n_workers = resolve_workers(workers)

    if n_workers <= 1 or len(remaining) <= 1:
        while remaining:
            i = remaining.popleft()
            attempts[i] += 1
            try:
                _finish(i, _invoke(fn, tasks[i], retry.timeout_s))
            except Exception as exc:
                if attempts[i] < retry.max_attempts:
                    sleep(retry.delay(attempts[i]))
                    remaining.append(i)
                elif fail_fast:
                    raise
                else:
                    results[i] = _failure(keys[i], attempts[i], exc)
        return results  # type: ignore[return-value]

    n_workers = min(n_workers, len(remaining))
    pool = ProcessPoolExecutor(max_workers=n_workers)
    inflight: Dict[object, int] = {}
    # Cells that were in flight when the pool broke. The supervisor
    # cannot tell which of them killed the worker, so their attempts are
    # refunded and they re-run one at a time — only a cell that breaks
    # the pool while running alone is charged the crash.
    quarantine: deque = deque()

    def _handle_error(i: int, error: BaseException, requeue: deque) -> None:
        if attempts[i] < retry.max_attempts:
            sleep(retry.delay(attempts[i]))
            requeue.append(i)
        elif fail_fast:
            raise error
        else:
            results[i] = _failure(keys[i], attempts[i], error)

    try:
        while remaining or inflight or quarantine:
            while quarantine:
                i = quarantine.popleft()
                attempts[i] += 1
                fut = pool.submit(_invoke, fn, tasks[i], retry.timeout_s)
                try:
                    _finish(i, fut.result())
                except BrokenProcessPool as exc:
                    # Proven killer: it broke the pool running alone.
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = ProcessPoolExecutor(max_workers=n_workers)
                    _handle_error(i, exc, quarantine)
                except Exception as exc:
                    _handle_error(i, exc, remaining)
            while remaining and len(inflight) < n_workers:
                i = remaining.popleft()
                attempts[i] += 1
                fut = pool.submit(_invoke, fn, tasks[i], retry.timeout_s)
                inflight[fut] = i
            if not inflight:
                continue
            done, _ = wait(set(inflight), return_when=FIRST_COMPLETED)
            pool_broken = False
            for fut in done:
                i = inflight.pop(fut)
                try:
                    _finish(i, fut.result())
                except BrokenProcessPool:
                    pool_broken = True
                    attempts[i] -= 1
                    quarantine.append(i)
                except Exception as exc:
                    _handle_error(i, exc, remaining)
            if pool_broken:
                # Every other in-flight future of a broken pool fails
                # with it too; refund and quarantine them all, then start
                # a fresh pool for the isolation re-runs.
                for fut, i in list(inflight.items()):
                    exc: Optional[BaseException] = None
                    try:
                        exc = fut.exception(timeout=60.0)
                        if exc is None:
                            # Raced to completion before the pool died.
                            _finish(i, fut.result())
                            continue
                    except Exception as wait_exc:
                        exc = wait_exc
                    if isinstance(exc, BrokenProcessPool):
                        attempts[i] -= 1
                        quarantine.append(i)
                    else:
                        _handle_error(i, exc, remaining)
                inflight.clear()
                pool.shutdown(wait=False, cancel_futures=True)
                pool = ProcessPoolExecutor(max_workers=n_workers)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return results  # type: ignore[return-value]


# --------------------------------------------------------------------- #
# Published blobs: ship heavy payloads to persistent workers once
# --------------------------------------------------------------------- #
#: Worker-side memo of published blobs, keyed by spill-file token. Each
#: pool worker deserialises a given blob at most once per publication;
#: FIFO-bounded so long runs cannot accumulate stale shard views.
_BLOB_CACHE: Dict[str, object] = {}
_BLOB_CACHE_ORDER: List[str] = []
_BLOB_CACHE_LIMIT = 8


def fetch_blob(token: str) -> object:
    """Load a published blob by its token, memoized per process.

    Called from inside worker tasks: the first fetch of a token unpickles
    the spill file; later fetches in the same worker are dictionary hits.
    """
    if token in _BLOB_CACHE:
        return _BLOB_CACHE[token]
    with open(token, "rb") as fh:
        blob = pickle.load(fh)
    _BLOB_CACHE[token] = blob
    _BLOB_CACHE_ORDER.append(token)
    while len(_BLOB_CACHE_ORDER) > _BLOB_CACHE_LIMIT:
        _BLOB_CACHE.pop(_BLOB_CACHE_ORDER.pop(0), None)
    return blob


class ShardExecutor:
    """A persistent worker pool with publish-once blob shipping.

    Built for the sharded market loop: each shard's compiled sub-view is
    published under a ``(shard id, delta sequence number)`` key and
    pickled to a spill file exactly once; tasks reference it by token and
    each persistent worker unpickles it at most once (see
    :func:`fetch_blob`). ``run`` preserves task order, and with one
    worker (or one task) executes in-process — bit-identical results by
    construction, which the equivalence tests pin. A worker crash
    (``BrokenProcessPool``) tears the pool down and deterministically
    falls back to the in-process path for the whole batch.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        spill_dir: Optional[Union[str, os.PathLike]] = None,
    ) -> None:
        from repro.experiments.parallel import resolve_workers

        self.workers = resolve_workers(workers)
        self._spill_dir = os.fspath(spill_dir) if spill_dir is not None else None
        self._owns_spill_dir = spill_dir is None
        self._published: Dict[object, str] = {}
        self._n_published = 0
        self._pool: Optional[ProcessPoolExecutor] = None
        self._closed = False

    def _ensure_spill_dir(self) -> str:
        if self._spill_dir is None:
            self._spill_dir = tempfile.mkdtemp(prefix="repro-shard-")
        return self._spill_dir

    def publish(self, key: object, obj: object) -> str:
        """Publish ``obj`` under ``key``; returns its token.

        Re-publishing an already-published key is a no-op returning the
        existing token — the caller can publish unconditionally per epoch
        and still pickle each ``(shard, seq)`` view once.
        """
        if self._closed:
            raise ConfigurationError("ShardExecutor is closed")
        token = self._published.get(key)
        if token is not None:
            return token
        path = os.path.join(
            self._ensure_spill_dir(), f"blob-{self._n_published}.pkl"
        )
        self._n_published += 1
        with open(path, "wb") as fh:
            pickle.dump(obj, fh, protocol=pickle.HIGHEST_PROTOCOL)
        self._published[key] = path
        return path

    def run(
        self, fn: Callable[[T], R], tasks: Sequence[T]
    ) -> List[R]:
        """Apply ``fn`` to every task, preserving task order."""
        if self._closed:
            raise ConfigurationError("ShardExecutor is closed")
        tasks = list(tasks)
        if self.workers <= 1 or len(tasks) <= 1:
            return [fn(task) for task in tasks]
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        futures = [self._pool.submit(fn, task) for task in tasks]
        try:
            return [fut.result() for fut in futures]
        except BrokenProcessPool:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            # Deterministic fallback: the whole batch re-runs in-process.
            return [fn(task) for task in tasks]

    def close(self) -> None:
        """Shut the pool down and remove an owned spill directory."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        if self._owns_spill_dir and self._spill_dir is not None:
            shutil.rmtree(self._spill_dir, ignore_errors=True)
            self._spill_dir = None

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = [
    "CheckpointJournal",
    "RetryPolicy",
    "ShardExecutor",
    "TaskFailure",
    "TaskKey",
    "fetch_blob",
    "supervised_map",
]

"""Deprecated: the supervising executor moved to :mod:`repro.runtime`.

This module is a thin compatibility shim.  The supervision policy now
lives in :mod:`repro.runtime.supervisor`, the checkpoint journal in
:mod:`repro.runtime.journal`, and the publish-once blob machinery in
:mod:`repro.runtime.transport`; the public entry point is the
:class:`repro.runtime.Runtime` facade.  Every old name keeps working
from here (with a :class:`DeprecationWarning` at import), including
``ShardExecutor`` — now a small adapter over :class:`Runtime` whose
``run`` keeps the old ordered, unsupervised contract.

Migration map::

    supervised_map(...)            -> Runtime(workers=n).run(...)
    CheckpointJournal              -> repro.runtime.CheckpointJournal
    RetryPolicy / TaskFailure      -> repro.runtime.{RetryPolicy,TaskFailure}
    fetch_blob(token)              -> repro.runtime.fetch_blob (refs or tokens)
    ShardExecutor(workers=n)       -> Runtime(workers=n)
    ShardExecutor.run(fn, tasks)   -> Runtime.map(fn, tasks)
    ShardExecutor.publish(key, o)  -> Runtime.publish(key, o)  (BlobRef)
"""

from __future__ import annotations

import os
import warnings
from typing import Callable, List, Optional, Sequence, TypeVar, Union

from repro.runtime.executor import Runtime
from repro.runtime.journal import CheckpointJournal, TaskKey
from repro.runtime.supervisor import RetryPolicy, TaskFailure, supervised_map
from repro.runtime.transport import fetch_blob

T = TypeVar("T")
R = TypeVar("R")

warnings.warn(
    "repro.experiments.supervisor is deprecated: the execution substrate "
    "moved to repro.runtime (Runtime facade, transports, supervisor, "
    "journal); update imports to repro.runtime",
    DeprecationWarning,
    stacklevel=2,
)


class ShardExecutor(Runtime):
    """Deprecated alias of :class:`repro.runtime.Runtime`.

    Keeps the pre-runtime surface: ``run(fn, tasks)`` is the ordered,
    unsupervised batch (now :meth:`Runtime.map`), ``publish`` returns a
    :class:`~repro.runtime.transport.BlobRef` that :func:`fetch_blob`
    resolves exactly like the old string tokens.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        spill_dir: Optional[Union[str, os.PathLike]] = None,
    ) -> None:
        super().__init__(workers=workers, spill_dir=spill_dir)

    def run(  # type: ignore[override]
        self, fn: Callable[[T], R], tasks: Sequence[T]
    ) -> List[R]:
        """Apply ``fn`` to every task, preserving task order (the old
        unsupervised contract; supervised grids use ``Runtime.run``)."""
        return self.map(fn, tasks)


__all__ = [
    "CheckpointJournal",
    "RetryPolicy",
    "ShardExecutor",
    "TaskFailure",
    "TaskKey",
    "fetch_blob",
    "supervised_map",
]

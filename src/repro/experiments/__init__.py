"""Experiment drivers regenerating every evaluation figure of the paper.

Each ``fig*`` function in :mod:`repro.experiments.figures` reproduces one
figure's data series; :mod:`repro.experiments.settings` pins the Section
IV.A parameters (with a ``quick`` preset for CI/benchmarks);
:mod:`repro.experiments.report` renders the series as the tables the
benchmark harness prints.
"""

from repro.experiments.settings import ExperimentConfig, PAPER, QUICK
from repro.experiments.harness import (
    AlgorithmMetrics,
    AssignmentRecord,
    SweepResult,
    evaluate_algorithms,
    legacy_point_seed,
    sweep,
)
from repro.experiments.parallel import (
    ParallelSweepRunner,
    map_tasks,
    resolve_workers,
    sweep_task_seed,
)
from repro.runtime import (
    CheckpointJournal,
    RetryPolicy,
    TaskFailure,
    supervised_map,
)
from repro.experiments.figures import (
    fig2_network_size,
    fig3_selfish_fraction,
    fig5_testbed,
    fig6_testbed_parameters,
    fig7_max_demands,
    ablation_selection_strategies,
    ablation_congestion_models,
    ablation_gap_solvers,
    ablation_topologies,
    poa_study,
)
from repro.experiments.convergence import ConvergencePoint, convergence_study
from repro.experiments.report import render_sweep, series_of, sweep_to_csv
from repro.experiments.stats import mean_ci, paired_comparison, summarize

__all__ = [
    "ExperimentConfig",
    "PAPER",
    "QUICK",
    "AlgorithmMetrics",
    "AssignmentRecord",
    "CheckpointJournal",
    "ParallelSweepRunner",
    "RetryPolicy",
    "SweepResult",
    "TaskFailure",
    "supervised_map",
    "evaluate_algorithms",
    "legacy_point_seed",
    "map_tasks",
    "resolve_workers",
    "sweep",
    "sweep_task_seed",
    "fig2_network_size",
    "fig3_selfish_fraction",
    "fig5_testbed",
    "fig6_testbed_parameters",
    "fig7_max_demands",
    "ablation_selection_strategies",
    "ablation_congestion_models",
    "ablation_gap_solvers",
    "ablation_topologies",
    "poa_study",
    "render_sweep",
    "series_of",
    "sweep_to_csv",
    "mean_ci",
    "paired_comparison",
    "summarize",
    "ConvergencePoint",
    "convergence_study",
]

"""Experiment drivers regenerating every evaluation figure of the paper.

Each ``fig*`` function in :mod:`repro.experiments.figures` reproduces one
figure's data series; :mod:`repro.experiments.settings` pins the Section
IV.A parameters (with a ``quick`` preset for CI/benchmarks);
:mod:`repro.experiments.report` renders the series as the tables the
benchmark harness prints.
"""

from repro.experiments.settings import ExperimentConfig, PAPER, QUICK
from repro.experiments.harness import (
    AlgorithmMetrics,
    SweepResult,
    evaluate_algorithms,
    sweep,
)
from repro.experiments.figures import (
    fig2_network_size,
    fig3_selfish_fraction,
    fig5_testbed,
    fig6_testbed_parameters,
    fig7_max_demands,
    ablation_selection_strategies,
    ablation_congestion_models,
    ablation_gap_solvers,
    ablation_topologies,
    poa_study,
)
from repro.experiments.convergence import ConvergencePoint, convergence_study
from repro.experiments.report import render_sweep, series_of, sweep_to_csv
from repro.experiments.stats import mean_ci, paired_comparison, summarize

__all__ = [
    "ExperimentConfig",
    "PAPER",
    "QUICK",
    "AlgorithmMetrics",
    "SweepResult",
    "evaluate_algorithms",
    "sweep",
    "fig2_network_size",
    "fig3_selfish_fraction",
    "fig5_testbed",
    "fig6_testbed_parameters",
    "fig7_max_demands",
    "ablation_selection_strategies",
    "ablation_congestion_models",
    "ablation_gap_solvers",
    "ablation_topologies",
    "poa_study",
    "render_sweep",
    "series_of",
    "sweep_to_csv",
    "mean_ci",
    "paired_comparison",
    "summarize",
    "ConvergencePoint",
    "convergence_study",
]

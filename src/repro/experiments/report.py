"""Rendering of sweep results as plain-text tables and series.

The benchmark harness prints exactly what the paper's figures plot: one row
per x value, one column per algorithm, for each of the four metrics.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.harness import SweepResult
from repro.utils.tables import Table, format_series

#: Metric name -> human heading.
METRIC_LABELS = {
    "social_cost": "social cost ($)",
    "coordinated_cost": "coordinated cost ($)",
    "selfish_cost": "selfish cost ($)",
    "runtime_s": "running time (s)",
    "rejected": "rejected services",
}


def render_sweep(
    result: SweepResult,
    metrics: Sequence[str] = ("social_cost", "runtime_s"),
) -> str:
    """Render one table per requested metric."""
    blocks: List[str] = []
    for metric in metrics:
        if metric not in METRIC_LABELS:
            raise ValueError(f"unknown metric {metric!r}")
        table = Table([result.x_label] + result.algorithms)
        for i, x in enumerate(result.x_values):
            row: List[object] = [x]
            for alg in result.algorithms:
                row.append(getattr(result.points[i][alg], metric))
            table.add_row(row)
        blocks.append(table.render(title=f"[{result.name}] {METRIC_LABELS[metric]}"))
    return "\n\n".join(blocks)


def series_of(result: SweepResult, metric: str = "social_cost") -> Dict[str, str]:
    """Each algorithm's plotted line as a compact one-line string."""
    return {
        alg: format_series(alg, result.x_values, result.series(alg, metric))
        for alg in result.algorithms
    }


def sweep_to_csv(
    result: SweepResult,
    metrics: Sequence[str] = tuple(METRIC_LABELS),
) -> str:
    """Serialise a sweep as CSV: one row per (x, algorithm) pair.

    Columns: ``x``, ``algorithm``, then one column per metric. Intended for
    external plotting tools; :func:`render_sweep` remains the human view.
    """
    for metric in metrics:
        if metric not in METRIC_LABELS:
            raise ValueError(f"unknown metric {metric!r}")
    lines = [",".join(["x", "algorithm", *metrics])]
    for i, x in enumerate(result.x_values):
        for alg in result.algorithms:
            point = result.points[i][alg]
            cells = [str(x), alg] + [repr(getattr(point, m)) for m in metrics]
            lines.append(",".join(cells))
    return "\n".join(lines) + "\n"


__all__ = ["METRIC_LABELS", "render_sweep", "series_of", "sweep_to_csv"]

"""One driver per paper figure (plus the ablations of DESIGN.md).

Simulation figures (Fig. 2–3) run over GT-ITM-style random networks; testbed
figures (Fig. 5–7) run inside the :class:`repro.testbed.Testbed` emulator on
the AS1755 overlay, exactly as the paper splits them. Every driver returns
:class:`~repro.experiments.harness.SweepResult` objects that
:func:`repro.experiments.report.render_sweep` prints as the rows the figures
plot.

Every market/algorithm builder here is a module-level function bound with
``functools.partial`` — never a closure — so the sweep grids can cross the
process-pool boundary when ``config.workers`` enables parallel execution
(results are identical at any worker count; see
:mod:`repro.experiments.parallel`).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.appro import appro
from repro.core.assignment import CachingAssignment
from repro.core.baselines import jo_offload_cache, offload_cache
from repro.core.bounds import appro_ratio_bound, optimal_v, stackelberg_poa_bound
from repro.core.bridge import market_game
from repro.core.lcf import lcf
from repro.core.optimal import optimal_caching
from repro.core.virtual_cloudlets import VirtualCloudletSplit
from repro.experiments.harness import (
    AlgorithmMetrics,
    AlgorithmTable,
    AssignmentRecord,
    SweepResult,
    default_algorithms,
    evaluate_algorithms,
    sweep,
)
from repro.experiments.parallel import map_tasks
from repro.experiments.settings import ExperimentConfig, PAPER
from repro.game.poa import worst_equilibrium_cost
from repro.market.costs import LinearCongestion, MM1Congestion, QuadraticCongestion
from repro.market.market import ServiceMarket
from repro.market.workload import WorkloadParams, generate_market
from repro.network.generators import random_mec_network
from repro.testbed.emulator import Testbed


# --------------------------------------------------------------------- #
# Picklable sweep builders (bound with functools.partial per driver)
# --------------------------------------------------------------------- #
def _sized_market(config: ExperimentConfig, size: object, seed: int) -> ServiceMarket:
    """``make_market`` for sweeps whose x-axis is the network size."""
    network = random_mec_network(int(size), rng=seed)
    return generate_market(
        network, config.n_providers, params=config.workload, rng=seed + 1
    )


def _fixed_size_market(config: ExperimentConfig, _x: object, seed: int) -> ServiceMarket:
    """``make_market`` for sweeps at the fixed default network size."""
    network = random_mec_network(config.default_size, rng=seed)
    return generate_market(
        network, config.n_providers, params=config.workload, rng=seed + 1
    )


def _fixed_xi_algorithms(config: ExperimentConfig, _x: object) -> AlgorithmTable:
    return default_algorithms(config.one_minus_xi, config.allow_remote, config.engine)


def _swept_xi_algorithms(config: ExperimentConfig, x: object) -> AlgorithmTable:
    return default_algorithms(float(x), config.allow_remote, config.engine)


# --------------------------------------------------------------------- #
# Simulation figures
# --------------------------------------------------------------------- #
def fig2_network_size(config: ExperimentConfig = PAPER) -> SweepResult:
    """Fig. 2: the three algorithms across network sizes 50–400
    (|N| = 100 providers, 1 - xi = 0.3)."""
    return sweep(
        name="fig2",
        x_label="network size",
        x_values=list(config.network_sizes),
        make_market=partial(_sized_market, config),
        make_algorithms=partial(_fixed_xi_algorithms, config),
        repetitions=config.repetitions,
        workers=config.workers,
    )


def fig3_selfish_fraction(config: ExperimentConfig = PAPER) -> SweepResult:
    """Fig. 3: the impact of ``1 - xi`` at network size 250."""
    return sweep(
        name="fig3",
        x_label="1 - xi",
        x_values=list(config.xi_sweep),
        make_market=partial(_fixed_size_market, config),
        make_algorithms=partial(_swept_xi_algorithms, config),
        repetitions=config.repetitions,
        workers=config.workers,
    )


# --------------------------------------------------------------------- #
# Testbed figures
# --------------------------------------------------------------------- #
def _provider_count_params(
    config: ExperimentConfig, x: object
) -> Tuple[int, WorkloadParams]:
    return int(x), config.workload


def _fixed_provider_params(
    config: ExperimentConfig, _x: object
) -> Tuple[int, WorkloadParams]:
    return config.testbed_providers, config.workload


def _volume_params(config: ExperimentConfig, x: object) -> Tuple[int, WorkloadParams]:
    gb = float(x)
    workload = config.workload.__class__(
        **{
            **config.workload.__dict__,
            "data_volume_gb_range": (gb, gb),
        }
    )
    return config.testbed_providers, workload


def _compute_scale_params(
    config: ExperimentConfig, x: object
) -> Tuple[int, WorkloadParams]:
    return config.testbed_providers, config.workload.scaled(compute_scale=float(x))


def _bandwidth_scale_params(
    config: ExperimentConfig, x: object
) -> Tuple[int, WorkloadParams]:
    return config.testbed_providers, config.workload.scaled(bandwidth_scale=float(x))


def _as_float(x: object) -> float:
    return float(x)


@dataclass(frozen=True)
class _TestbedTask:
    """One (sweep point, repetition) cell of a testbed experiment
    (picklable, like :class:`repro.experiments.parallel.PointTask`)."""

    x_index: int
    rep: int
    x: object
    seed: int
    config: ExperimentConfig
    market_params: Callable[[object], Tuple[int, WorkloadParams]]
    one_minus_xi_of: Optional[Callable[[object], float]]


def _run_testbed_task(
    task: _TestbedTask,
) -> Dict[str, Tuple[AssignmentRecord, float, Dict[str, float]]]:
    """Build the task's seeded testbed + market and run every algorithm.

    Ships back ``(record, controller_runtime_s, flow_metrics)`` per
    algorithm — the slim summary both serial and parallel sweeps aggregate.
    """
    testbed = Testbed(rng=task.seed)
    n_providers, workload = task.market_params(task.x)
    market = generate_market(
        testbed.network, n_providers, params=workload, rng=task.seed + 1
    )
    omx = (
        task.one_minus_xi_of(task.x)
        if task.one_minus_xi_of is not None
        else task.config.one_minus_xi
    )
    algorithms = default_algorithms(
        omx, task.config.allow_remote, task.config.engine
    )
    for alg_name, alg in algorithms.items():
        testbed.register_algorithm(alg_name, alg)
    out: Dict[str, Tuple[AssignmentRecord, float, Dict[str, float]]] = {}
    for alg_name in algorithms:
        run = testbed.run(alg_name, market)
        out[alg_name] = (
            AssignmentRecord.from_assignment(run.assignment),
            float(run.runtime_s),
            dict(run.flow_metrics),
        )
    return out


def _testbed_sweep(
    name: str,
    x_label: str,
    x_values: Sequence[object],
    config: ExperimentConfig,
    market_params: Callable[[object], Tuple[int, WorkloadParams]],
    one_minus_xi_of: Optional[Callable[[object], float]] = None,
) -> SweepResult:
    """Shared grid of the Fig. 5–7 testbed experiments.

    ``market_params(x)`` maps a sweep value to ``(n_providers, workload)``;
    ``one_minus_xi_of(x)`` optionally makes the selfish fraction the x-axis.
    The ``(x, repetition)`` grid runs through :func:`map_tasks`, so
    ``config.workers`` parallelises it with identical results.
    """
    tasks = [
        _TestbedTask(
            x_index=xi_idx,
            rep=rep,
            x=x,
            # Paired seeds across sweep points (common random numbers).
            seed=config.point_seed(0, rep),
            config=config,
            market_params=market_params,
            one_minus_xi_of=one_minus_xi_of,
        )
        for xi_idx, x in enumerate(x_values)
        for rep in range(config.repetitions)
    ]
    results = map_tasks(_run_testbed_task, tasks, workers=config.workers)

    points: List[Dict[str, AlgorithmMetrics]] = []
    flow_rows: List[Dict[str, Dict[str, float]]] = []
    for xi_idx in range(len(x_values)):
        collected: Dict[
            str, List[Tuple[AssignmentRecord, float, Dict[str, float]]]
        ] = {}
        for task, result in zip(tasks, results):
            if task.x_index != xi_idx:
                continue
            for alg_name, entry in result.items():
                collected.setdefault(alg_name, []).append(entry)
        point: Dict[str, AlgorithmMetrics] = {}
        flows: Dict[str, Dict[str, float]] = {}
        for alg_name, entries in collected.items():
            metrics = AlgorithmMetrics.from_records([e[0] for e in entries])
            # The controller's wall clock is the testbed's runtime metric.
            metrics.runtime_s = float(np.mean([e[1] for e in entries]))
            point[alg_name] = metrics
            flows[alg_name] = {
                key: float(np.mean([e[2][key] for e in entries]))
                for key in entries[0][2]
            }
        points.append(point)
        flow_rows.append(flows)
    return SweepResult(
        name=name,
        x_label=x_label,
        x_values=list(x_values),
        points=points,
        extra={"flow_metrics": flow_rows},
    )


def fig5_testbed(config: ExperimentConfig = PAPER) -> SweepResult:
    """Fig. 5: social cost and running time on the AS1755 testbed
    (1 - xi = 0.3), across the provider population."""
    return _testbed_sweep(
        name="fig5",
        x_label="providers",
        x_values=list(config.provider_sweep),
        config=config,
        market_params=partial(_provider_count_params, config),
    )


def fig6_testbed_parameters(config: ExperimentConfig = PAPER) -> Dict[str, SweepResult]:
    """Fig. 6: testbed parameter studies.

    * ``"a"`` — impact of ``1 - xi`` (social cost; panel (b)'s running
      times are the same sweep's ``runtime_s`` series);
    * ``"c"`` — impact of the number of service-caching requests;
    * ``"d"`` — impact of the update data volume (service data volume 1–5
      GB at the paper's 10% sync ratio).
    """
    fig_a = _testbed_sweep(
        name="fig6a",
        x_label="1 - xi",
        x_values=list(config.xi_sweep),
        config=config,
        market_params=partial(_fixed_provider_params, config),
        one_minus_xi_of=_as_float,
    )
    fig_c = _testbed_sweep(
        name="fig6c",
        x_label="requests (providers)",
        x_values=list(config.provider_sweep),
        config=config,
        market_params=partial(_provider_count_params, config),
    )
    fig_d = _testbed_sweep(
        name="fig6d",
        x_label="update data volume (GB)",
        x_values=list(config.data_volume_sweep),
        config=config,
        market_params=partial(_volume_params, config),
    )
    return {"a": fig_a, "c": fig_c, "d": fig_d}


def fig7_max_demands(config: ExperimentConfig = PAPER) -> Dict[str, SweepResult]:
    """Fig. 7: impact of ``a_max`` (panel a) and ``b_max`` (panel b).

    Scaling the maximum demands shrinks every ``n_i`` (Eq. 7), so the
    approximation has fewer virtual cloudlets to work with and rejects more
    services — the cost grows, verifying Lemma 2's sensitivity."""
    fig_a = _testbed_sweep(
        name="fig7a",
        x_label="a_max scale",
        x_values=list(config.demand_scale_sweep),
        config=config,
        market_params=partial(_compute_scale_params, config),
    )
    fig_b = _testbed_sweep(
        name="fig7b",
        x_label="b_max scale",
        x_values=list(config.bandwidth_scale_sweep),
        config=config,
        market_params=partial(_bandwidth_scale_params, config),
    )
    return {"a": fig_a, "b": fig_b}


# --------------------------------------------------------------------- #
# Ablations (DESIGN.md A1–A4)
# --------------------------------------------------------------------- #
_SELECTION_STRATEGIES = {
    "LCF(largest)": "largest_cost",
    "LCF(smallest)": "smallest_cost",
    "LCF(random)": "random",
}


def _run_lcf_selection(
    config: ExperimentConfig, strategy: str, one_minus_xi: float, market: ServiceMarket
) -> CachingAssignment:
    return lcf(
        market,
        xi=1.0 - one_minus_xi,
        selection=strategy,
        allow_remote=config.allow_remote,
        rng=config.seed,
        engine=config.engine,
    ).assignment


def _selection_algorithms(config: ExperimentConfig, x: object) -> AlgorithmTable:
    return {
        name: partial(_run_lcf_selection, config, strategy, float(x))
        for name, strategy in _SELECTION_STRATEGIES.items()
    }


def ablation_selection_strategies(config: ExperimentConfig = PAPER) -> SweepResult:
    """A2: LCF's Largest-Cost-First selection vs smallest-cost vs random."""
    return sweep(
        name="ablation-selection",
        x_label="1 - xi",
        x_values=[0.3, 0.5, 0.7],
        make_market=partial(_fixed_size_market, config),
        make_algorithms=partial(_selection_algorithms, config),
        repetitions=config.repetitions,
        workers=config.workers,
    )


def ablation_congestion_models(config: ExperimentConfig = PAPER) -> SweepResult:
    """A3: the paper's linear congestion vs quadratic vs M/M/1."""
    models = {
        "linear": LinearCongestion(),
        "quadratic": QuadraticCongestion(scale=8.0),
        "mm1": MM1Congestion(capacity=64),
    }

    def make_market_for(model_name: str, seed: int) -> ServiceMarket:
        network = random_mec_network(config.default_size, rng=seed)
        return generate_market(
            network,
            config.n_providers,
            params=config.workload,
            rng=seed + 1,
            congestion=models[model_name],
        )

    points: List[Dict[str, AlgorithmMetrics]] = []
    for model_name in models:
        collected: Dict[str, List[CachingAssignment]] = {}
        for rep in range(config.repetitions):
            seed = config.point_seed(list(models).index(model_name), rep)
            market = make_market_for(model_name, seed)
            algorithms = default_algorithms(
                config.one_minus_xi, config.allow_remote, config.engine
            )
            for alg, assignment in evaluate_algorithms(market, algorithms).items():
                collected.setdefault(alg, []).append(assignment)
        points.append(
            {
                alg: AlgorithmMetrics.from_assignments(assignments)
                for alg, assignments in collected.items()
            }
        )
    return SweepResult(
        name="ablation-congestion",
        x_label="congestion model",
        x_values=list(models),
        points=points,
    )


def _run_appro_solver(
    config: ExperimentConfig, gap_solver: str, market: ServiceMarket
) -> CachingAssignment:
    return appro(market, gap_solver=gap_solver, allow_remote=config.allow_remote)


def _gap_algorithms(config: ExperimentConfig, _x: object) -> AlgorithmTable:
    return {
        "Appro(shmoys_tardos)": partial(_run_appro_solver, config, "shmoys_tardos"),
        "Appro(greedy)": partial(_run_appro_solver, config, "greedy"),
    }


def ablation_gap_solvers(config: ExperimentConfig = PAPER) -> SweepResult:
    """A4: the GAP engine inside Appro — Shmoys–Tardos vs greedy."""
    return sweep(
        name="ablation-gap",
        x_label="variant",
        x_values=["default"],
        make_market=partial(_fixed_size_market, config),
        make_algorithms=partial(_gap_algorithms, config),
        repetitions=config.repetitions,
        workers=config.workers,
    )


def ablation_topologies(config: ExperimentConfig = PAPER) -> SweepResult:
    """A5: the Fig. 2 ordering across topology families.

    GT-ITM transit-stub (the paper's), Waxman flat-random and
    Barabási–Albert scale-free — the algorithms should keep their ordering
    regardless of where the cloudlets live."""
    models = ("transit_stub", "waxman", "scale_free")

    points: List[Dict[str, AlgorithmMetrics]] = []
    for model in models:
        collected: Dict[str, List[CachingAssignment]] = {}
        for rep in range(config.repetitions):
            seed = 7_919 * rep + 13
            network = random_mec_network(config.default_size, rng=seed, model=model)
            market = generate_market(
                network, config.n_providers, params=config.workload, rng=seed + 1
            )
            algorithms = default_algorithms(
                config.one_minus_xi, config.allow_remote, config.engine
            )
            for alg, assignment in evaluate_algorithms(market, algorithms).items():
                collected.setdefault(alg, []).append(assignment)
        points.append(
            {
                alg: AlgorithmMetrics.from_assignments(assignments)
                for alg, assignments in collected.items()
            }
        )
    return SweepResult(
        name="ablation-topology",
        x_label="topology model",
        x_values=list(models),
        points=points,
    )


def poa_study(
    n_providers: int = 8,
    n_nodes: int = 30,
    repetitions: int = 5,
    seed: int = 11,
) -> Dict[str, float]:
    """A1: empirical approximation ratio and PoA against the closed forms.

    Small instances only — the exact optimum is branch-and-bound. Returns
    the measured worst ratios plus the Lemma 2 / Theorem 1 bounds, and the
    worst certified gap of marginal-priced Appro against the LP lower
    bound (valid at any scale, reported here on the same instances).
    """
    from repro.core.lower_bound import social_cost_lower_bound

    ratio_worst = 0.0
    poa_worst = 0.0
    bound_ratio = 0.0
    bound_poa = 0.0
    certified_gap_worst = 0.0
    xi = 0.5
    for rep in range(repetitions):
        network = random_mec_network(n_nodes, rng=seed + rep)
        market = generate_market(network, n_providers, rng=seed + 100 + rep)
        optimum = optimal_caching(market)
        opt_cost = optimum.social_cost

        approx = appro(market, slot_pricing="flat")
        ratio_worst = max(ratio_worst, approx.social_cost / opt_cost)

        marginal = appro(market, slot_pricing="marginal")
        lb = social_cost_lower_bound(market)
        certified_gap_worst = max(certified_gap_worst, marginal.social_cost / lb)

        split = VirtualCloudletSplit(market)
        bound_ratio = max(bound_ratio, appro_ratio_bound(split.delta, split.kappa))
        bound_poa = max(
            bound_poa, stackelberg_poa_bound(split.delta, split.kappa, xi)
        )

        game = market_game(market)
        worst, _ = worst_equilibrium_cost(game, trials=10, rng=seed + rep)
        poa_worst = max(poa_worst, worst / opt_cost)

    return {
        "empirical_appro_ratio": ratio_worst,
        "lemma2_bound": bound_ratio,
        "empirical_poa": poa_worst,
        "theorem1_bound": bound_poa,
        "optimal_v": optimal_v(xi),
        "appro_marginal_certified_gap": certified_gap_worst,
    }


__all__ = [
    "ablation_topologies",
    "fig2_network_size",
    "fig3_selfish_fraction",
    "fig5_testbed",
    "fig6_testbed_parameters",
    "fig7_max_demands",
    "ablation_selection_strategies",
    "ablation_congestion_models",
    "ablation_gap_solvers",
    "poa_study",
]

"""Convergence study of the equilibrium dynamics (extension).

Lemma 3 says a Nash equilibrium *exists*; for the mechanism to be "an
efficient, stable Stackelberg congestion game" the dynamics must also reach
one quickly. This module measures that: rounds, improving moves and wall
clock of best-response vs better-response vs random-order dynamics, as the
selfish population grows.

Empirically, singleton congestion games with affine costs converge in a
handful of round-robin rounds — the study quantifies "handful" and how it
scales, which is what an operator needs to size the control loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.bridge import market_game
from repro.exceptions import ConfigurationError
from repro.game.best_response import best_response_dynamics, greedy_feasible_profile
from repro.game.dynamics_variants import improvement_dynamics
from repro.game.equilibrium import is_nash_equilibrium
from repro.market.workload import generate_market
from repro.network.generators import random_mec_network


@dataclass(frozen=True)
class ConvergencePoint:
    """Averaged convergence statistics at one population size."""

    n_providers: int
    variant: str
    rounds: float
    moves: float
    wall_s: float
    all_converged: bool
    all_equilibria: bool


def convergence_study(
    populations: Sequence[int] = (20, 40, 80),
    network_size: int = 150,
    repetitions: int = 3,
    variants: Sequence[str] = ("best", "better", "best_random_order"),
    seed: int = 17,
) -> List[ConvergencePoint]:
    """Measure dynamics convergence across population sizes.

    ``variants``: ``"best"`` (round-robin best response), ``"better"``
    (first improving move), ``"best_random_order"``.
    """
    if not populations or not variants:
        raise ConfigurationError("need at least one population and one variant")
    points: List[ConvergencePoint] = []
    for n in populations:
        per_variant: Dict[str, List] = {v: [] for v in variants}
        for rep in range(repetitions):
            network = random_mec_network(network_size, rng=seed + rep)
            market = generate_market(network, n, rng=seed + 100 + rep)
            game = market_game(market)
            start = greedy_feasible_profile(game)
            for variant in variants:
                t0 = time.perf_counter()
                if variant == "best":
                    result = best_response_dynamics(game, dict(start))
                else:
                    result = improvement_dynamics(
                        game, dict(start), variant=variant, rng=seed
                    )
                wall = time.perf_counter() - t0
                equilibrium = is_nash_equilibrium(game, result.profile)
                per_variant[variant].append(
                    (result.rounds, result.moves, wall, result.converged, equilibrium)
                )
        for variant in variants:
            rows = per_variant[variant]
            points.append(
                ConvergencePoint(
                    n_providers=int(n),
                    variant=variant,
                    rounds=float(np.mean([r[0] for r in rows])),
                    moves=float(np.mean([r[1] for r in rows])),
                    wall_s=float(np.mean([r[2] for r in rows])),
                    all_converged=all(r[3] for r in rows),
                    all_equilibria=all(r[4] for r in rows),
                )
            )
    return points


__all__ = ["ConvergencePoint", "convergence_study"]

"""Experiment configuration (Section IV.A defaults).

``PAPER`` mirrors the paper's settings: network sizes 50–400 (cloudlets at
10% of nodes, 5 remote DCs), 100 network service providers, ``1 - xi = 0.3``
unless swept, several repetitions per point. ``QUICK`` shrinks sizes and
repetitions so the whole figure suite runs in seconds inside the benchmark
harness; both run the same code paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.game.best_response import ENGINES
from repro.market.workload import WorkloadParams


@dataclass(frozen=True)
class ExperimentConfig:
    """All knobs a figure driver needs."""

    #: GT-ITM-style network sizes (Fig. 2's x-axis).
    network_sizes: Tuple[int, ...] = (50, 100, 150, 200, 250, 300, 350, 400)
    #: The fixed size used when the x-axis is something else (Fig. 3).
    default_size: int = 250
    #: Provider population |N|.
    n_providers: int = 100
    #: Default selfish fraction 1 - xi (Figs. 2, 5: 0.3).
    one_minus_xi: float = 0.3
    #: Values of 1 - xi swept by Fig. 3 / Fig. 6(a).
    xi_sweep: Tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
    #: Independent repetitions per sweep point (paper averages several runs).
    repetitions: int = 5
    #: Base RNG seed; repetition ``k`` at point ``x`` derives its own seed.
    seed: int = 20200707
    #: Workload distributions (Section IV.A).
    workload: WorkloadParams = field(default_factory=WorkloadParams)
    #: Whether algorithms may leave services in the remote cloud.
    allow_remote: bool = True
    #: Provider population on the AS1755 testbed (9 cloudlets; the paper
    #: does not pin the testbed population, and 40 providers load it to the
    #: realistic ~60-90% the simulations use).
    testbed_providers: int = 40
    #: Provider counts swept by the testbed request-count experiment
    #: (Fig. 6c).
    provider_sweep: Tuple[int, ...] = (20, 40, 60, 80, 100)
    #: Data volumes (GB) swept by the update-volume experiment (Fig. 6d).
    data_volume_sweep: Tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 5.0)
    #: Demand-scale multipliers swept by Fig. 7 (a_max / b_max). The upper
    #: end pushes total demand against the testbed's real capacities, where
    #: Eq. (7)'s shrinking n_i starts forcing rejections.
    demand_scale_sweep: Tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 5.0)
    #: b_max multipliers for Fig. 7(b). Bandwidth capacities are looser
    #: than compute on the testbed (VMs ship 10-100 Mbps each), so the
    #: sweep reaches further before Eq. (7) binds.
    bandwidth_scale_sweep: Tuple[float, ...] = (1.0, 2.0, 4.0, 6.0, 8.0)
    #: Game engine driving LCF's selfish phase: ``"incremental"`` (compiled
    #: tables + per-move deltas) or ``"naive"`` (the reference loops).
    engine: str = "incremental"
    #: Sweep parallelism: ``None``/``1`` serial, ``0`` one process per CPU,
    #: ``N > 1`` that many worker processes. Results are identical at any
    #: setting (per-task seeding).
    workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ConfigurationError("repetitions must be >= 1")
        if self.n_providers < 1:
            raise ConfigurationError("n_providers must be >= 1")
        if not all(0.0 <= x <= 1.0 for x in self.xi_sweep):
            raise ConfigurationError("xi_sweep values must lie in [0, 1]")
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )
        if self.workers is not None and self.workers < 0:
            raise ConfigurationError("workers must be None or >= 0")

    def with_(self, **kwargs) -> "ExperimentConfig":
        """A modified copy (dataclasses.replace wrapper)."""
        return replace(self, **kwargs)

    def point_seed(self, x_index: int, repetition: int) -> int:
        """Deterministic seed for repetition ``repetition`` of point
        ``x_index`` — distinct points and repetitions never share streams."""
        return self.seed + 1_000_003 * x_index + 7_919 * repetition


#: The paper's configuration.
PAPER = ExperimentConfig()

#: A seconds-scale configuration exercising identical code paths.
QUICK = ExperimentConfig(
    network_sizes=(50, 100, 150),
    default_size=100,
    n_providers=30,
    testbed_providers=15,
    xi_sweep=(0.0, 0.3, 0.6, 1.0),
    repetitions=2,
    provider_sweep=(10, 20, 30),
    data_volume_sweep=(1.0, 3.0, 5.0),
    demand_scale_sweep=(1.0, 2.0, 3.0),
)

__all__ = ["ExperimentConfig", "PAPER", "QUICK"]

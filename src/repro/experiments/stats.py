"""Statistics for experiment reporting.

The paper plots point estimates; a credible reproduction should say how
sure it is. This module provides the small-sample machinery the harness
and benches use:

* :func:`mean_ci` — mean with a Student-t confidence interval;
* :func:`paired_comparison` — paired-difference analysis of two algorithms
  run on common random numbers (the harness's paired seeds), including a
  sign test p-value;
* :func:`summarize` — a one-line textual summary for bench output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class MeanCI:
    """A mean with its confidence interval."""

    mean: float
    lower: float
    upper: float
    confidence: float
    n: int

    @property
    def half_width(self) -> float:
        return (self.upper - self.lower) / 2.0

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.half_width:.2g} ({self.confidence:.0%} CI, n={self.n})"


def mean_ci(samples: Sequence[float], confidence: float = 0.95) -> MeanCI:
    """Student-t confidence interval for the mean of i.i.d. samples."""
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence must lie in (0, 1), got {confidence}")
    xs = np.asarray(list(samples), dtype=float)
    if xs.size == 0:
        raise ConfigurationError("need at least one sample")
    mean = float(np.mean(xs))
    if xs.size == 1:
        return MeanCI(mean, mean, mean, confidence, 1)
    sem = float(np.std(xs, ddof=1) / math.sqrt(xs.size))
    t = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, df=xs.size - 1))
    return MeanCI(mean, mean - t * sem, mean + t * sem, confidence, int(xs.size))


@dataclass(frozen=True)
class PairedComparison:
    """Paired-difference analysis of algorithm A vs B on common seeds."""

    mean_a: float
    mean_b: float
    mean_difference: float  # A - B
    difference_ci: MeanCI
    #: Two-sided sign-test p-value for H0: median difference = 0.
    sign_test_p: float
    n: int

    @property
    def a_wins(self) -> bool:
        """A is significantly cheaper than B (CI excludes zero, below it)."""
        return self.difference_ci.upper < 0.0

    @property
    def b_wins(self) -> bool:
        return self.difference_ci.lower > 0.0


def paired_comparison(
    a: Sequence[float],
    b: Sequence[float],
    confidence: float = 0.95,
) -> PairedComparison:
    """Compare two paired sample sequences (same seeds, same order)."""
    xs = np.asarray(list(a), dtype=float)
    ys = np.asarray(list(b), dtype=float)
    if xs.size != ys.size:
        raise ConfigurationError(
            f"paired samples must align: {xs.size} vs {ys.size}"
        )
    if xs.size == 0:
        raise ConfigurationError("need at least one pair")
    diffs = xs - ys
    ci = mean_ci(diffs, confidence)
    nonzero = diffs[np.abs(diffs) > 1e-12]
    if nonzero.size == 0:
        p = 1.0
    else:
        wins = int(np.sum(nonzero > 0))
        p = float(
            scipy_stats.binomtest(wins, nonzero.size, p=0.5).pvalue
        )
    return PairedComparison(
        mean_a=float(np.mean(xs)),
        mean_b=float(np.mean(ys)),
        mean_difference=float(np.mean(diffs)),
        difference_ci=ci,
        sign_test_p=p,
        n=int(xs.size),
    )


def summarize(name_a: str, name_b: str, comparison: PairedComparison) -> str:
    """One line: who wins, by how much, how confidently."""
    if comparison.a_wins:
        verdict = f"{name_a} cheaper"
    elif comparison.b_wins:
        verdict = f"{name_b} cheaper"
    else:
        verdict = "no significant difference"
    return (
        f"{name_a} {comparison.mean_a:.4g} vs {name_b} {comparison.mean_b:.4g}: "
        f"{verdict} (Δ = {comparison.mean_difference:+.4g}, "
        f"CI [{comparison.difference_ci.lower:.4g}, "
        f"{comparison.difference_ci.upper:.4g}], sign-test p = "
        f"{comparison.sign_test_p:.3f}, n = {comparison.n})"
    )


__all__ = ["MeanCI", "mean_ci", "PairedComparison", "paired_comparison", "summarize"]

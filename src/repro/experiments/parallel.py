"""Parallel execution of sweep grids, dispatched through the runtime.

A figure sweep is an embarrassingly parallel grid: every ``(x-value,
repetition)`` cell builds its own seeded environment and runs every
algorithm on it. :class:`ParallelSweepRunner` fans that grid through a
:class:`repro.runtime.Runtime` while keeping the results bit-identical
to a serial run:

* **Per-task seeding.** Each cell's seed is a pure function of
  ``(x_index, repetition)`` — never of execution order — either the legacy
  affine scheme (:func:`repro.experiments.harness.legacy_point_seed`) or
  the collision-resistant :func:`sweep_task_seed`, which derives the seed
  from ``numpy.random.SeedSequence(base_seed, spawn_key=(x_index, rep))``
  (the same mixing ``SeedSequence.spawn`` uses for child streams).
* **Shared task body.** Serial mode runs the exact same task function in a
  plain loop, so the only difference between modes is *where* the work
  happens.
* **Deterministic aggregation.** Results are reduced in ``(x_index, rep)``
  order regardless of completion order, and workers return slim
  :class:`~repro.experiments.harness.AssignmentRecord` summaries whose
  floats are extracted identically in both modes.
* **Publish-once payloads.** With ``precompile=True`` each cell's
  compiled market is *published* on the runtime's blob store — pickled
  once per cell, fetched and memoized inside the persistent workers —
  instead of being re-pickled into every task payload (and again on
  every retry).  Task payloads stay a few id-sized fields; this is what
  retired the old ``parallel_sweep.speedup = 0.70`` entry.

Builders crossing the pool boundary must be picklable — module-level
functions or ``functools.partial`` over them (closures and lambdas are
not). The runner checks this up front and raises a
:class:`~repro.exceptions.ConfigurationError` naming the offending object
instead of dying inside the pool.

Execution is *supervised* (see :mod:`repro.runtime.supervisor`): each
cell gets a bounded retry budget with deterministic backoff, a worker
crash fails only the cells it was running (the workers are recycled and
the rest of the grid continues), and an optional JSONL checkpoint
journal lets an interrupted sweep ``resume=`` bit-identically,
re-running only the missing cells. Cells that exhaust their budget
surface as structured :class:`~repro.runtime.TaskFailure` entries on
``SweepResult.failures`` instead of aborting the sweep.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

import numpy as np

from repro.exceptions import ConfigurationError
from repro.experiments.harness import (
    AlgorithmMetrics,
    AlgorithmTable,
    AssignmentRecord,
    SweepResult,
    legacy_point_seed,
)
from repro.market.market import ServiceMarket
from repro.runtime import (
    BlobRef,
    CheckpointJournal,
    RetryPolicy,
    Runtime,
    TaskFailure,
    check_picklable,
    fetch_blob,
    resolve_workers,
)

T = TypeVar("T")
R = TypeVar("R")

#: Backward-compatible private alias (this helper predates the runtime).
_check_picklable = check_picklable


def sweep_task_seed(base_seed: int, x_index: int, rep: int, paired: bool = True) -> int:
    """A deterministic, order-independent seed for one sweep task.

    Mixes ``(base_seed, x_index, rep)`` through
    ``numpy.random.SeedSequence`` (the entropy-hashing backbone of
    ``SeedSequence.spawn``), so distinct tasks get statistically
    independent streams no matter which worker runs them first.

    ``paired=True`` (the default) drops ``x_index`` from the key: every
    sweep point then replays repetition ``rep`` on the same environment —
    the common-random-numbers pairing the figure drivers rely on for
    smooth curves.
    """
    spawn_key = (rep,) if paired else (x_index, rep)
    ss = np.random.SeedSequence(base_seed, spawn_key=spawn_key)
    return int(ss.generate_state(1, dtype=np.uint32)[0])


def map_tasks(
    fn: Callable[[T], R],
    tasks: Sequence[T],
    workers: Optional[int] = None,
) -> List[R]:
    """Apply ``fn`` to every task, serially or over a process pool.

    Results come back in task order in both modes. Workers are only spun
    up when they can help (more than one worker *and* more than one
    task).

    This is the ``pool.map``-compatible face of the runtime: single
    attempt per cell, first failure re-raised. Callers that want
    retries, crash isolation and checkpointing use
    :meth:`repro.runtime.Runtime.run` directly (as
    :class:`ParallelSweepRunner` does).
    """
    n_workers = resolve_workers(workers)
    if n_workers <= 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    check_picklable(fn, "task function")
    if tasks:
        check_picklable(tasks[0], "task")
    with Runtime(workers=n_workers) as runtime:
        return runtime.run(
            fn,
            tasks,
            retry=RetryPolicy(max_attempts=1),
            fail_fast=True,
        )  # type: ignore[return-value]


@dataclass(frozen=True)
class PointTask:
    """One cell of the sweep grid (picklable).

    The cell's environment can arrive three ways: built in the worker
    from the seeded builder (the default), prebuilt and carried inline on
    ``market`` (serial ``precompile``), or — on a parallel runtime —
    *published* once to the blob store and referenced by ``market_ref``
    (the worker fetches and memoizes the compiled blob, the task payload
    stays a few id-sized fields).
    """

    x_index: int
    rep: int
    x: object
    seed: int
    make_market: Callable[[object, int], ServiceMarket]
    make_algorithms: Callable[[object], AlgorithmTable]
    market: Optional[ServiceMarket] = None
    market_ref: Optional[BlobRef] = None


def run_point_task(task: PointTask) -> Dict[str, AssignmentRecord]:
    """Build the task's seeded market and run every algorithm on it.

    This is the single task body both serial and parallel sweeps execute;
    algorithms run in table order (LCF first — its coordinated/selfish
    marking must be in place before the baselines' cost splits are read).
    """
    if task.market_ref is not None:
        market = fetch_blob(task.market_ref)
    elif task.market is not None:
        market = task.market
    else:
        market = task.make_market(task.x, task.seed)
    algorithms = task.make_algorithms(task.x)
    records: Dict[str, AssignmentRecord] = {}
    for name, run in algorithms.items():
        records[name] = AssignmentRecord.from_assignment(run(market))
    return records


def encode_point_records(records: Dict[str, AssignmentRecord]) -> object:
    """One cell's result as its JSONL checkpoint payload."""
    return {alg: asdict(record) for alg, record in records.items()}


def decode_point_records(payload: object) -> Dict[str, AssignmentRecord]:
    """Inverse of :func:`encode_point_records`; bit-exact for floats
    because JSON serialises them at shortest round-trip precision."""
    return {
        alg: AssignmentRecord(**fields)
        for alg, fields in payload.items()  # type: ignore[union-attr]
    }


@dataclass
class ParallelSweepRunner:
    """Runs sweep grids serially or on a supervised runtime pool.

    ``workers=None``/``1`` → serial in-process execution; ``workers=0`` →
    one process per CPU; ``workers=N`` → ``N`` processes. ``spool=``
    instead dispatches cells to the ``repro host`` agents serving that
    shared spool directory (a
    :class:`~repro.runtime.remote.RemoteTransport`). Identical metrics
    every way.
    """

    workers: Optional[int] = None
    #: Shared spool directory for multi-host dispatch (mutually
    #: exclusive with ``workers``).
    spool: Optional[str] = None

    def run(
        self,
        name: str,
        x_label: str,
        x_values: Sequence[object],
        make_market: Callable[[object, int], ServiceMarket],
        make_algorithms: Callable[[object], AlgorithmTable],
        repetitions: int,
        seed_fn: Optional[Callable[[int, int], int]] = None,
        precompile: bool = False,
        retry: Optional[RetryPolicy] = None,
        checkpoint: Optional[str] = None,
        resume: bool = False,
        runtime: Optional[Runtime] = None,
    ) -> SweepResult:
        """Run the grid; see :func:`repro.experiments.harness.sweep`.

        ``precompile=True`` builds every task's market in the parent and
        compiles it before dispatch; on a parallel runtime the compiled
        blob is *published* once per cell (workers fetch by ref) instead
        of riding inside the task payload. Results are identical either
        way (same seed, same market, same tables).

        ``checkpoint`` names a JSONL journal; each completed ``(x_index,
        rep)`` cell is durably appended as it finishes. With
        ``resume=True`` an existing journal's cells are replayed from
        disk and only the missing ones run — metrics are bit-identical
        to the uninterrupted sweep because each cell's floats round-trip
        JSON exactly. ``resume=False`` truncates any stale journal first.

        ``runtime`` lets the caller supply (and keep) a live
        :class:`~repro.runtime.Runtime` — repeated sweeps then reuse its
        persistent workers and blob store; otherwise one is built from
        ``self.workers`` for the call.

        Cells that exhaust ``retry`` (default: three attempts) are
        reported on ``SweepResult.failures`` and excluded from the
        aggregates; the rest of the grid still completes.
        """
        if repetitions < 1:
            raise ConfigurationError(f"repetitions must be >= 1, got {repetitions}")
        seed_of = seed_fn if seed_fn is not None else legacy_point_seed
        tasks = [
            PointTask(
                x_index=xi,
                rep=rep,
                x=x,
                seed=seed_of(xi, rep),
                make_market=make_market,
                make_algorithms=make_algorithms,
            )
            for xi, x in enumerate(x_values)
            for rep in range(repetitions)
        ]

        owned = runtime is None
        if runtime is None:
            if self.spool is not None and self.workers is not None:
                raise ConfigurationError(
                    "pass either workers= or spool=, not both"
                )
            if self.spool is not None:
                runtime = Runtime(spool=self.spool)
            else:
                runtime = Runtime(workers=self.workers)
        try:
            parallel = (
                runtime.workers > 1 or not runtime.transport.colocated
            ) and len(tasks) > 1
            if precompile:
                prebuilt = []
                for task in tasks:
                    market = make_market(task.x, task.seed)
                    market.compile()
                    if parallel:
                        ref = runtime.publish(
                            ("sweep-cell", name, task.x_index, task.rep), market
                        )
                        prebuilt.append(replace(task, market_ref=ref))
                    else:
                        prebuilt.append(replace(task, market=market))
                tasks = prebuilt

            if parallel:
                check_picklable(run_point_task, "task function")
                check_picklable(tasks[0], "task")
            journal = None
            if checkpoint is not None:
                journal = CheckpointJournal(checkpoint)
            results = runtime.run(
                run_point_task,
                tasks,
                keys=[(task.x_index, task.rep) for task in tasks],
                retry=retry,
                journal=journal,
                resume=resume,
                encode=encode_point_records,
                decode=decode_point_records,
            )
        finally:
            if owned:
                runtime.close()

        failures: List[TaskFailure] = [
            r for r in results if isinstance(r, TaskFailure)
        ]
        points: List[Dict[str, AlgorithmMetrics]] = []
        for xi in range(len(x_values)):
            collected: Dict[str, List[AssignmentRecord]] = {}
            for task, records in zip(tasks, results):
                if task.x_index != xi or isinstance(records, TaskFailure):
                    continue
                for alg, record in records.items():
                    collected.setdefault(alg, []).append(record)
            points.append(
                {
                    alg: AlgorithmMetrics.from_records(records)
                    for alg, records in collected.items()
                }
            )
        return SweepResult(
            name=name,
            x_label=x_label,
            x_values=list(x_values),
            points=points,
            failures=failures,
        )


__all__ = [
    "ParallelSweepRunner",
    "PointTask",
    "decode_point_records",
    "encode_point_records",
    "map_tasks",
    "resolve_workers",
    "run_point_task",
    "sweep_task_seed",
]

"""Parallel execution of sweep grids.

A figure sweep is an embarrassingly parallel grid: every ``(x-value,
repetition)`` cell builds its own seeded environment and runs every
algorithm on it. :class:`ParallelSweepRunner` fans that grid over a
``concurrent.futures.ProcessPoolExecutor`` while keeping the results
bit-identical to a serial run:

* **Per-task seeding.** Each cell's seed is a pure function of
  ``(x_index, repetition)`` — never of execution order — either the legacy
  affine scheme (:func:`repro.experiments.harness.legacy_point_seed`) or
  the collision-resistant :func:`sweep_task_seed`, which derives the seed
  from ``numpy.random.SeedSequence(base_seed, spawn_key=(x_index, rep))``
  (the same mixing ``SeedSequence.spawn`` uses for child streams).
* **Shared task body.** Serial mode runs the exact same task function in a
  plain loop, so the only difference between modes is *where* the work
  happens.
* **Deterministic aggregation.** Results are reduced in ``(x_index, rep)``
  order regardless of completion order, and workers return slim
  :class:`~repro.experiments.harness.AssignmentRecord` summaries whose
  floats are extracted identically in both modes.

Builders crossing the pool boundary must be picklable — module-level
functions or ``functools.partial`` over them (closures and lambdas are
not). The runner checks this up front and raises a
:class:`~repro.exceptions.ConfigurationError` naming the offending object
instead of dying inside the pool.

Execution is *supervised* (see :mod:`repro.experiments.supervisor`): each
cell gets a bounded retry budget with deterministic backoff, a worker
crash fails only the cells it was running (the pool is rebuilt and the
rest of the grid continues), and an optional JSONL checkpoint journal
lets an interrupted sweep ``resume=`` bit-identically, re-running only
the missing cells. Cells that exhaust their budget surface as structured
:class:`~repro.experiments.supervisor.TaskFailure` entries on
``SweepResult.failures`` instead of aborting the sweep.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import asdict, dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.experiments.harness import (
    AlgorithmMetrics,
    AlgorithmTable,
    AssignmentRecord,
    SweepResult,
    legacy_point_seed,
)
from repro.experiments.supervisor import (
    CheckpointJournal,
    RetryPolicy,
    TaskFailure,
    supervised_map,
)
from repro.market.market import ServiceMarket

T = TypeVar("T")
R = TypeVar("R")


def sweep_task_seed(base_seed: int, x_index: int, rep: int, paired: bool = True) -> int:
    """A deterministic, order-independent seed for one sweep task.

    Mixes ``(base_seed, x_index, rep)`` through
    ``numpy.random.SeedSequence`` (the entropy-hashing backbone of
    ``SeedSequence.spawn``), so distinct tasks get statistically
    independent streams no matter which worker runs them first.

    ``paired=True`` (the default) drops ``x_index`` from the key: every
    sweep point then replays repetition ``rep`` on the same environment —
    the common-random-numbers pairing the figure drivers rely on for
    smooth curves.
    """
    spawn_key = (rep,) if paired else (x_index, rep)
    ss = np.random.SeedSequence(base_seed, spawn_key=spawn_key)
    return int(ss.generate_state(1, dtype=np.uint32)[0])


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a ``--workers`` value: ``None``/``1`` → serial, ``0`` →
    ``os.cpu_count()``, ``N > 1`` → that many processes."""
    if workers is None:
        return 1
    if workers < 0:
        raise ConfigurationError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


def _check_picklable(obj: object, role: str) -> None:
    try:
        pickle.dumps(obj)
    except Exception as exc:
        raise ConfigurationError(
            f"{role} {obj!r} is not picklable and cannot cross the process-pool "
            f"boundary; use a module-level function or functools.partial "
            f"(or run with workers=1): {exc}"
        ) from None


def map_tasks(
    fn: Callable[[T], R],
    tasks: Sequence[T],
    workers: Optional[int] = None,
) -> List[R]:
    """Apply ``fn`` to every task, serially or over a process pool.

    Results come back in task order in both modes. The pool is only spun
    up when it can help (more than one worker *and* more than one task).

    This is the ``pool.map``-compatible face of the supervising executor:
    single attempt per cell, first failure re-raised. Callers that want
    retries, crash isolation and checkpointing use
    :func:`repro.experiments.supervisor.supervised_map` directly (as
    :class:`ParallelSweepRunner` does).
    """
    n_workers = resolve_workers(workers)
    if n_workers <= 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    _check_picklable(fn, "task function")
    if tasks:
        _check_picklable(tasks[0], "task")
    return supervised_map(
        fn,
        tasks,
        workers=n_workers,
        retry=RetryPolicy(max_attempts=1),
        fail_fast=True,
    )  # type: ignore[return-value]


@dataclass(frozen=True)
class PointTask:
    """One cell of the sweep grid (picklable).

    ``market`` optionally carries the cell's environment prebuilt (and,
    with ``precompile``, already compiled into its array-backed
    :class:`~repro.market.compiled.CompiledMarket`, which pickles along
    with it): the worker then starts from the finished tables instead of
    rebuilding the market from the builder.
    """

    x_index: int
    rep: int
    x: object
    seed: int
    make_market: Callable[[object, int], ServiceMarket]
    make_algorithms: Callable[[object], AlgorithmTable]
    market: Optional[ServiceMarket] = None


def run_point_task(task: PointTask) -> Dict[str, AssignmentRecord]:
    """Build the task's seeded market and run every algorithm on it.

    This is the single task body both serial and parallel sweeps execute;
    algorithms run in table order (LCF first — its coordinated/selfish
    marking must be in place before the baselines' cost splits are read).
    """
    market = task.market if task.market is not None else task.make_market(task.x, task.seed)
    algorithms = task.make_algorithms(task.x)
    records: Dict[str, AssignmentRecord] = {}
    for name, run in algorithms.items():
        records[name] = AssignmentRecord.from_assignment(run(market))
    return records


def encode_point_records(records: Dict[str, AssignmentRecord]) -> object:
    """One cell's result as its JSONL checkpoint payload."""
    return {alg: asdict(record) for alg, record in records.items()}


def decode_point_records(payload: object) -> Dict[str, AssignmentRecord]:
    """Inverse of :func:`encode_point_records`; bit-exact for floats
    because JSON serialises them at shortest round-trip precision."""
    return {
        alg: AssignmentRecord(**fields)
        for alg, fields in payload.items()  # type: ignore[union-attr]
    }


@dataclass
class ParallelSweepRunner:
    """Runs sweep grids serially or over a supervised process pool.

    ``workers=None``/``1`` → serial in-process execution; ``workers=0`` →
    one process per CPU; ``workers=N`` → ``N`` processes. Identical
    metrics either way.
    """

    workers: Optional[int] = None

    def run(
        self,
        name: str,
        x_label: str,
        x_values: Sequence[object],
        make_market: Callable[[object, int], ServiceMarket],
        make_algorithms: Callable[[object], AlgorithmTable],
        repetitions: int,
        seed_fn: Optional[Callable[[int, int], int]] = None,
        precompile: bool = False,
        retry: Optional[RetryPolicy] = None,
        checkpoint: Optional[str] = None,
        resume: bool = False,
    ) -> SweepResult:
        """Run the grid; see :func:`repro.experiments.harness.sweep`.

        ``precompile=True`` builds every task's market in the parent and
        compiles it before dispatch, so workers receive one array-backed
        blob per cell instead of re-running the builder. Results are
        identical either way (same seed, same market, same tables).

        ``checkpoint`` names a JSONL journal; each completed ``(x_index,
        rep)`` cell is durably appended as it finishes. With
        ``resume=True`` an existing journal's cells are replayed from
        disk and only the missing ones run — metrics are bit-identical
        to the uninterrupted sweep because each cell's floats round-trip
        JSON exactly. ``resume=False`` truncates any stale journal first.

        Cells that exhaust ``retry`` (default: three attempts) are
        reported on ``SweepResult.failures`` and excluded from the
        aggregates; the rest of the grid still completes.
        """
        if repetitions < 1:
            raise ConfigurationError(f"repetitions must be >= 1, got {repetitions}")
        seed_of = seed_fn if seed_fn is not None else legacy_point_seed
        tasks = [
            PointTask(
                x_index=xi,
                rep=rep,
                x=x,
                seed=seed_of(xi, rep),
                make_market=make_market,
                make_algorithms=make_algorithms,
            )
            for xi, x in enumerate(x_values)
            for rep in range(repetitions)
        ]
        if precompile:
            prebuilt = []
            for task in tasks:
                market = make_market(task.x, task.seed)
                market.compile()
                prebuilt.append(replace(task, market=market))
            tasks = prebuilt

        if resolve_workers(self.workers) > 1 and len(tasks) > 1:
            _check_picklable(run_point_task, "task function")
            _check_picklable(tasks[0], "task")
        journal = None
        if checkpoint is not None:
            journal = CheckpointJournal(checkpoint)
            if not resume:
                journal.clear()
        results = supervised_map(
            run_point_task,
            tasks,
            keys=[(task.x_index, task.rep) for task in tasks],
            workers=self.workers,
            retry=retry,
            journal=journal,
            encode=encode_point_records,
            decode=decode_point_records,
        )

        failures: List[TaskFailure] = [
            r for r in results if isinstance(r, TaskFailure)
        ]
        points: List[Dict[str, AlgorithmMetrics]] = []
        for xi in range(len(x_values)):
            collected: Dict[str, List[AssignmentRecord]] = {}
            for task, records in zip(tasks, results):
                if task.x_index != xi or isinstance(records, TaskFailure):
                    continue
                for alg, record in records.items():
                    collected.setdefault(alg, []).append(record)
            points.append(
                {
                    alg: AlgorithmMetrics.from_records(records)
                    for alg, records in collected.items()
                }
            )
        return SweepResult(
            name=name,
            x_label=x_label,
            x_values=list(x_values),
            points=points,
            failures=failures,
        )


__all__ = [
    "ParallelSweepRunner",
    "PointTask",
    "decode_point_records",
    "encode_point_records",
    "map_tasks",
    "resolve_workers",
    "run_point_task",
    "sweep_task_seed",
]

"""The sweep runner shared by every figure driver.

A figure is a *sweep*: for each x-axis value, build ``repetitions``
independent (network, market) environments, run every algorithm on each, and
average the four metrics the paper plots — social cost, selfish-provider
cost, coordinated-provider cost, and running time.

Sweeps can fan their ``(x-value, repetition)`` grid out over a process pool
(see :mod:`repro.experiments.parallel`); every aggregate goes through the
same per-task :class:`AssignmentRecord` extraction in both modes, so serial
and parallel runs of the same seeded sweep produce bit-identical metrics
(wall-clock ``runtime_s`` aside).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.assignment import CachingAssignment
from repro.core.baselines import jo_offload_cache, offload_cache
from repro.core.lcf import lcf
from repro.exceptions import ReproError
from repro.market.market import ServiceMarket

#: An algorithm entry: name -> callable(market) -> CachingAssignment.
AlgorithmTable = Mapping[str, Callable[[ServiceMarket], CachingAssignment]]


@dataclass(frozen=True)
class AssignmentRecord:
    """The slim, picklable summary of one algorithm run on one market.

    Worker processes ship these back instead of full
    :class:`CachingAssignment` objects (which drag the whole market and
    network graph across the process boundary).
    """

    social_cost: float
    coordinated_cost: float
    selfish_cost: float
    runtime_s: float
    rejected: int

    @classmethod
    def from_assignment(cls, a: CachingAssignment) -> "AssignmentRecord":
        return cls(
            social_cost=float(a.social_cost),
            coordinated_cost=float(a.coordinated_cost),
            selfish_cost=float(a.selfish_cost),
            runtime_s=float(a.runtime_s),
            rejected=len(a.rejected),
        )


@dataclass
class AlgorithmMetrics:
    """Averaged metrics of one algorithm at one sweep point."""

    social_cost: float
    coordinated_cost: float
    selfish_cost: float
    runtime_s: float
    rejected: float
    samples: int

    @classmethod
    def from_assignments(cls, assignments: Sequence[CachingAssignment]) -> "AlgorithmMetrics":
        if not assignments:
            raise ReproError("no assignments to aggregate")
        return cls.from_records([AssignmentRecord.from_assignment(a) for a in assignments])

    @classmethod
    def from_records(cls, records: Sequence[AssignmentRecord]) -> "AlgorithmMetrics":
        if not records:
            raise ReproError("no assignments to aggregate")
        return cls(
            social_cost=float(np.mean([r.social_cost for r in records])),
            coordinated_cost=float(np.mean([r.coordinated_cost for r in records])),
            selfish_cost=float(np.mean([r.selfish_cost for r in records])),
            runtime_s=float(np.mean([r.runtime_s for r in records])),
            rejected=float(np.mean([r.rejected for r in records])),
            samples=len(records),
        )


@dataclass
class SweepResult:
    """All metrics of one figure: ``points[x][algorithm] -> metrics``."""

    name: str
    x_label: str
    x_values: List[object]
    points: List[Dict[str, AlgorithmMetrics]]
    #: Free-form extras figure drivers attach (bounds, flow metrics, ...).
    extra: Dict[str, object] = field(default_factory=dict)
    #: Cells that exhausted their retry budget (see
    #: :class:`repro.runtime.TaskFailure`); their records
    #: are excluded from ``points`` but the sweep still completed.
    failures: List[object] = field(default_factory=list)

    @property
    def algorithms(self) -> List[str]:
        names: List[str] = []
        for point in self.points:
            for alg in point:
                if alg not in names:
                    names.append(alg)
        return names

    def series(self, algorithm: str, metric: str = "social_cost") -> List[float]:
        """One plotted line: ``metric`` of ``algorithm`` across x values."""
        return [getattr(point[algorithm], metric) for point in self.points]


def _run_lcf(
    one_minus_xi: float, allow_remote: bool, engine: str, market: ServiceMarket
) -> CachingAssignment:
    return lcf(
        market, xi=1.0 - one_minus_xi, allow_remote=allow_remote, engine=engine
    ).assignment


def default_algorithms(
    one_minus_xi: float, allow_remote: bool, engine: str = "incremental"
) -> AlgorithmTable:
    """The three algorithms of every paper figure.

    LCF runs first at each point so its coordinated/selfish designation is
    in place when the baselines' cost splits are read (the paper plots the
    same provider partition for all algorithms).

    Every entry is a picklable callable (module-level function or
    ``functools.partial`` thereof), so the table can cross a process-pool
    boundary for parallel sweeps.
    """
    return {
        "LCF": partial(_run_lcf, one_minus_xi, allow_remote, engine),
        "JoOffloadCache": jo_offload_cache,
        "OffloadCache": offload_cache,
    }


def evaluate_algorithms(
    market: ServiceMarket,
    algorithms: AlgorithmTable,
) -> Dict[str, CachingAssignment]:
    """Run every algorithm on one market (in table order)."""
    return {name: run(market) for name, run in algorithms.items()}


def legacy_point_seed(x_index: int, rep: int) -> int:
    """The seed scheme of the original serial harness.

    Paired seeds: repetition ``k`` draws the same environment at every
    sweep point, so curves are compared on common random numbers and
    monotone trends are not drowned by cross-point sampling noise.
    """
    return 7_919 * rep + 13


def sweep(
    name: str,
    x_label: str,
    x_values: Sequence[object],
    make_market: Callable[[object, int], ServiceMarket],
    make_algorithms: Callable[[object], AlgorithmTable],
    repetitions: int,
    workers: Optional[int] = None,
    seed_fn: Optional[Callable[[int, int], int]] = None,
    precompile: bool = False,
    retry: Optional[object] = None,
    checkpoint: Optional[str] = None,
    resume: bool = False,
) -> SweepResult:
    """Run a full sweep.

    Parameters
    ----------
    make_market:
        ``(x_value, seed) -> ServiceMarket`` builder; the harness supplies a
        distinct seed per (point, repetition). Must be picklable (a
        module-level function or ``functools.partial``) when ``workers``
        enables the process pool.
    make_algorithms:
        ``x_value -> AlgorithmTable``; lets drivers bind x-dependent
        parameters (e.g. xi in Fig. 3). Same picklability rule.
    workers:
        ``None`` or ``1`` runs in-process (the default); ``N > 1`` fans the
        ``(x, repetition)`` grid over a ``ProcessPoolExecutor`` with ``N``
        workers; ``0`` means ``os.cpu_count()``. Results are bit-identical
        to the serial run because seeding is per-task, not per-loop.
    seed_fn:
        ``(x_index, rep) -> seed`` override; defaults to
        :func:`legacy_point_seed` (common random numbers across points).
    precompile:
        Build and compile every task's market up front in the parent
        process; workers then receive the array-backed
        :class:`~repro.market.compiled.CompiledMarket` blob with the task
        instead of re-running ``make_market``. Metrics are identical.
    retry:
        A :class:`repro.runtime.RetryPolicy` (attempts,
        backoff, per-task timeout); defaults to three attempts.
    checkpoint:
        Path of a JSONL checkpoint journal; completed cells are durably
        appended as they finish.
    resume:
        With ``checkpoint``, replay already-journaled cells from disk and
        run only the missing ones — bit-identical to the uninterrupted
        sweep. ``False`` (default) truncates any existing journal.
    """
    from repro.experiments.parallel import ParallelSweepRunner

    runner = ParallelSweepRunner(workers=workers)
    return runner.run(
        name=name,
        x_label=x_label,
        x_values=x_values,
        make_market=make_market,
        make_algorithms=make_algorithms,
        repetitions=repetitions,
        seed_fn=seed_fn if seed_fn is not None else legacy_point_seed,
        precompile=precompile,
        retry=retry,  # type: ignore[arg-type]
        checkpoint=checkpoint,
        resume=resume,
    )


__all__ = [
    "AlgorithmTable",
    "AlgorithmMetrics",
    "AssignmentRecord",
    "SweepResult",
    "default_algorithms",
    "evaluate_algorithms",
    "legacy_point_seed",
    "sweep",
]

"""The sweep runner shared by every figure driver.

A figure is a *sweep*: for each x-axis value, build ``repetitions``
independent (network, market) environments, run every algorithm on each, and
average the four metrics the paper plots — social cost, selfish-provider
cost, coordinated-provider cost, and running time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.assignment import CachingAssignment
from repro.core.baselines import jo_offload_cache, offload_cache
from repro.core.lcf import lcf
from repro.exceptions import ReproError
from repro.market.market import ServiceMarket

#: An algorithm entry: name -> callable(market) -> CachingAssignment.
AlgorithmTable = Mapping[str, Callable[[ServiceMarket], CachingAssignment]]


@dataclass
class AlgorithmMetrics:
    """Averaged metrics of one algorithm at one sweep point."""

    social_cost: float
    coordinated_cost: float
    selfish_cost: float
    runtime_s: float
    rejected: float
    samples: int

    @classmethod
    def from_assignments(cls, assignments: Sequence[CachingAssignment]) -> "AlgorithmMetrics":
        if not assignments:
            raise ReproError("no assignments to aggregate")
        return cls(
            social_cost=float(np.mean([a.social_cost for a in assignments])),
            coordinated_cost=float(np.mean([a.coordinated_cost for a in assignments])),
            selfish_cost=float(np.mean([a.selfish_cost for a in assignments])),
            runtime_s=float(np.mean([a.runtime_s for a in assignments])),
            rejected=float(np.mean([len(a.rejected) for a in assignments])),
            samples=len(assignments),
        )


@dataclass
class SweepResult:
    """All metrics of one figure: ``points[x][algorithm] -> metrics``."""

    name: str
    x_label: str
    x_values: List[object]
    points: List[Dict[str, AlgorithmMetrics]]
    #: Free-form extras figure drivers attach (bounds, flow metrics, ...).
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def algorithms(self) -> List[str]:
        names: List[str] = []
        for point in self.points:
            for alg in point:
                if alg not in names:
                    names.append(alg)
        return names

    def series(self, algorithm: str, metric: str = "social_cost") -> List[float]:
        """One plotted line: ``metric`` of ``algorithm`` across x values."""
        return [getattr(point[algorithm], metric) for point in self.points]


def default_algorithms(
    one_minus_xi: float, allow_remote: bool
) -> AlgorithmTable:
    """The three algorithms of every paper figure.

    LCF runs first at each point so its coordinated/selfish designation is
    in place when the baselines' cost splits are read (the paper plots the
    same provider partition for all algorithms).
    """

    def run_lcf(market: ServiceMarket) -> CachingAssignment:
        return lcf(
            market, xi=1.0 - one_minus_xi, allow_remote=allow_remote
        ).assignment

    return {
        "LCF": run_lcf,
        "JoOffloadCache": jo_offload_cache,
        "OffloadCache": offload_cache,
    }


def evaluate_algorithms(
    market: ServiceMarket,
    algorithms: AlgorithmTable,
) -> Dict[str, CachingAssignment]:
    """Run every algorithm on one market (in table order)."""
    return {name: run(market) for name, run in algorithms.items()}


def sweep(
    name: str,
    x_label: str,
    x_values: Sequence[object],
    make_market: Callable[[object, int], ServiceMarket],
    make_algorithms: Callable[[object], AlgorithmTable],
    repetitions: int,
) -> SweepResult:
    """Run a full sweep.

    Parameters
    ----------
    make_market:
        ``(x_value, seed) -> ServiceMarket`` builder; the harness supplies a
        distinct seed per (point, repetition).
    make_algorithms:
        ``x_value -> AlgorithmTable``; lets drivers bind x-dependent
        parameters (e.g. xi in Fig. 3).
    """
    points: List[Dict[str, AlgorithmMetrics]] = []
    for xi, x in enumerate(x_values):
        collected: Dict[str, List[CachingAssignment]] = {}
        algorithms = make_algorithms(x)
        for rep in range(repetitions):
            # Paired seeds: repetition k draws the same environment at
            # every sweep point, so curves are compared on common random
            # numbers and monotone trends are not drowned by cross-point
            # sampling noise.
            seed = 7_919 * rep + 13
            market = make_market(x, seed)
            for alg_name, assignment in evaluate_algorithms(market, algorithms).items():
                collected.setdefault(alg_name, []).append(assignment)
        points.append(
            {
                alg: AlgorithmMetrics.from_assignments(assignments)
                for alg, assignments in collected.items()
            }
        )
    return SweepResult(name=name, x_label=x_label, x_values=list(x_values), points=points)


__all__ = [
    "AlgorithmTable",
    "AlgorithmMetrics",
    "SweepResult",
    "default_algorithms",
    "evaluate_algorithms",
    "sweep",
]

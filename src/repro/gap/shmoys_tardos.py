"""The Shmoys–Tardos rounding for min-cost GAP [34].

Pipeline:

1. solve the LP relaxation (:mod:`repro.gap.lp`);
2. for each bin ``i``, create ``ceil(sum_j x[j, i])`` *slots*; sort the items
   fractionally assigned to ``i`` by non-increasing weight ``w[j, i]`` and
   pour their fractions into the slots in order, splitting an item across
   two consecutive slots when a slot fills up;
3. the fractions now form a fractional perfect matching between items and
   slots; extract a minimum-weight integral matching (networkx bipartite
   matching on the positive-fraction edges);
4. each item is assigned to the bin owning its matched slot.

Guarantees (Shmoys & Tardos 1993): the rounded cost is at most the LP
optimum (hence at most the integral optimum), and each bin's load is at most
its capacity plus the largest single item weight placed there. When every
item fits in a bin on its own — exactly the situation in the paper's
virtual-cloudlet reduction, where slot capacity is ``max(a_max, b_max)`` —
the load is below twice the capacity: the "2-approximation" the paper cites.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.exceptions import SolverError
from repro.gap.instance import GAPInstance, GAPSolution
from repro.gap.lp import LPRelaxationResult, solve_lp_relaxation

_EPS = 1e-9


def _build_slots(
    relaxation: LPRelaxationResult,
) -> List[Tuple[int, List[Tuple[int, float]]]]:
    """Split each bin's fractional load into unit slots.

    Returns a list of slots; each slot is ``(bin_index, [(item, fraction)])``
    with the slot's fractions summing to at most 1.
    """
    inst = relaxation.instance
    x = relaxation.fractions
    slots: List[Tuple[int, List[Tuple[int, float]]]] = []

    for i in range(inst.n_bins):
        items = [(j, x[j, i]) for j in range(inst.n_items) if x[j, i] > _EPS]
        if not items:
            continue
        # Non-increasing weight order is what bounds the per-slot weight.
        items.sort(key=lambda t: (-inst.weights[t[0], i], t[0]))
        total = sum(f for _, f in items)
        n_slots = max(1, math.ceil(total - _EPS))

        current: List[Tuple[int, float]] = []
        current_fill = 0.0
        made = 0
        for j, frac in items:
            remaining = frac
            while remaining > _EPS:
                room = 1.0 - current_fill
                take = min(remaining, room)
                current.append((j, take))
                current_fill += take
                remaining -= take
                if current_fill >= 1.0 - _EPS and made < n_slots - 1:
                    slots.append((i, current))
                    made += 1
                    current = []
                    current_fill = 0.0
        if current:
            slots.append((i, current))
            made += 1
    return slots


def shmoys_tardos(
    instance: GAPInstance,
    assemble: str = "vectorized",
    time_limit_s: Optional[float] = None,
) -> GAPSolution:
    """Round the GAP LP optimum to an integral assignment (see module doc).

    ``assemble`` selects the LP constraint-assembly path (see
    :data:`repro.gap.lp.ASSEMBLIES`); the relaxation — and therefore the
    rounding — is bit-identical either way.

    ``time_limit_s`` bounds the LP solve; exceeding it raises
    :class:`~repro.exceptions.SolverTimeout` (callers wanting a fallback
    instead use :func:`repro.gap.ladder.solve_with_degradation`).

    Raises :class:`repro.exceptions.InfeasibleError` when the LP relaxation
    is infeasible and :class:`SolverError` if the matching step fails (which
    would indicate a bug — the fractional matching guarantees existence).
    """
    relaxation = solve_lp_relaxation(
        instance, assemble=assemble, time_limit_s=time_limit_s
    )
    slots = _build_slots(relaxation)

    graph = nx.Graph()
    item_nodes = [("item", j) for j in range(instance.n_items)]
    graph.add_nodes_from(item_nodes, bipartite=0)
    for s, (bin_i, members) in enumerate(slots):
        slot_node = ("slot", s)
        graph.add_node(slot_node, bipartite=1)
        for j, frac in members:
            if frac > _EPS:
                graph.add_edge(
                    ("item", j), slot_node, weight=float(instance.costs[j, bin_i])
                )

    try:
        matching = nx.bipartite.minimum_weight_full_matching(
            graph, top_nodes=item_nodes, weight="weight"
        )
    except ValueError as exc:  # no full matching — should be impossible
        raise SolverError(f"Shmoys–Tardos matching failed: {exc}") from exc

    assignment: List[int] = []
    for j in range(instance.n_items):
        node = matching.get(("item", j))
        if node is None:
            raise SolverError(f"item {j} left unmatched by the rounding")
        _, slot_idx = node
        assignment.append(slots[slot_idx][0])

    return GAPSolution(
        instance=instance,
        assignment=assignment,
        method="shmoys_tardos",
        lower_bound=relaxation.value,
    )


__all__ = ["shmoys_tardos"]

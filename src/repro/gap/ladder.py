"""The GAP solver degradation ladder: LP timeout → greedy fallback.

A production sweep cannot afford one pathological LP hanging a whole grid
cell, but silently swapping solvers would corrupt the experiment — a
figure averaging Shmoys–Tardos points with greedy points is measuring
neither. :func:`solve_with_degradation` makes the trade explicit: it runs
the requested rung with a time budget, steps down one rung on
:class:`~repro.exceptions.SolverTimeout`, and stamps the substitution on
the returned :class:`~repro.gap.instance.GAPSolution` as a
:class:`DegradationEvent` so callers (and their reports) can count and
surface degraded cells instead of discovering them in the curves.

The ladder today has two rungs — ``shmoys_tardos`` (LP + rounding, the
paper's choice) over ``greedy`` (regret-ordered, no LP, effectively
bounded running time) — matching the two solvers Algorithm 1 accepts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import SolverTimeout
from repro.gap.greedy import greedy_gap
from repro.gap.instance import GAPInstance, GAPSolution
from repro.gap.shmoys_tardos import shmoys_tardos


@dataclass(frozen=True)
class DegradationEvent:
    """A solver substitution, stamped on the solution that carries it."""

    #: The rung the caller asked for (e.g. ``"shmoys_tardos"``).
    requested: str
    #: The rung that actually produced the solution (e.g. ``"greedy"``).
    used: str
    #: Why the ladder stepped down (e.g. ``"timeout"``).
    reason: str
    #: Human-readable detail (the triggering error message).
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DegradationEvent({self.requested} -> {self.used}: "
            f"{self.reason})"
        )


def solve_with_degradation(
    instance: GAPInstance,
    time_limit_s: Optional[float] = None,
    assemble: str = "vectorized",
    greedy_mode: str = "vectorized",
) -> GAPSolution:
    """Solve with Shmoys–Tardos under a time budget, degrading to greedy.

    Without ``time_limit_s`` this is plain :func:`~repro.gap.
    shmoys_tardos.shmoys_tardos`. With one, a :class:`~repro.exceptions.
    SolverTimeout` from the LP falls through to :func:`~repro.gap.greedy.
    greedy_gap` and the returned solution carries a
    :class:`DegradationEvent` (``solution.degradation``); an untimed
    solve always returns ``degradation=None``. Infeasibility is *not*
    degraded — an infeasible relaxation means the GAP itself has no
    solution, and greedy would only dress that up.
    """
    try:
        return shmoys_tardos(
            instance, assemble=assemble, time_limit_s=time_limit_s
        )
    except SolverTimeout as exc:
        solution = greedy_gap(instance, mode=greedy_mode)
        return GAPSolution(
            instance=solution.instance,
            assignment=solution.assignment,
            method=solution.method,
            lower_bound=solution.lower_bound,
            degradation=DegradationEvent(
                requested="shmoys_tardos",
                used="greedy",
                reason="timeout",
                detail=str(exc),
            ),
        )


__all__ = ["DegradationEvent", "solve_with_degradation"]

"""GAP instance and solution types.

A min-cost GAP instance (Section III.A of the paper, after [34]): ``n`` items
and ``m`` knapsacks; assigning item ``j`` to knapsack ``i`` costs ``c[j, i]``
and consumes weight ``w[j, i]`` of the knapsack's capacity ``cap[i]``; every
item must be assigned; total cost is minimised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.validation import CAPACITY_EPS


class GAPInstance:
    """A minimisation GAP instance backed by numpy arrays.

    Parameters
    ----------
    costs:
        ``(n_items, n_bins)`` array; ``costs[j, i]`` is the assignment cost.
        ``numpy.inf`` marks a forbidden (item, bin) pair.
    weights:
        ``(n_items, n_bins)`` array of non-negative weights.
    capacities:
        ``(n_bins,)`` array of positive knapsack capacities.
    """

    def __init__(
        self,
        costs: np.ndarray,
        weights: np.ndarray,
        capacities: np.ndarray,
    ) -> None:
        costs = np.asarray(costs, dtype=float)
        weights = np.asarray(weights, dtype=float)
        capacities = np.asarray(capacities, dtype=float)

        if costs.ndim != 2:
            raise ConfigurationError(f"costs must be 2-D, got shape {costs.shape}")
        if weights.shape != costs.shape:
            raise ConfigurationError(
                f"weights shape {weights.shape} != costs shape {costs.shape}"
            )
        if capacities.ndim != 1 or capacities.shape[0] != costs.shape[1]:
            raise ConfigurationError(
                f"capacities must have one entry per bin ({costs.shape[1]}), "
                f"got shape {capacities.shape}"
            )
        if costs.shape[0] == 0 or costs.shape[1] == 0:  # reprolint: ok[R2] array shapes are exact ints
            raise ConfigurationError("instance needs at least one item and one bin")
        if np.any(weights < 0) or np.any(np.isnan(weights)):
            raise ConfigurationError("weights must be non-negative numbers")
        if np.any(capacities <= 0):  # reprolint: ok[R2] sign guard, not a feasibility test
            raise ConfigurationError("capacities must be positive")
        if np.any(np.isnan(costs)):
            raise ConfigurationError("costs must not contain NaN")

        self.costs = costs
        self.weights = weights
        self.capacities = capacities

    @property
    def n_items(self) -> int:
        return self.costs.shape[0]

    @property
    def n_bins(self) -> int:
        return self.costs.shape[1]

    def allowed(self, item: int, bin_: int) -> bool:
        """Whether (item, bin) is assignable: finite cost and weight fits."""
        return bool(
            np.isfinite(self.costs[item, bin_])
            and self.weights[item, bin_] <= self.capacities[bin_] + CAPACITY_EPS
        )

    def allowed_mask(self) -> np.ndarray:
        """The full ``(n_items, n_bins)`` boolean table of :meth:`allowed` —
        the same finite-cost and weight-fits test, evaluated in bulk."""
        return np.isfinite(self.costs) & (
            self.weights <= self.capacities[None, :] + CAPACITY_EPS
        )

    def allowed_bins(self, item: int) -> List[int]:
        return [i for i in range(self.n_bins) if self.allowed(item, i)]

    def trivially_infeasible(self) -> bool:
        """True when some item has no admissible bin at all (a cheap
        necessary check; full feasibility is decided by the LP)."""
        return any(not self.allowed_bins(j) for j in range(self.n_items))

    def __repr__(self) -> str:
        return f"GAPInstance(items={self.n_items}, bins={self.n_bins})"


@dataclass
class GAPSolution:
    """An integral assignment: ``assignment[j]`` is item ``j``'s bin."""

    instance: GAPInstance
    assignment: List[int]
    #: Informational: name of the algorithm that produced the solution.
    method: str = ""
    #: Optimal LP value when the method solved a relaxation (lower bound).
    lower_bound: Optional[float] = None
    #: Set when the degradation ladder substituted a cheaper method for
    #: the requested one (a :class:`repro.gap.ladder.DegradationEvent`);
    #: ``None`` for a solution produced as requested.
    degradation: Optional[object] = None

    def __post_init__(self) -> None:
        if len(self.assignment) != self.instance.n_items:
            raise ConfigurationError(
                f"assignment covers {len(self.assignment)} items, "
                f"instance has {self.instance.n_items}"
            )
        for j, i in enumerate(self.assignment):
            if not 0 <= i < self.instance.n_bins:
                raise ConfigurationError(f"item {j} assigned to unknown bin {i}")

    @property
    def cost(self) -> float:
        """Total assignment cost."""
        return float(
            sum(self.instance.costs[j, i] for j, i in enumerate(self.assignment))
        )

    def bin_loads(self) -> np.ndarray:
        """Per-bin accumulated weight."""
        loads = np.zeros(self.instance.n_bins)
        for j, i in enumerate(self.assignment):
            loads[i] += self.instance.weights[j, i]
        return loads

    def max_load_ratio(self) -> float:
        """Max over bins of load/capacity — <= 1 means strictly feasible,
        <= 2 is the Shmoys–Tardos guarantee when all weights fit alone."""
        return float(np.max(self.bin_loads() / self.instance.capacities))

    def is_feasible(self, slack: float = CAPACITY_EPS) -> bool:
        """Strict feasibility: every bin within its capacity."""
        return bool(np.all(self.bin_loads() <= self.instance.capacities + slack))

    def items_in_bin(self, bin_: int) -> List[int]:
        return [j for j, i in enumerate(self.assignment) if i == bin_]


__all__ = ["GAPInstance", "GAPSolution"]

"""LP relaxation of min-cost GAP, solved with :func:`scipy.optimize.linprog`.

Variables ``x[j, i] >= 0`` for each *allowed* (item, bin) pair:

* assignment constraints  ``sum_i x[j, i] = 1`` for every item ``j``;
* capacity constraints    ``sum_j w[j, i] * x[j, i] <= cap[i]``;
* objective               ``min sum c[j, i] * x[j, i]``.

Only allowed pairs get a column, which keeps the LP small for sparse
instances (each virtual cloudlet admits every service in the paper's
reduction, but the library is generic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from repro.exceptions import (
    ConfigurationError,
    InfeasibleError,
    SolverError,
    SolverTimeout,
)
from repro.gap.instance import GAPInstance

#: The two LP assembly paths. ``"vectorized"`` builds the constraint
#: matrices from the instance's arrays in bulk; ``"scalar"`` is the
#: per-pair reference loop it replaced. Both enumerate the allowed (item,
#: bin) pairs in the same row-major order and hand :func:`linprog` the
#: same matrices, so they return bit-identical relaxations — the
#: differential tests pin that.
ASSEMBLIES = ("vectorized", "scalar")


@dataclass
class LPRelaxationResult:
    """Fractional optimum of the GAP LP relaxation."""

    instance: GAPInstance
    #: ``(n_items, n_bins)`` fractional assignment; rows sum to 1.
    fractions: np.ndarray
    #: Optimal LP objective — a lower bound on the integral optimum.
    value: float

    def support(self, item: int, atol: float = 1e-9) -> List[int]:
        """Bins with positive fraction for ``item``."""
        return [i for i in range(self.instance.n_bins) if self.fractions[item, i] > atol]


def _assemble_scalar(
    instance: GAPInstance,
) -> Tuple[np.ndarray, np.ndarray, csr_matrix, csr_matrix, np.ndarray, np.ndarray]:
    """Reference per-pair assembly (kept as the differential oracle)."""
    if instance.trivially_infeasible():
        raise InfeasibleError("some item has no admissible bin")

    pairs: List[Tuple[int, int]] = [
        (j, i)
        for j in range(instance.n_items)
        for i in range(instance.n_bins)
        if instance.allowed(j, i)
    ]
    col_of: Dict[Tuple[int, int], int] = {p: k for k, p in enumerate(pairs)}
    n_cols = len(pairs)

    c = np.array([instance.costs[j, i] for j, i in pairs])

    # Equality: one row per item.
    eq_rows, eq_cols, eq_data = [], [], []
    for (j, i), k in col_of.items():
        eq_rows.append(j)
        eq_cols.append(k)
        eq_data.append(1.0)
    a_eq = csr_matrix((eq_data, (eq_rows, eq_cols)), shape=(instance.n_items, n_cols))

    # Inequality: one row per bin.
    ub_rows, ub_cols, ub_data = [], [], []
    for (j, i), k in col_of.items():
        ub_rows.append(i)
        ub_cols.append(k)
        ub_data.append(instance.weights[j, i])
    a_ub = csr_matrix((ub_data, (ub_rows, ub_cols)), shape=(instance.n_bins, n_cols))

    rows = np.fromiter((j for j, _ in pairs), dtype=np.int64, count=n_cols)
    cols = np.fromiter((i for _, i in pairs), dtype=np.int64, count=n_cols)
    return rows, cols, a_eq, a_ub, c, np.ones(instance.n_items)


def _assemble_vectorized(
    instance: GAPInstance,
) -> Tuple[np.ndarray, np.ndarray, csr_matrix, csr_matrix, np.ndarray, np.ndarray]:
    """Bulk assembly from the instance arrays (same matrices, no loops).

    ``np.nonzero`` walks the allowed-mask in row-major order — the exact
    pair enumeration of the scalar path — so columns line up one-to-one.
    """
    mask = instance.allowed_mask()
    if not bool(mask.any(axis=1).all()):
        raise InfeasibleError("some item has no admissible bin")

    rows, cols = np.nonzero(mask)
    n_cols = rows.shape[0]
    arange = np.arange(n_cols)

    c = instance.costs[rows, cols]
    a_eq = csr_matrix(
        (np.ones(n_cols), (rows, arange)), shape=(instance.n_items, n_cols)
    )
    a_ub = csr_matrix(
        (instance.weights[rows, cols], (cols, arange)),
        shape=(instance.n_bins, n_cols),
    )
    return rows, cols, a_eq, a_ub, c, np.ones(instance.n_items)


def solve_lp_relaxation(
    instance: GAPInstance,
    assemble: str = "vectorized",
    time_limit_s: Optional[float] = None,
) -> LPRelaxationResult:
    """Solve the GAP LP relaxation; raises :class:`InfeasibleError` when the
    relaxation (hence the GAP) has no solution.

    ``assemble`` picks the constraint-construction path (see
    :data:`ASSEMBLIES`); the solved relaxation is bit-identical either way.

    ``time_limit_s`` bounds the HiGHS solve; exceeding it raises
    :class:`~repro.exceptions.SolverTimeout` (the degradation ladder in
    :mod:`repro.gap.ladder` catches this and falls back to greedy).
    """
    if assemble not in ASSEMBLIES:
        raise ConfigurationError(
            f"unknown assemble {assemble!r}; choose from {ASSEMBLIES}"
        )
    if time_limit_s is not None and time_limit_s <= 0:
        raise ConfigurationError(
            f"time_limit_s must be positive, got {time_limit_s}"
        )
    builder = _assemble_vectorized if assemble == "vectorized" else _assemble_scalar
    rows, cols, a_eq, a_ub, c, b_eq = builder(instance)
    b_ub = instance.capacities

    options = {} if time_limit_s is None else {"time_limit": float(time_limit_s)}
    result = linprog(
        c,
        A_eq=a_eq,
        b_eq=b_eq,
        A_ub=a_ub,
        b_ub=b_ub,
        bounds=(0.0, 1.0),
        method="highs",
        options=options,
    )
    if result.status == 1:
        # HiGHS reports hitting the time (or iteration) limit as status 1.
        raise SolverTimeout(
            f"GAP LP relaxation exceeded its {time_limit_s}s budget: "
            f"{result.message}"
        )
    if result.status == 2:
        raise InfeasibleError("GAP LP relaxation is infeasible")
    if not result.success:
        raise SolverError(f"linprog failed: {result.message}")

    fractions = np.zeros((instance.n_items, instance.n_bins))
    fractions[rows, cols] = np.maximum(0.0, result.x)
    # Normalise tiny numerical drift so each row sums to exactly 1.
    row_sums = fractions.sum(axis=1, keepdims=True)
    fractions = fractions / row_sums

    return LPRelaxationResult(
        instance=instance, fractions=fractions, value=float(result.fun)
    )


__all__ = ["ASSEMBLIES", "LPRelaxationResult", "solve_lp_relaxation"]

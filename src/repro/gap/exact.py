"""Exact branch-and-bound for small min-cost GAP instances.

Items branch in order of decreasing minimum weight (hard items first); the
bound at each node is the sum of committed costs plus, for every free item,
its cheapest *capacity-ignoring* cost — admissible, cheap, and tight enough
for the <= ~15-item instances used to measure empirical approximation ratios
(ablation A1/A4).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.exceptions import ConfigurationError, InfeasibleError
from repro.gap.instance import GAPInstance, GAPSolution
from repro.utils.validation import CAPACITY_EPS

_MAX_ITEMS = 20

#: Slack subtracted from the incumbent before pruning a branch: keeps
#: float-accumulation noise from discarding assignments that tie the optimum.
_PRUNE_EPS = 1e-12


def exact_gap(instance: GAPInstance, max_items: int = _MAX_ITEMS) -> GAPSolution:
    """Optimal GAP assignment by branch-and-bound.

    Raises :class:`ConfigurationError` for instances larger than
    ``max_items`` (the search is exponential) and :class:`InfeasibleError`
    when no complete assignment exists.
    """
    if instance.n_items > max_items:
        raise ConfigurationError(
            f"exact_gap is limited to {max_items} items, got {instance.n_items}"
        )

    n, m = instance.n_items, instance.n_bins
    # Cheapest cost per item ignoring capacity — admissible lower bound.
    min_costs = np.array(
        [
            min(
                (instance.costs[j, i] for i in range(m) if instance.allowed(j, i)),
                default=np.inf,
            )
            for j in range(n)
        ]
    )
    if np.any(np.isinf(min_costs)):
        raise InfeasibleError("some item has no admissible bin")

    # Branch hard items (largest min weight across bins) first.
    order = sorted(
        range(n), key=lambda j: -float(np.min(instance.weights[j, :]))
    )
    suffix_bound = np.zeros(n + 1)
    for pos in range(n - 1, -1, -1):
        suffix_bound[pos] = suffix_bound[pos + 1] + min_costs[order[pos]]

    best_cost = np.inf
    best_assignment: Optional[List[int]] = None
    assignment: List[int] = [-1] * n
    remaining = instance.capacities.astype(float).copy()

    def dfs(pos: int, cost_so_far: float) -> None:
        nonlocal best_cost, best_assignment
        if cost_so_far + suffix_bound[pos] >= best_cost - _PRUNE_EPS:
            return
        if pos == n:
            best_cost = cost_so_far
            best_assignment = assignment.copy()
            return
        j = order[pos]
        bins = sorted(
            (i for i in range(m) if instance.allowed(j, i)),
            key=lambda i: instance.costs[j, i],
        )
        for i in bins:
            w = instance.weights[j, i]
            if w <= remaining[i] + CAPACITY_EPS:
                assignment[j] = i
                remaining[i] -= w
                dfs(pos + 1, cost_so_far + instance.costs[j, i])
                remaining[i] += w
                assignment[j] = -1

    dfs(0, 0.0)
    if best_assignment is None:
        raise InfeasibleError("no feasible complete assignment exists")
    return GAPSolution(
        instance=instance,
        assignment=best_assignment,
        method="exact",
        lower_bound=best_cost,
    )


__all__ = ["exact_gap"]

"""A regret-based greedy heuristic for min-cost GAP.

Used as a fast fallback inside the experiment harness and as a comparator in
ablation A4. Items are assigned in order of largest *regret* (difference
between their two cheapest feasible bins): items that are most penalised by
losing their best bin commit first.

Two implementations of the identical selection rule are provided (mirroring
the LP assembly split in :mod:`repro.gap.lp`): ``mode="vectorized"``
evaluates every round's feasibility mask, cheapest/second-cheapest bins and
regrets as whole-array numpy operations; ``mode="scalar"`` is the original
per-item Python loop, kept verbatim as the reference the differential tests
compare against. Both walk items in ascending index order and resolve regret
ties towards the lowest item (and cost ties towards the lowest bin), so they
produce the same assignment bin for bin.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.exceptions import ConfigurationError, InfeasibleError
from repro.gap.instance import GAPInstance, GAPSolution
from repro.utils.validation import CAPACITY_EPS

#: Valid ``mode`` values, fastest first.
MODES = ("vectorized", "scalar")


def _greedy_scalar(instance: GAPInstance) -> List[int]:
    """Reference implementation: per-item Python loops over the instance
    (the pre-compiled pipeline). Returns the assignment list."""
    remaining_cap = instance.capacities.astype(float).copy()
    assignment: List[Optional[int]] = [None] * instance.n_items
    unassigned = set(range(instance.n_items))

    while unassigned:
        best_item = -1
        best_bin = -1
        best_regret = -np.inf
        for j in unassigned:
            feasible = [
                i
                for i in range(instance.n_bins)
                if np.isfinite(instance.costs[j, i])
                and instance.weights[j, i] <= remaining_cap[i] + CAPACITY_EPS
            ]
            if not feasible:
                raise InfeasibleError(f"greedy could not place item {j}")
            ordered = sorted(feasible, key=lambda i: instance.costs[j, i])
            cheapest = ordered[0]
            if len(ordered) > 1:
                regret = instance.costs[j, ordered[1]] - instance.costs[j, cheapest]
            else:
                regret = np.inf  # only one option left: place it now
            if regret > best_regret:
                best_regret = regret
                best_item = j
                best_bin = cheapest

        assignment[best_item] = best_bin
        remaining_cap[best_bin] -= instance.weights[best_item, best_bin]
        unassigned.remove(best_item)

    return [int(a) for a in assignment]


def _greedy_vectorized(instance: GAPInstance) -> List[int]:
    """Array twin of :func:`_greedy_scalar`: each round computes the
    feasibility mask, the cheapest and second-cheapest feasible bins and the
    regrets of *all* unassigned items at once. ``np.argmin``/``np.argmax``
    return the first extremum, which reproduces the scalar loop's ties
    (lowest bin for equal costs, lowest item for equal regrets) exactly."""
    costs = instance.costs
    weights = instance.weights
    n = instance.n_items
    remaining = instance.capacities.astype(float).copy()
    finite = np.isfinite(costs)
    assignment = np.full(n, -1, dtype=np.int64)
    active = np.ones(n, dtype=bool)
    rows = np.arange(n)

    for _ in range(n):
        feasible = finite & (weights <= remaining[None, :] + CAPACITY_EPS)
        feasible &= active[:, None]
        n_feasible = feasible.sum(axis=1)
        stuck = active & (n_feasible == 0)
        if stuck.any():
            j = int(np.flatnonzero(stuck)[0])
            raise InfeasibleError(f"greedy could not place item {j}")
        masked = np.where(feasible, costs, np.inf)
        cheapest = np.argmin(masked, axis=1)
        cheapest_cost = masked[rows, cheapest]
        masked[rows, cheapest] = np.inf
        second_cost = masked.min(axis=1)
        # Same subtraction as the scalar path; items with a single feasible
        # bin get infinite regret (place them now, they have no fallback).
        regret = np.full(n, np.inf)
        multi = n_feasible > 1
        regret[multi] = second_cost[multi] - cheapest_cost[multi]
        regret[~active] = -np.inf
        item = int(np.argmax(regret))
        chosen = int(cheapest[item])
        assignment[item] = chosen
        remaining[chosen] -= weights[item, chosen]
        active[item] = False

    return [int(a) for a in assignment]


def greedy_gap(instance: GAPInstance, mode: str = "vectorized") -> GAPSolution:
    """Greedy regret assignment; raises :class:`InfeasibleError` when it
    cannot place every item (greedy incompleteness counts as infeasible —
    callers that need certainty should use the LP-based solvers).

    ``mode`` selects the implementation (see the module docstring); both
    members of :data:`MODES` return the identical assignment.
    """
    if mode not in MODES:
        raise ConfigurationError(f"unknown greedy mode {mode!r}; choose from {MODES}")
    build = _greedy_vectorized if mode == "vectorized" else _greedy_scalar
    return GAPSolution(
        instance=instance,
        assignment=build(instance),
        method="greedy",
    )


__all__ = ["greedy_gap", "MODES"]

"""A regret-based greedy heuristic for min-cost GAP.

Used as a fast fallback inside the experiment harness and as a comparator in
ablation A4. Items are assigned in order of largest *regret* (difference
between their two cheapest feasible bins): items that are most penalised by
losing their best bin commit first.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.exceptions import InfeasibleError
from repro.gap.instance import GAPInstance, GAPSolution
from repro.utils.validation import CAPACITY_EPS


def greedy_gap(instance: GAPInstance) -> GAPSolution:
    """Greedy regret assignment; raises :class:`InfeasibleError` when it
    cannot place every item (greedy incompleteness counts as infeasible —
    callers that need certainty should use the LP-based solvers)."""
    remaining_cap = instance.capacities.astype(float).copy()
    assignment: List[Optional[int]] = [None] * instance.n_items
    unassigned = set(range(instance.n_items))

    while unassigned:
        best_item = -1
        best_bin = -1
        best_regret = -np.inf
        for j in unassigned:
            feasible = [
                i
                for i in range(instance.n_bins)
                if np.isfinite(instance.costs[j, i])
                and instance.weights[j, i] <= remaining_cap[i] + CAPACITY_EPS
            ]
            if not feasible:
                raise InfeasibleError(f"greedy could not place item {j}")
            ordered = sorted(feasible, key=lambda i: instance.costs[j, i])
            cheapest = ordered[0]
            if len(ordered) > 1:
                regret = instance.costs[j, ordered[1]] - instance.costs[j, cheapest]
            else:
                regret = np.inf  # only one option left: place it now
            if regret > best_regret:
                best_regret = regret
                best_item = j
                best_bin = cheapest

        assignment[best_item] = best_bin
        remaining_cap[best_bin] -= instance.weights[best_item, best_bin]
        unassigned.remove(best_item)

    return GAPSolution(
        instance=instance,
        assignment=[int(a) for a in assignment],
        method="greedy",
    )


__all__ = ["greedy_gap"]

"""Generalized Assignment Problem (GAP) solvers.

Algorithm ``Appro`` (Algorithm 1) reduces service caching to GAP and invokes
the Shmoys–Tardos approximation [34]. This package implements that pipeline
from scratch: the instance model, the LP relaxation (scipy ``linprog``), the
Shmoys–Tardos rounding (cost <= LP optimum, per-bin load <= capacity + max
item weight, i.e. a 2-approximation in the regime used by the paper), plus a
greedy heuristic and an exact branch-and-bound for small instances used to
measure empirical ratios.
"""

from repro.gap.instance import GAPInstance, GAPSolution
from repro.gap.lp import ASSEMBLIES, solve_lp_relaxation, LPRelaxationResult
from repro.gap.shmoys_tardos import shmoys_tardos
from repro.gap.greedy import MODES as GREEDY_MODES, greedy_gap
from repro.gap.exact import exact_gap
from repro.gap.ladder import DegradationEvent, solve_with_degradation

__all__ = [
    "ASSEMBLIES",
    "DegradationEvent",
    "GAPInstance",
    "GAPSolution",
    "solve_lp_relaxation",
    "LPRelaxationResult",
    "shmoys_tardos",
    "solve_with_degradation",
    "greedy_gap",
    "GREEDY_MODES",
    "exact_gap",
]

"""The :class:`Runtime` facade: one dispatch substrate for everything.

Sweep grids (:mod:`repro.experiments.parallel`), shard interior settles
(:mod:`repro.game.partitioned`) and epoch replans
(:mod:`repro.dynamics.simulation`) all dispatch through one object:

>>> with Runtime(workers=4) as rt:
...     results = rt.run(task_fn, tasks, retry=RetryPolicy(timeout_s=30))

``Runtime`` composes the three runtime layers:

* a :class:`~repro.runtime.transport.Transport` (where work executes —
  serial, persistent local pool, or the future remote seam) with its
  publish-once blob store,
* the supervision policy of :func:`repro.runtime.supervisor.supervise`
  (per-task timeout, bounded deterministic retry, crash quarantine with
  bystander refunds, structured :class:`~repro.runtime.supervisor.
  TaskFailure` tombstones),
* :class:`~repro.runtime.journal.CheckpointJournal` durability with
  bit-identical ``resume=``.

:meth:`Runtime.run` is the supervised entry point; :meth:`Runtime.map`
is the thin ordered fast path (no retries, deterministic in-process
fallback on worker death) that the shard settle loop uses where the old
``ShardExecutor.run`` sat.  Both are bit-identical to serial execution
for pure task functions — the property every equivalence test in
``tests/runtime`` pins.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    TypeVar,
    Union,
)

from repro.exceptions import ConfigurationError
from repro.runtime.journal import CheckpointJournal, TaskKey
from repro.runtime.supervisor import RetryPolicy, TaskFailure, supervise
from repro.runtime.transport import (
    BlobRef,
    PoolTransport,
    SerialTransport,
    Transport,
    fetch_blob,
    resolve_workers,
)

T = TypeVar("T")
R = TypeVar("R")


class BlobMap(Mapping):
    """Lazy worker-side view of published blobs, ``key -> object``.

    Indexing fetches (and per-process memoizes) the blob behind the ref;
    blobs a task never touches are never deserialised.
    """

    def __init__(self, refs: Mapping[object, BlobRef]) -> None:
        self._refs = dict(refs)

    def __getitem__(self, key: object) -> object:
        return fetch_blob(self._refs[key])

    def __iter__(self) -> Iterator[object]:
        return iter(self._refs)

    def __len__(self) -> int:
        return len(self._refs)


@dataclass(frozen=True)
class _WithBlobs:
    """Picklable adapter binding published refs to a two-argument task
    body: workers call ``fn(task, blobs)`` with a lazy :class:`BlobMap`."""

    fn: Callable[[T, BlobMap], R]
    refs: Mapping[object, BlobRef]

    def __call__(self, task: T) -> R:
        return self.fn(task, BlobMap(self.refs))


class Runtime:
    """The single public execution facade (see module docstring).

    Parameters
    ----------
    workers:
        ``None``/``1`` → in-process :class:`~repro.runtime.transport.
        SerialTransport` (the deterministic reference); ``0`` → one
        process per CPU; ``N > 1`` → a persistent
        :class:`~repro.runtime.transport.PoolTransport` of ``N`` workers.
    transport:
        An explicit transport instead of ``workers`` (mutually
        exclusive) — e.g. a caller-configured
        :class:`~repro.runtime.remote.RemoteTransport`.
    spool:
        A shared spool directory (mutually exclusive with ``workers``
        and ``transport``): builds an owned
        :class:`~repro.runtime.remote.RemoteTransport` on it, so
        ``Runtime(spool=...)`` is the one-argument path to multi-host
        dispatch against already-running ``repro host`` agents.
    spill_dir / spill_threshold:
        Blob-store knobs forwarded to the constructed transport: where
        oversized publications spill, and the inline-vs-spill cutoff in
        bytes.

    The runtime owns a transport it constructed (closing the runtime
    closes it) but only borrows an explicit one.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        transport: Optional[Transport] = None,
        spool: Optional[Union[str, os.PathLike]] = None,
        spill_dir: Optional[Union[str, os.PathLike]] = None,
        spill_threshold: Optional[int] = None,
    ) -> None:
        if sum(arg is not None for arg in (workers, transport, spool)) > 1:
            raise ConfigurationError(
                "pass at most one of workers=, transport= or spool="
            )
        self._owns_transport = transport is None
        if spool is not None:
            from repro.runtime.remote import RemoteTransport

            transport = RemoteTransport(
                spool, spill_threshold=spill_threshold
            )
        elif transport is None:
            n_workers = resolve_workers(workers)
            if n_workers <= 1:
                transport = SerialTransport(
                    spill_dir=spill_dir, spill_threshold=spill_threshold
                )
            else:
                transport = PoolTransport(
                    workers=n_workers,
                    spill_dir=spill_dir,
                    spill_threshold=spill_threshold,
                )
        self.transport = transport
        self._closed = False

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def workers(self) -> int:
        """Degree of parallelism of the underlying transport."""
        return self.transport.workers

    # ------------------------------------------------------------------ #
    # Blob store
    # ------------------------------------------------------------------ #
    def publish(self, key: object, obj: object) -> BlobRef:
        """Publish ``obj`` once under ``key``; see
        :meth:`repro.runtime.transport.Transport.publish`."""
        return self.transport.publish(key, obj)

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        """Ordered unsupervised batch: results in task order, single
        attempt, deterministic in-process fallback if the workers die.

        The thin fast path for callers that own their failure handling
        (the shard settle loop); grids that want retries, timeouts and
        checkpoints use :meth:`run`.
        """
        if self._closed:
            raise ConfigurationError("Runtime is closed")
        tasks = list(tasks)
        # Local transports shortcut in-process when parallelism cannot
        # help; a non-colocated transport (RemoteTransport) always
        # dispatches — the work belongs on the hosts, not here.
        if self.transport.colocated and (self.workers <= 1 or len(tasks) <= 1):
            return [fn(task) for task in tasks]
        return self.transport.map(fn, tasks)

    def run(
        self,
        fn: Callable[..., R],
        tasks: Sequence[T],
        *,
        keys: Optional[Sequence[TaskKey]] = None,
        blobs: Optional[Mapping[object, object]] = None,
        timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        journal: Optional[Union[CheckpointJournal, str, os.PathLike]] = None,
        resume: bool = False,
        encode: Optional[Callable[[R], object]] = None,
        decode: Optional[Callable[[object], R]] = None,
        sleep: Callable[[float], None] = time.sleep,
        fail_fast: bool = False,
    ) -> List[Union[R, TaskFailure]]:
        """Apply ``fn`` to every task under full supervision.

        Returns one entry per task in task order — the result, or a
        :class:`~repro.runtime.supervisor.TaskFailure` tombstone for a
        cell that exhausted its retry budget.  Results are bit-identical
        to a serial run for pure task functions, whatever the transport.

        Parameters beyond :func:`repro.runtime.supervisor.supervise`:

        blobs:
            Heavy shared payloads, ``key -> object``.  Each is published
            once on the transport; ``fn`` is then called as ``fn(task,
            blobs)`` where ``blobs`` is a lazy :class:`BlobMap` — the
            task payload carries refs, workers fetch-and-memoize.
        timeout:
            Per-attempt seconds; shorthand for ``retry`` with
            ``timeout_s`` set (overrides the policy's own value).
        journal:
            A :class:`~repro.runtime.journal.CheckpointJournal` or a
            path to create one at.
        resume:
            With ``journal``: replay already-completed cells from disk
            and run only the missing ones (bit-identical to an
            uninterrupted run).  ``False`` (default) truncates any
            existing journal first.
        """
        if self._closed:
            raise ConfigurationError("Runtime is closed")
        if timeout is not None:
            retry = replace(
                retry if retry is not None else RetryPolicy(), timeout_s=timeout
            )
        if journal is not None and not isinstance(journal, CheckpointJournal):
            journal = CheckpointJournal(journal)
        if journal is not None and not resume:
            journal.clear()
        task_fn: Callable[[T], R] = fn
        if blobs is not None:
            refs = {key: self.publish(key, obj) for key, obj in blobs.items()}
            task_fn = _WithBlobs(fn, refs)
        return supervise(
            task_fn,
            list(tasks),
            transport=self.transport,
            keys=keys,
            retry=retry,
            journal=journal,
            encode=encode,
            decode=decode,
            sleep=sleep,
            fail_fast=fail_fast,
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release an owned transport (borrowed ones stay open)."""
        if self._closed:
            return
        self._closed = True
        if self._owns_transport:
            self.transport.close()

    def __enter__(self) -> "Runtime":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = ["BlobMap", "Runtime"]

"""The supervision policy: retry, timeout, quarantine — over any transport.

``pool.map`` turns one worker crash into a dead multi-hour grid: a
broken pool aborts every cell, nothing is retried, and nothing can be
resumed.  :func:`supervise` replaces it with a supervisor that treats
each cell as an independently retriable unit of work, *composed over* a
:class:`~repro.runtime.transport.Transport` instead of welded to one
pool implementation:

* **Per-task timeout.**  ``RetryPolicy.timeout_s`` arms a ``SIGALRM``
  timer inside the worker around the task body, so a wedged cell raises
  :class:`~repro.exceptions.TaskTimeout` instead of stalling the grid.
  Off the main thread (where ``signal`` refuses handlers) the deadline
  is still enforced, by a portable wall clock: in-process attempts run
  on an abandonable helper thread, and dispatched attempts get a
  caller-side ``future.result(timeout=)`` budget with
  ``transport.recycle()`` evicting the wedged worker — timeouts hold on
  every transport, from any thread.
* **Bounded retry, deterministic backoff.**  Each failed attempt requeues
  the cell until ``RetryPolicy.max_attempts`` is spent.  The backoff
  delay is a pure function of the attempt number —
  ``base_delay_s * backoff**(attempt-1)`` — never of the wall clock, so
  scheduling decisions replay identically (the actual sleeping is an
  injectable side effect).
* **Worker-crash isolation.**  A SIGKILLed worker surfaces as
  :data:`~repro.runtime.transport.WorkerCrash` on every in-flight
  future, and the supervisor cannot tell which of the (at most
  ``workers``) in-flight cells killed it.  It refunds their attempts,
  recycles the transport's workers, and re-runs the suspects one at a
  time — only a cell that crashes the workers while running *alone* is
  charged.  Only a cell that keeps dying exhausts its budget and
  surfaces as a structured :class:`TaskFailure` in the result list;
  innocent bystanders are never charged and the rest of the grid
  completes.
* **Checkpoint journaling.**  With a
  :class:`~repro.runtime.journal.CheckpointJournal`, every completed
  cell is appended to a JSONL file (flushed and fsynced) the moment it
  finishes.  A re-run that loads the journal replays completed cells
  from disk — JSON round-trips Python floats exactly (shortest-repr),
  so a resumed grid is bit-identical to an uninterrupted one — and
  executes only the missing cells.

:func:`supervised_map` keeps the pre-:mod:`repro.runtime` signature
(``workers=`` instead of ``transport=``) for existing callers; new code
goes through the :class:`~repro.runtime.executor.Runtime` facade.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures import wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, TypeVar, Union

from repro.exceptions import ConfigurationError, TaskTimeout
from repro.runtime.journal import CheckpointJournal, TaskKey
from repro.runtime.transport import (
    PoolTransport,
    SerialTransport,
    Transport,
    WorkerCrash,
    resolve_workers,
)

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervisor retries a failing cell.

    ``delay(attempt)`` is deliberately a pure function of the attempt
    number — retry *scheduling* never consults the wall clock, which the
    property tests pin.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    backoff: float = 2.0
    #: Per-attempt time budget, enforced by a SIGALRM timer inside the
    #: worker; ``None`` disables enforcement.
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0:
            raise ConfigurationError(
                f"base_delay_s must be >= 0, got {self.base_delay_s}"
            )
        if self.backoff < 1:
            raise ConfigurationError(f"backoff must be >= 1, got {self.backoff}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigurationError(
                f"timeout_s must be positive, got {self.timeout_s}"
            )

    def delay(self, attempt: int) -> float:
        """Backoff before re-running an attempt that just failed.

        ``attempt`` is 1-based (the attempt that failed); the delay grows
        exponentially: ``base_delay_s * backoff**(attempt-1)``.
        """
        if attempt < 1:
            raise ConfigurationError(f"attempt must be >= 1, got {attempt}")
        return self.base_delay_s * self.backoff ** (attempt - 1)


@dataclass(frozen=True)
class TaskFailure:
    """A cell that exhausted its retry budget — the structured tombstone
    that takes the place of its result instead of aborting the grid."""

    key: TaskKey
    attempts: int
    #: ``"exception"``, ``"timeout"`` or ``"worker-crash"``.
    kind: str
    error_type: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TaskFailure(key={self.key}, kind={self.kind}, "
            f"attempts={self.attempts}, {self.error_type}: {self.message})"
        )


def _wall_budget(timeout_s: float) -> float:
    """The caller-side wall-clock allowance for one attempt.

    Deliberately looser than the in-worker SIGALRM deadline so the
    precise mechanism wins whenever it can fire; the wall clock only
    catches attempts wedged *past* the alarm (signal blocked, worker
    stuck before the task body, remote task never claimed).
    """
    return timeout_s + max(1.0, 0.5 * timeout_s)


def _invoke(fn: Callable[[T], R], task: T, timeout_s: Optional[float]) -> R:
    """Run one attempt, optionally under a SIGALRM deadline.

    Normally runs in the worker's main thread (the pool workers, remote
    host agents, and the serial path), where ``signal`` is allowed to
    install handlers; the timer is disarmed and the previous handler
    restored on every exit.  Called off the main thread — where
    ``signal.signal`` raises ``ValueError`` — the deadline falls back to
    a portable wall clock: the attempt runs on a daemon helper thread
    and is abandoned (the thread leaks until it returns, the result is
    discarded) when the budget expires, raising
    :class:`~repro.exceptions.TaskTimeout` exactly like the alarm path.
    """
    if not timeout_s:
        return fn(task)
    import signal

    def _expired(signum: int, frame: object) -> None:
        raise TaskTimeout(f"task exceeded its {timeout_s}s budget")

    try:
        previous = signal.signal(signal.SIGALRM, _expired)
    except ValueError:
        return _invoke_walltimed(fn, task, timeout_s)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        return fn(task)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _invoke_walltimed(fn: Callable[[T], R], task: T, timeout_s: float) -> R:
    """Wall-clock deadline enforcement for threads that cannot arm
    SIGALRM: run the attempt on a daemon thread, join with the budget."""
    import threading

    outcome: List[object] = []

    def _run() -> None:
        try:
            outcome.append(("ok", fn(task)))
        except BaseException as exc:  # noqa: BLE001 - relayed to caller
            outcome.append(("err", exc))

    worker = threading.Thread(
        target=_run, name="repro-walltimed-attempt", daemon=True
    )
    worker.start()
    worker.join(timeout_s)
    if not outcome:
        # The attempt is abandoned: the daemon thread keeps running
        # until fn returns, but its outcome is discarded.
        raise TaskTimeout(
            f"task exceeded its {timeout_s}s budget (wall-clock fallback "
            f"off the main thread)"
        )
    status, value = outcome[0]  # type: ignore[misc]
    if status == "err":
        raise value  # type: ignore[misc]
    return value  # type: ignore[return-value]


def _failure(key: TaskKey, attempts: int, exc: BaseException) -> TaskFailure:
    if isinstance(exc, TaskTimeout):
        kind = "timeout"
    elif isinstance(exc, WorkerCrash):
        kind = "worker-crash"
    else:
        kind = "exception"
    return TaskFailure(
        key=key,
        attempts=attempts,
        kind=kind,
        error_type=type(exc).__name__,
        message=str(exc),
    )


def supervise(
    fn: Callable[[T], R],
    tasks: Sequence[T],
    *,
    transport: Transport,
    keys: Optional[Sequence[TaskKey]] = None,
    retry: Optional[RetryPolicy] = None,
    journal: Optional[CheckpointJournal] = None,
    encode: Optional[Callable[[R], object]] = None,
    decode: Optional[Callable[[object], R]] = None,
    sleep: Callable[[float], None] = time.sleep,
    fail_fast: bool = False,
) -> List[Union[R, TaskFailure]]:
    """Apply ``fn`` to every task under supervision, on ``transport``.

    Returns one entry per task, in task order: the result, or a
    :class:`TaskFailure` for cells that exhausted their retry budget.

    Parameters
    ----------
    transport:
        Where attempts execute.  A :class:`~repro.runtime.transport.
        SerialTransport` (or a single-task grid) takes the in-process
        path; anything wider drives the transport's ``submit`` futures.
    keys:
        One JSON-serialisable key per task (defaults to ``(index,)``);
        identifies cells in the journal and in failures.
    retry:
        The :class:`RetryPolicy`; defaults to three attempts with 50 ms
        doubling backoff and no timeout.
    journal:
        Optional :class:`~repro.runtime.journal.CheckpointJournal`.
        Cells already present in it are returned from disk without
        running; completed cells are appended as they finish.  Pass
        ``encode``/``decode`` to map results to/from their JSON payloads
        (identity by default).
    sleep:
        The side-effect used to realise backoff delays.  Injectable so
        tests (and the purity property) can run without waiting.
    fail_fast:
        Re-raise the original exception when a cell exhausts its retry
        budget, instead of recording a :class:`TaskFailure` — the
        ``pool.map``-compatible contract
        :func:`repro.experiments.parallel.map_tasks` keeps.
    """
    retry = retry if retry is not None else RetryPolicy()
    encode = encode if encode is not None else (lambda r: r)
    decode = decode if decode is not None else (lambda p: p)
    if keys is None:
        keys = [(i,) for i in range(len(tasks))]
    if len(keys) != len(tasks):
        raise ConfigurationError(f"got {len(keys)} keys for {len(tasks)} tasks")
    if len(set(keys)) != len(keys):
        raise ConfigurationError("task keys must be unique")

    results: List[Union[R, TaskFailure, None]] = [None] * len(tasks)
    remaining = deque(range(len(tasks)))

    if journal is not None:
        completed = journal.load()
        remaining = deque(i for i in remaining if keys[i] not in completed)
        for i, key in enumerate(keys):
            if key in completed:
                results[i] = decode(completed[key])

    def _finish(i: int, value: R) -> None:
        results[i] = value
        if journal is not None:
            journal.record(keys[i], encode(value))

    attempts = [0] * len(tasks)
    n_workers = transport.workers

    # Local transports shortcut to the in-process path when parallelism
    # cannot help; a non-colocated transport (RemoteTransport) always
    # dispatches, because running the work *there* is the point.
    if transport.colocated and (n_workers <= 1 or len(remaining) <= 1):
        while remaining:
            i = remaining.popleft()
            attempts[i] += 1
            try:
                _finish(i, _invoke(fn, tasks[i], retry.timeout_s))
            except Exception as exc:
                if attempts[i] < retry.max_attempts:
                    sleep(retry.delay(attempts[i]))
                    remaining.append(i)
                elif fail_fast:
                    raise
                else:
                    results[i] = _failure(keys[i], attempts[i], exc)
        return results  # type: ignore[return-value]

    n_workers = min(n_workers, len(remaining)) if remaining else 1
    inflight: Dict["Future[R]", int] = {}
    #: Caller-side wall-clock deadline per in-flight future (only when a
    #: timeout is configured): the portable fallback for workers that
    #: cannot arm SIGALRM or wedged before reaching the task body.
    deadlines: Dict["Future[R]", float] = {}
    # Cells that were in flight when the workers died. The supervisor
    # cannot tell which of them killed the worker, so their attempts are
    # refunded and they re-run one at a time — only a cell that crashes
    # the workers while running alone is charged.
    quarantine: deque = deque()

    def _handle_error(i: int, error: BaseException, requeue: deque) -> None:
        if attempts[i] < retry.max_attempts:
            sleep(retry.delay(attempts[i]))
            requeue.append(i)
        elif fail_fast:
            raise error
        else:
            results[i] = _failure(keys[i], attempts[i], error)

    while remaining or inflight or quarantine:
        while quarantine:
            i = quarantine.popleft()
            attempts[i] += 1
            try:
                fut = transport.submit(_invoke, fn, tasks[i], retry.timeout_s)
            except WorkerCrash:
                # The crash surfaced at submit time (broken pool left
                # over from a concurrent death): this cell never ran, so
                # refund it, recycle, and try again on live workers.
                attempts[i] -= 1
                transport.recycle()
                quarantine.appendleft(i)
                continue
            try:
                if retry.timeout_s is not None:
                    # Portable wall-clock fallback: even if the worker
                    # cannot arm SIGALRM (or wedged before the task
                    # body), the solo re-run cannot stall the grid.
                    try:
                        value = fut.result(timeout=_wall_budget(retry.timeout_s))
                    except FutureTimeoutError:
                        transport.recycle()
                        raise TaskTimeout(
                            f"task exceeded its {retry.timeout_s}s budget "
                            f"(wall-clock fallback; workers recycled)"
                        ) from None
                else:
                    value = fut.result()
                _finish(i, value)
            except WorkerCrash as exc:
                # Proven killer: it crashed the workers running alone.
                transport.recycle()
                _handle_error(i, exc, quarantine)
            except Exception as exc:
                _handle_error(i, exc, remaining)
        while remaining and len(inflight) < n_workers:
            i = remaining.popleft()
            attempts[i] += 1
            try:
                fut = transport.submit(_invoke, fn, tasks[i], retry.timeout_s)
            except WorkerCrash:
                # A worker died between this cell's scheduling and its
                # submit — the cell never ran, so it is refunded, not a
                # suspect. In-flight futures surface the same crash and
                # drive quarantine below; with nothing in flight the
                # workers are recycled here.
                attempts[i] -= 1
                remaining.appendleft(i)
                if not inflight:
                    transport.recycle()
                break
            inflight[fut] = i
            if retry.timeout_s is not None:
                deadlines[fut] = time.monotonic() + _wall_budget(retry.timeout_s)
        if not inflight:
            continue
        if retry.timeout_s is None:
            done, _ = wait(set(inflight), return_when=FIRST_COMPLETED)
        else:
            wait_s = max(
                0.0, min(deadlines[f] for f in inflight) - time.monotonic()
            )
            done, _ = wait(
                set(inflight), timeout=wait_s, return_when=FIRST_COMPLETED
            )
            if not done:
                # Nothing finished inside the tightest wall budget:
                # every overdue attempt times out and the workers are
                # recycled so a wedged one cannot hold its slot.
                now = time.monotonic()
                overdue = [f for f in inflight if now >= deadlines[f]]
                if overdue:
                    transport.recycle()
                for f in overdue:
                    i = inflight.pop(f)
                    deadlines.pop(f, None)
                    _handle_error(
                        i,
                        TaskTimeout(
                            f"task exceeded its {retry.timeout_s}s budget "
                            f"(wall-clock fallback; workers recycled)"
                        ),
                        remaining,
                    )
                continue
        crashed = False
        for fut in done:
            i = inflight.pop(fut)
            deadlines.pop(fut, None)
            try:
                _finish(i, fut.result())
            except WorkerCrash:
                crashed = True
                attempts[i] -= 1
                quarantine.append(i)
            except Exception as exc:
                _handle_error(i, exc, remaining)
        if crashed:
            # Every other in-flight future of dead workers fails with
            # them; refund and quarantine them all, then recycle the
            # transport for the isolation re-runs.
            for fut, i in list(inflight.items()):
                exc: Optional[BaseException] = None
                try:
                    exc = fut.exception(timeout=60.0)
                    if exc is None:
                        # Raced to completion before the workers died.
                        _finish(i, fut.result())
                        continue
                except Exception as wait_exc:
                    exc = wait_exc
                if isinstance(exc, WorkerCrash):
                    attempts[i] -= 1
                    quarantine.append(i)
                else:
                    _handle_error(i, exc, remaining)
            inflight.clear()
            deadlines.clear()
            transport.recycle()
    return results  # type: ignore[return-value]


def supervised_map(
    fn: Callable[[T], R],
    tasks: Sequence[T],
    keys: Optional[Sequence[TaskKey]] = None,
    workers: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    journal: Optional[CheckpointJournal] = None,
    encode: Optional[Callable[[R], object]] = None,
    decode: Optional[Callable[[object], R]] = None,
    sleep: Callable[[float], None] = time.sleep,
    fail_fast: bool = False,
) -> List[Union[R, TaskFailure]]:
    """:func:`supervise` with a worker *count* instead of a transport.

    The pre-:mod:`repro.runtime` signature, kept for existing callers:
    builds a throwaway :class:`~repro.runtime.transport.SerialTransport`
    or :class:`~repro.runtime.transport.PoolTransport` for the call and
    closes it on exit.  Callers that dispatch repeatedly should hold a
    :class:`~repro.runtime.executor.Runtime` instead, so workers and
    published blobs persist across batches.
    """
    n_workers = resolve_workers(workers)
    transport: Transport = (
        SerialTransport() if n_workers <= 1 else PoolTransport(workers=n_workers)
    )
    try:
        return supervise(
            fn,
            tasks,
            transport=transport,
            keys=keys,
            retry=retry,
            journal=journal,
            encode=encode,
            decode=decode,
            sleep=sleep,
            fail_fast=fail_fast,
        )
    finally:
        transport.close()


__all__ = [
    "RetryPolicy",
    "TaskFailure",
    "supervise",
    "supervised_map",
]

"""Durable checkpoint journaling for supervised task grids.

:class:`CheckpointJournal` moved here from
``repro.experiments.supervisor`` unchanged: the on-disk format is an
append-only JSONL file, one ``{"key": [...], "value": <payload>}`` line
per completed cell, flushed and fsynced as it is written. Journals
written before the move replay bit-identically through this module —
the format is a compatibility contract, not an implementation detail
(``tests/runtime`` pins it, and :class:`~repro.market.shard.ShardLog`
rides the same file format for its replication log).
"""

from __future__ import annotations

import json
import os
from typing import Dict, Tuple, Union

#: JSON-serialisable journal key for one cell (e.g. ``(x_index, rep)``).
TaskKey = Tuple[object, ...]


class CheckpointJournal:
    """An append-only JSONL journal of completed cells.

    Each line is ``{"key": [...], "value": <payload>}``; records are
    flushed and fsynced as they complete, so a SIGKILL loses at most the
    line being written (a truncated trailing line is ignored on load).
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = os.fspath(path)

    def load(self) -> Dict[TaskKey, object]:
        """All intact records, ``key -> payload``; missing file -> empty."""
        records: Dict[TaskKey, object] = {}
        if not os.path.exists(self.path):
            return records
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    # A crash mid-append leaves one truncated line at the
                    # tail; the cell simply re-runs.
                    continue
                records[_as_key(entry["key"])] = entry["value"]
        return records

    def record(self, key: TaskKey, value: object) -> None:
        """Durably append one completed cell."""
        line = json.dumps({"key": list(key), "value": value}, sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def clear(self) -> None:
        """Start a fresh journal (truncate any existing file)."""
        with open(self.path, "w", encoding="utf-8"):
            pass


def _as_key(raw: object) -> TaskKey:
    if isinstance(raw, (list, tuple)):
        return tuple(raw)
    return (raw,)


__all__ = ["CheckpointJournal", "TaskKey"]

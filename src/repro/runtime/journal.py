"""Durable checkpoint journaling for supervised task grids.

:class:`CheckpointJournal` moved here from
``repro.experiments.supervisor``: the on-disk format is an append-only
JSONL file, one ``{"key": [...], "value": <payload>}`` line per
completed cell, flushed and fsynced as it is written. Journals written
before the move replay bit-identically through this module — the format
is a compatibility contract, not an implementation detail
(``tests/runtime`` pins it, and :class:`~repro.market.shard.ShardLog`
rides the same file format for its replication log).

Shared-filesystem hardening
---------------------------
Three failure modes that do not exist on a local disk show up once the
journal lives on an NFS mount under a multi-host
:class:`~repro.runtime.remote.RemoteTransport` run, and each gets a
defence:

* **Bit rot / torn reads** — every record now carries a ``crc`` field,
  a CRC32 over the canonical serialisation of its ``key``/``value``
  pair.  Records written before the field existed still replay (the
  format stays backward compatible); a record whose checksum does not
  match is *skipped and counted*, and :meth:`CheckpointJournal.load`
  emits one :class:`RuntimeWarning` naming the count instead of
  silently replaying garbage.  A truncated trailing line — the ordinary
  crash-mid-append artefact — is still ignored without a warning.
* **The file that never reached the directory** — after the first
  append creates the file, the parent directory is fsynced, so a host
  crash cannot leave a durable record in a file that is not itself
  durable in its directory entry.
* **Interleaved writers** — each append takes an advisory ``flock`` on
  the journal file (where the platform provides one), so two writers on
  a shared filesystem cannot interleave partial lines.
"""

from __future__ import annotations

import json
import os
import warnings
import zlib
from typing import Dict, Optional, Tuple, Union

try:  # pragma: no cover - absent only on non-POSIX platforms
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

#: JSON-serialisable journal key for one cell (e.g. ``(x_index, rep)``).
TaskKey = Tuple[object, ...]


def _canonical(key: object, value: object) -> bytes:
    """The byte string the record checksum covers.

    ``json.dumps(sort_keys=True)`` of the ``key``/``value`` pair: the
    loader recomputes it from the *parsed* record, which round-trips
    exactly (shortest-repr floats, sorted keys, ascii escapes), so a
    record checksums identically on both sides of a replay.
    """
    return json.dumps({"key": key, "value": value}, sort_keys=True).encode("utf-8")


class CheckpointJournal:
    """An append-only JSONL journal of completed cells.

    Each line is ``{"crc": <crc32>, "key": [...], "value": <payload>}``;
    records are flushed and fsynced as they complete, so a SIGKILL loses
    at most the line being written (a truncated trailing line is ignored
    on load).  Lines without a ``crc`` field — journals from before the
    field existed — replay unchanged.
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = os.fspath(path)
        #: Corrupt (checksum-failed or mid-file undecodable) records
        #: skipped by the most recent :meth:`load`.
        self.last_load_corrupt = 0
        self._dir_synced = False

    def load(self) -> Dict[TaskKey, object]:
        """All intact records, ``key -> payload``; missing file -> empty.

        Corrupt mid-file records (failed checksum, or undecodable JSON
        anywhere but the tail) are skipped and counted in
        :attr:`last_load_corrupt`, with one :class:`RuntimeWarning`
        naming the count.  A truncated *final* line is the ordinary
        crash-mid-append artefact and is dropped silently.
        """
        records: Dict[TaskKey, object] = {}
        self.last_load_corrupt = 0
        if not os.path.exists(self.path):
            return records
        with open(self.path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        last = len(lines) - 1
        corrupt = 0
        for lineno, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                if lineno == last:
                    # A crash mid-append leaves one truncated line at
                    # the tail; the cell simply re-runs.
                    continue
                corrupt += 1
                continue
            if not isinstance(entry, dict) or "key" not in entry:
                corrupt += 1
                continue
            crc: Optional[int] = entry.get("crc")
            if crc is not None:
                expected = zlib.crc32(
                    _canonical(entry["key"], entry.get("value"))
                )
                if crc != expected:
                    corrupt += 1
                    continue
            records[_as_key(entry["key"])] = entry.get("value")
        self.last_load_corrupt = corrupt
        if corrupt:
            warnings.warn(
                f"checkpoint journal {self.path!r}: skipped {corrupt} "
                f"corrupt record(s) (failed checksum or undecodable "
                f"mid-file line); the affected cells will re-run",
                RuntimeWarning,
                stacklevel=2,
            )
        return records

    def record(self, key: TaskKey, value: object) -> None:
        """Durably append one completed cell.

        The line is checksummed, the file flushed and fsynced, the
        append serialised under an advisory ``flock``, and — on the
        append that creates the file — the parent directory fsynced so
        the new directory entry is durable too.
        """
        body = {"key": list(key), "value": value}
        crc = zlib.crc32(_canonical(body["key"], body["value"]))
        line = json.dumps({"crc": crc, **body}, sort_keys=True)
        existed = os.path.exists(self.path)
        with open(self.path, "a", encoding="utf-8") as fh:
            if fcntl is not None:
                fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            try:
                fh.write(line + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            finally:
                if fcntl is not None:
                    fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
        if not existed or not self._dir_synced:
            self._fsync_parent()
            self._dir_synced = True

    def _fsync_parent(self) -> None:
        parent = os.path.dirname(os.path.abspath(self.path))
        try:
            dir_fd = os.open(parent, os.O_RDONLY)
        except OSError:  # pragma: no cover - unreadable parent
            return
        try:
            os.fsync(dir_fd)
        except OSError:  # pragma: no cover - fs without dir fsync
            pass
        finally:
            os.close(dir_fd)

    def clear(self) -> None:
        """Start a fresh journal (truncate any existing file)."""
        with open(self.path, "w", encoding="utf-8"):
            pass


def _as_key(raw: object) -> TaskKey:
    if isinstance(raw, (list, tuple)):
        return tuple(raw)
    return (raw,)


__all__ = ["CheckpointJournal", "TaskKey"]

"""Transports: where dispatched work physically executes.

The supervision policy (:mod:`repro.runtime.supervisor`) decides *what*
runs — retries, timeouts, quarantine, journaling.  A :class:`Transport`
decides *where*: in-process (:class:`SerialTransport`, the deterministic
reference), on a persistent local process pool (:class:`PoolTransport`),
or on host agents over a shared-filesystem spool
(:class:`~repro.runtime.remote.RemoteTransport`, re-exported here).
Every transport carries the same publish-once blob store, so a
consumer written against the :class:`~repro.runtime.executor.Runtime`
facade is transport-agnostic by construction.

Published blobs
---------------
Pickling a multi-megabyte :class:`~repro.market.compiled.CompiledMarket`
into every task payload is what drove the old sweep pool's
``parallel_sweep.speedup`` to 0.70x.  :meth:`Transport.publish` instead
pickles each heavy object **once** per key (e.g. ``(shard id, delta
sequence number)``): small payloads ride inline in the returned
:class:`BlobRef`, payloads over ``spill_threshold`` bytes spill to a
file and travel by path.  Workers resolve refs with :func:`fetch_blob`,
which memoizes per process — a given publication is deserialised at most
once per worker, however many tasks reference it.

The crash hierarchy
-------------------
Worker death surfaces as :class:`WorkerCrash` — a proper exception
hierarchy, not the bare ``BrokenProcessPool`` alias it used to be:

* :class:`WorkerCrash` — the transport-agnostic base: "a worker died
  under us" (as opposed to the task raising).  The supervisor's
  quarantine protocol is keyed on exactly this type.
* :class:`PoolCrash` — a local process-pool worker died.  It subclasses
  *both* :class:`WorkerCrash` and the stdlib ``BrokenProcessPool``, so
  legacy callers that still catch ``BrokenProcessPool`` keep catching
  local pool breakage; :class:`PoolTransport` translates every raw
  ``BrokenProcessPool`` the pool raises into it at the boundary.
* :class:`HostLost` — a remote host agent died, wedged past its lease,
  or corrupted its reply channel (see :mod:`repro.runtime.remote`).

``except BrokenProcessPool`` therefore *narrows*: it misses
:class:`HostLost`.  Code that means "any worker died" must catch
:class:`WorkerCrash` — reprolint R7 flags the narrowing.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from hashlib import sha256
from typing import Any, Callable, Dict, List, Optional, Sequence, TypeVar, Union

from repro.exceptions import ConfigurationError

T = TypeVar("T")
R = TypeVar("R")


class WorkerCrash(RuntimeError):
    """A worker died under us (as opposed to the task raising).

    The transport-agnostic crash signal: every transport translates its
    own failure detection — pool breakage, socket loss, lease expiry —
    into a member of this hierarchy, so the supervisor's
    quarantine/refund/re-run-solo protocol and :class:`~repro.runtime.
    supervisor.RetryPolicy` backoff apply unchanged whatever the
    substrate.
    """


class PoolCrash(WorkerCrash, BrokenProcessPool):
    """A local process-pool worker died (SIGKILL, ``os._exit``, OOM).

    The translated form of the stdlib ``BrokenProcessPool``: it keeps
    that type as a base so legacy ``except BrokenProcessPool`` handlers
    still catch local pool breakage, while ``except WorkerCrash``
    catches it alongside :class:`HostLost`.
    """


class HostLost(WorkerCrash):
    """A remote host agent died, wedged past its lease, or returned a
    corrupt reply (see :class:`repro.runtime.remote.RemoteTransport`)."""


def translate_crash(exc: BaseException) -> BaseException:
    """Normalise a raw ``BrokenProcessPool`` into :class:`PoolCrash`.

    Exceptions already inside the :class:`WorkerCrash` hierarchy (and
    everything that is not pool breakage) pass through untouched.
    """
    if isinstance(exc, WorkerCrash) or not isinstance(exc, BrokenProcessPool):
        return exc
    crash = PoolCrash(str(exc) or "a process pool worker died abruptly")
    crash.__cause__ = exc
    return crash


def _translating_future(inner: "Future[R]") -> "Future[R]":
    """Mirror ``inner``, rewriting ``BrokenProcessPool`` results into
    :class:`PoolCrash` so the crash hierarchy holds on every future a
    transport hands out."""
    outer: "Future[R]" = Future()

    def _done(fut: "Future[R]") -> None:
        exc = fut.exception()
        if exc is not None:
            outer.set_exception(translate_crash(exc))
        else:
            outer.set_result(fut.result())

    inner.add_done_callback(_done)
    return outer

#: Published payloads at most this many bytes ride inline in the
#: :class:`BlobRef`; larger ones spill to a file and travel by path.
DEFAULT_SPILL_THRESHOLD = 64 * 1024


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a ``--workers`` value: ``None``/``1`` → serial, ``0`` →
    ``os.cpu_count()``, ``N > 1`` → that many processes."""
    if workers is None:
        return 1
    if workers < 0:
        raise ConfigurationError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


def check_picklable(obj: object, role: str) -> None:
    """Raise :class:`~repro.exceptions.ConfigurationError` naming ``obj``
    if it cannot cross a process boundary (instead of dying in the pool)."""
    try:
        pickle.dumps(obj)
    except Exception as exc:
        raise ConfigurationError(
            f"{role} {obj!r} is not picklable and cannot cross the process-pool "
            f"boundary; use a module-level function or functools.partial "
            f"(or run with workers=1): {exc}"
        ) from None


@dataclass(frozen=True)
class BlobRef:
    """A picklable handle to one published blob.

    ``token`` uniquely identifies the publication (for spilled blobs it
    is the spill path, keeping refs interchangeable with the legacy
    string tokens :func:`fetch_blob` still accepts).  Exactly one of
    ``data`` (inline pickle bytes) and ``path`` (spill file) is set.
    """

    token: str
    path: Optional[str] = None
    data: Optional[bytes] = field(default=None, repr=False)
    #: Pickled payload size in bytes (spilled or inline).
    size: int = 0
    #: Hex SHA-256 of the pickled payload.  ``None`` for refs published
    #: before checksums existed (and legacy string tokens); set, it is
    #: verified by :func:`fetch_blob` before unpickling, so a torn or
    #: bit-rotted blob on a shared filesystem fails loudly instead of
    #: deserialising garbage.
    checksum: Optional[str] = None


#: Worker-side memo of published blobs, keyed by token. Each process
#: deserialises a given publication at most once; FIFO-bounded so long
#: runs cannot accumulate stale shard views.
_BLOB_CACHE: Dict[str, object] = {}
_BLOB_CACHE_ORDER: List[str] = []
_BLOB_CACHE_LIMIT = 8


def fetch_blob(ref: Union[str, BlobRef]) -> object:
    """Resolve a published blob, memoized per process.

    Accepts a :class:`BlobRef` or a legacy string token (the spill-file
    path the pre-:mod:`repro.runtime` ``ShardExecutor.publish`` returned).
    The first fetch in a process unpickles the payload; later fetches of
    the same token are dictionary hits.
    """
    token = ref if isinstance(ref, str) else ref.token
    if token in _BLOB_CACHE:
        return _BLOB_CACHE[token]
    if isinstance(ref, BlobRef) and ref.data is not None:
        payload = ref.data
    else:
        path = ref if isinstance(ref, str) else ref.path
        if path is None:  # pragma: no cover - BlobRef invariant
            raise ConfigurationError(f"blob {token!r} has neither data nor path")
        with open(path, "rb") as fh:
            payload = fh.read()
    if isinstance(ref, BlobRef) and ref.checksum is not None:
        digest = sha256(payload).hexdigest()
        if digest != ref.checksum:
            raise ConfigurationError(
                f"blob {token!r} failed its checksum (expected "
                f"{ref.checksum[:12]}…, read {digest[:12]}…): the shared "
                f"store copy is torn or corrupt"
            )
    blob = pickle.loads(payload)
    _BLOB_CACHE[token] = blob
    _BLOB_CACHE_ORDER.append(token)
    while len(_BLOB_CACHE_ORDER) > _BLOB_CACHE_LIMIT:
        _BLOB_CACHE.pop(_BLOB_CACHE_ORDER.pop(0), None)
    return blob


class Transport:
    """Base execution substrate: blob store plus the dispatch surface.

    Subclasses implement :meth:`submit` (one task → future; the
    supervisor's building block), :meth:`map` (an ordered unsupervised
    batch with deterministic crash fallback) and :meth:`recycle`
    (discard dead workers after a :data:`WorkerCrash`).  The blob store
    — :meth:`publish` / :func:`fetch_blob` — is shared: pickle once per
    key, inline under :attr:`spill_threshold` bytes, spill file above.
    """

    #: Degree of parallelism this transport offers (1 = in-process).
    workers: int = 1

    #: Whether work may legitimately run in the caller's process when
    #: parallelism cannot help (single worker, single task).  True for
    #: the local transports; :class:`~repro.runtime.remote.
    #: RemoteTransport` sets it False so dispatch always goes through
    #: the spool — execution locality is the point of that transport,
    #: and a local shortcut would silently run remote work here.
    colocated: bool = True

    def __init__(
        self,
        spill_dir: Optional[Union[str, os.PathLike]] = None,
        spill_threshold: Optional[int] = None,
    ) -> None:
        self._spill_dir = os.fspath(spill_dir) if spill_dir is not None else None
        self._owns_spill_dir = spill_dir is None
        self.spill_threshold = (
            DEFAULT_SPILL_THRESHOLD if spill_threshold is None else spill_threshold
        )
        self._published: Dict[object, BlobRef] = {}
        self._n_published = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    # Publish-once blob store
    # ------------------------------------------------------------------ #
    def _ensure_spill_dir(self) -> str:
        if self._spill_dir is None:
            self._spill_dir = tempfile.mkdtemp(prefix="repro-runtime-")
        return self._spill_dir

    def publish(self, key: object, obj: object) -> BlobRef:
        """Publish ``obj`` under ``key``; returns its :class:`BlobRef`.

        Re-publishing an already-published key is a no-op returning the
        existing ref — the caller can publish unconditionally per epoch
        and still pickle each ``(shard, seq)`` view once.
        """
        if self._closed:
            raise ConfigurationError(f"{type(self).__name__} is closed")
        ref = self._published.get(key)
        if ref is not None:
            return ref
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        digest = sha256(payload).hexdigest()
        serial = self._n_published
        self._n_published += 1
        if len(payload) <= self.spill_threshold:  # reprolint: ok[R2] exact byte count against an integer threshold, not a cost/capacity value
            ref = BlobRef(
                token=f"inline:{id(self):x}:{serial}",
                data=payload,
                size=len(payload),
                checksum=digest,
            )
        else:
            path = self._spill_blob(serial, digest, payload)
            ref = BlobRef(
                token=path, path=path, size=len(payload), checksum=digest
            )
        self._published[key] = ref
        return ref

    def _spill_blob(self, serial: int, digest: str, payload: bytes) -> str:
        """Write one spilled payload; returns its path.  Overridden by
        the remote transport to content-address into the shared store."""
        path = os.path.join(self._ensure_spill_dir(), f"blob-{serial}.pkl")
        with open(path, "wb") as fh:
            fh.write(payload)
        return path

    # ------------------------------------------------------------------ #
    # Dispatch surface (subclass responsibility)
    # ------------------------------------------------------------------ #
    def submit(self, fn: Callable[..., R], *args: object) -> "Future[R]":
        """Dispatch one call; the returned future may raise
        :data:`WorkerCrash` if the executing worker dies."""
        raise NotImplementedError

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every task, preserving task order, with a
        deterministic in-process fallback if the workers die."""
        raise NotImplementedError

    def recycle(self) -> None:
        """Discard dead workers so the next :meth:`submit` gets live ones
        (no-op for transports without worker state)."""

    def close(self) -> None:
        """Release workers and remove an owned spill directory."""
        if self._closed:
            return
        self._closed = True
        if self._owns_spill_dir and self._spill_dir is not None:
            shutil.rmtree(self._spill_dir, ignore_errors=True)
            self._spill_dir = None

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialTransport(Transport):
    """In-process execution: the deterministic reference substrate.

    ``submit`` runs the call immediately on the calling thread and wraps
    the outcome in an already-resolved future, so the supervisor's
    scheduling loop is byte-for-byte the same code path as with a pool —
    only *where* the work ran differs.
    """

    workers = 1

    def submit(self, fn: Callable[..., R], *args: object) -> "Future[R]":
        fut: "Future[R]" = Future()
        try:
            fut.set_result(fn(*args))
        except BaseException as exc:
            fut.set_exception(exc)
        return fut

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        return [fn(task) for task in tasks]


class PoolTransport(Transport):
    """A persistent local process pool with publish-once blob shipping.

    The pool is created lazily on first dispatch and survives across
    batches (and across supervised runs sharing the transport), so blob
    publications stay warm in the workers' :func:`fetch_blob` memos.
    ``map`` preserves task order; a worker crash mid-batch tears the pool
    down and deterministically falls back to the in-process path for the
    whole batch (the contract the shard-settle equivalence tests pin).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        spill_dir: Optional[Union[str, os.PathLike]] = None,
        spill_threshold: Optional[int] = None,
    ) -> None:
        super().__init__(spill_dir=spill_dir, spill_threshold=spill_threshold)
        self.workers = resolve_workers(workers)
        self._pool: Optional[ProcessPoolExecutor] = None

    def _live_pool(self) -> ProcessPoolExecutor:
        if self._closed:
            raise ConfigurationError("PoolTransport is closed")
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def submit(self, fn: Callable[..., R], *args: object) -> "Future[R]":
        try:
            inner = self._live_pool().submit(fn, *args)
        except BrokenProcessPool as exc:  # reprolint: ok[R7] boundary translation into the WorkerCrash hierarchy, re-raised as PoolCrash
            raise translate_crash(exc) from exc
        return _translating_future(inner)

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        tasks = list(tasks)
        if self.workers <= 1 or len(tasks) <= 1:
            return [fn(task) for task in tasks]
        try:
            futures = [self.submit(fn, task) for task in tasks]
            return [fut.result() for fut in futures]
        except WorkerCrash:
            self.recycle()
            # Deterministic fallback: the whole batch re-runs in-process.
            return [fn(task) for task in tasks]

    def recycle(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def close(self) -> None:
        if self._closed:
            return
        self.recycle()
        super().close()


def __getattr__(name: str) -> Any:
    # RemoteTransport lives in repro.runtime.remote (which imports this
    # module); the historical import path `repro.runtime.transport.
    # RemoteTransport` keeps working through this lazy re-export.
    if name == "RemoteTransport":
        from repro.runtime.remote import RemoteTransport

        return RemoteTransport
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BlobRef",
    "DEFAULT_SPILL_THRESHOLD",
    "HostLost",
    "PoolCrash",
    "PoolTransport",
    "RemoteTransport",
    "SerialTransport",
    "Transport",
    "WorkerCrash",
    "check_picklable",
    "fetch_blob",
    "resolve_workers",
    "translate_crash",
]

"""RemoteTransport: multi-host dispatch over a shared-filesystem spool.

The multi-machine seam ROADMAP reserved is now a working transport.  It
needs no broker and no wire protocol — only a directory every
participating machine can reach (one box, or an NFS mount):

```
<spool>/
  blobs/                    content-addressed published payloads
                            (``sha256-<digest>.pkl``, written once)
  tasks/new/                submitted, unclaimed task files
  tasks/claimed/<host>/     tasks a host agent has claimed (its lease)
  replies/                  one framed reply file per finished task
  hosts/<host>.json         fsynced heartbeat/lease files
```

A ``repro host`` agent process (:func:`run_host_agent`, or the CLI
subcommand) claims task files by atomic rename — exactly one claimant
can win — executes them, and writes framed, checksummed replies.  The
transport's poller thread resolves futures from the reply channel.

The robustness core is the failure machinery, not the happy path:

* **Leases.**  Each agent maintains an fsynced heartbeat file and beats
  it between tasks (never from a helper thread — a wedged task body
  *must* starve the lease).  A host is live while its lease is fresh
  and, for same-machine agents, its pid answers ``kill -0``.  SIGKILL
  is therefore detected within one poll tick locally and within
  ``lease_s`` anywhere; a wedge is detected within ``lease_s``
  everywhere.  The corollary is an operator constraint: ``lease_s``
  must exceed the longest legitimate task, or honest work is
  indistinguishable from a wedge.
* **Crash translation.**  Lease expiry, agent death, and reply-channel
  corruption all surface as :class:`~repro.runtime.transport.HostLost`
  — a member of the :class:`~repro.runtime.transport.WorkerCrash`
  hierarchy — on the affected futures, so ``supervise()``'s
  quarantine/refund/re-run-solo protocol and ``RetryPolicy`` backoff
  apply across machine boundaries unchanged.
* **Orphan reassignment.**  :meth:`RemoteTransport.recycle` re-scans
  the live-host set and moves tasks claimed by dead hosts back into
  ``tasks/new/`` when their futures are still pending, so surviving
  agents pick the work up.
* **Degradation.**  When the live-host set drops below ``min_hosts``
  (checked at every recycle, and when submitted work sits unclaimed
  past ``claim_timeout_s`` with no live hosts), the transport degrades
  to a local :class:`~repro.runtime.transport.PoolTransport` — pending
  unclaimed work is re-dispatched, and the switch is recorded as a
  structured :class:`DegradationEvent` (mirroring the GAP ladder's)
  in :attr:`RemoteTransport.degradation_events`.  ``degrade="fail"``
  turns the floor into a hard error instead.

``publish`` ships each blob once into the content-addressed shared
store; the ``(shard id, delta seq)`` keying of the shard layer means an
epoch ships only its deltas' worth of bytes, and per-blob SHA-256
checksums are verified by ``fetch_blob`` on every host before
unpickling.
"""

from __future__ import annotations

import json
import os
import pickle
import struct
import threading
import time
import warnings
import zlib
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    TypeVar,
    Union,
)

from repro.exceptions import ConfigurationError
from repro.runtime.transport import (
    HostLost,
    PoolTransport,
    Transport,
    WorkerCrash,
    check_picklable,
)

T = TypeVar("T")
R = TypeVar("R")

#: Frame header for task and reply files: magic, payload length, CRC32.
_FRAME_MAGIC = b"RSP1"
_FRAME_HEAD = struct.Struct("<4sII")


def _frame(payload: bytes) -> bytes:
    return _FRAME_HEAD.pack(_FRAME_MAGIC, len(payload), zlib.crc32(payload)) + payload


def _unframe(raw: bytes) -> bytes:
    """Decode one frame; raises ``ValueError`` on any corruption."""
    if len(raw) < _FRAME_HEAD.size:
        raise ValueError("frame shorter than its header")
    magic, length, crc = _FRAME_HEAD.unpack_from(raw)
    if magic != _FRAME_MAGIC:
        raise ValueError(f"bad frame magic {magic!r}")
    payload = raw[_FRAME_HEAD.size : _FRAME_HEAD.size + length]
    if len(payload) != length:
        raise ValueError(f"frame truncated: {len(payload)} of {length} bytes")
    if zlib.crc32(payload) != crc:
        raise ValueError("frame payload failed its CRC32")
    return payload


def _write_atomic(path: str, data: bytes, *, fsync: bool = True) -> None:
    """Write ``data`` so readers only ever observe a complete file."""
    tmp = f"{path}.tmp-{os.getpid()}-{threading.get_ident():x}"
    with open(tmp, "wb") as fh:
        fh.write(data)
        if fsync:
            fh.flush()
            os.fsync(fh.fileno())
    os.replace(tmp, path)


def _spool_dirs(spool: str) -> Dict[str, str]:
    return {
        "blobs": os.path.join(spool, "blobs"),
        "new": os.path.join(spool, "tasks", "new"),
        "claimed": os.path.join(spool, "tasks", "claimed"),
        "replies": os.path.join(spool, "replies"),
        "hosts": os.path.join(spool, "hosts"),
    }


def _ensure_spool(spool: str) -> Dict[str, str]:
    dirs = _spool_dirs(spool)
    for path in dirs.values():
        os.makedirs(path, exist_ok=True)
    return dirs


def _picklable_error(exc: BaseException) -> BaseException:
    """The exception as it will cross the reply channel: itself when it
    pickles, a faithful ``RuntimeError`` stand-in when it does not."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:  # reprolint: ok[R7] pickling probe — any __reduce__ error means "unpicklable", answered by the stand-in
        stand_in = RuntimeError(f"{type(exc).__name__}: {exc}")
        return stand_in


@dataclass(frozen=True)
class DegradationEvent:
    """A structured record of one degradation decision, mirroring the
    GAP ladder's event shape (`repro.gap.ladder.DegradationEvent`)."""

    #: The substrate the caller asked for (``"remote"``).
    requested: str
    #: The substrate actually used from this point (``"pool"``).
    used: str
    #: Machine-readable cause: ``"host-floor"`` or ``"unclaimed-timeout"``.
    reason: str
    #: Human-readable specifics (live host count, floor, timeout).
    detail: str = ""


@dataclass
class _Pending:
    """Caller-side state for one dispatched task."""

    future: "Future[Any]"
    fn: Callable[..., Any]
    args: Tuple[Any, ...]
    submitted_at: float
    #: Host id that claimed the task, once known.
    host: Optional[str] = None


class RemoteTransport(Transport):
    """Multi-host execution over a shared-filesystem spool directory.

    Parameters
    ----------
    spool:
        The shared directory (created if missing).  Every host agent
        serving this transport must be started on the same path.
    lease_s:
        Heartbeat lease duration.  A host whose lease file has not been
        renewed for this long is considered lost; must exceed the
        longest legitimate task body.
    poll_interval_s:
        The poller's scan cadence (reply pickup, liveness checks).
    min_hosts:
        The live-host floor.  Dropping below it (checked at every
        :meth:`recycle`) triggers the degradation policy.
    degrade:
        ``"pool"`` (default) falls back to a local
        :class:`~repro.runtime.transport.PoolTransport`; ``"fail"``
        raises/fails futures with :class:`~repro.runtime.transport.
        HostLost` instead.
    fallback_workers:
        Worker count for the degradation pool (default: one per CPU).
    claim_timeout_s:
        How long submitted work may sit unclaimed with *no* live hosts
        before the degradation policy fires.  Defaults to
        ``4 * lease_s``; ``None`` keeps the default.
    """

    colocated = False

    def __init__(
        self,
        spool: Union[str, os.PathLike],
        *,
        lease_s: float = 5.0,
        poll_interval_s: float = 0.05,
        min_hosts: int = 1,
        degrade: str = "pool",
        fallback_workers: Optional[int] = None,
        claim_timeout_s: Optional[float] = None,
        spill_dir: Optional[Union[str, os.PathLike]] = None,
        spill_threshold: Optional[int] = None,
    ) -> None:
        if lease_s <= 0:
            raise ConfigurationError(f"lease_s must be positive, got {lease_s}")
        if min_hosts < 0:
            raise ConfigurationError(f"min_hosts must be >= 0, got {min_hosts}")
        if degrade not in ("pool", "fail"):
            raise ConfigurationError(
                f"degrade must be 'pool' or 'fail', got {degrade!r}"
            )
        self.spool = os.fspath(spool)
        self._dirs = _ensure_spool(self.spool)
        super().__init__(spill_dir=spill_dir, spill_threshold=spill_threshold)
        self.lease_s = lease_s
        self.poll_interval_s = poll_interval_s
        self.min_hosts = min_hosts
        self.degrade = degrade
        self.fallback_workers = fallback_workers
        self.claim_timeout_s = (
            4.0 * lease_s if claim_timeout_s is None else claim_timeout_s
        )
        #: Structured log of degradation decisions, append-only.
        self.degradation_events: List[DegradationEvent] = []
        self._prefix = f"t{os.getpid():x}-{id(self):x}"
        self._serial = 0
        self._pending: Dict[str, _Pending] = {}
        self._lock = threading.Lock()
        self._live_hosts: Dict[str, dict] = {}
        self._degraded: Optional[PoolTransport] = None
        self._stop = threading.Event()
        self._poller = threading.Thread(
            target=self._poll_loop, name="repro-remote-poller", daemon=True
        )
        self._poller.start()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def workers(self) -> int:  # type: ignore[override]
        """Total execution slots across live hosts (the degradation
        pool's width once degraded); never below 1 so supervision always
        schedules."""
        if self._degraded is not None:
            return self._degraded.workers
        with self._lock:
            slots = sum(
                int(info.get("slots", 1)) for info in self._live_hosts.values()
            )
        return max(1, slots)

    @property
    def degraded(self) -> bool:
        """Whether the transport has fallen back to a local pool."""
        return self._degraded is not None

    def live_hosts(self) -> List[str]:
        """Ids of hosts considered live at the last liveness scan."""
        with self._lock:
            return sorted(self._live_hosts)

    def wait_for_hosts(self, count: int, timeout_s: float = 30.0) -> List[str]:
        """Block until ``count`` hosts are live; raises on timeout."""
        deadline = time.monotonic() + timeout_s
        while True:
            self._refresh_hosts()
            hosts = self.live_hosts()
            if len(hosts) >= count:
                return hosts
            if time.monotonic() >= deadline:
                raise ConfigurationError(
                    f"waited {timeout_s}s for {count} live host agent(s) on "
                    f"{self.spool!r}, found {len(hosts)}"
                )
            time.sleep(min(self.poll_interval_s, 0.05))

    # ------------------------------------------------------------------ #
    # Blob store: content-addressed shared spill
    # ------------------------------------------------------------------ #
    def _spill_blob(self, serial: int, digest: str, payload: bytes) -> str:
        """Ship one oversized publication into the shared store.

        Content-addressed by SHA-256, so identical payloads (however
        many transports publish them) are written once; the write is
        atomic so an agent never reads a torn blob, and ``fetch_blob``
        re-verifies the digest end to end.
        """
        path = os.path.join(self._dirs["blobs"], f"sha256-{digest}.pkl")
        if not os.path.exists(path):
            _write_atomic(path, payload)
        return path

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def submit(self, fn: Callable[..., R], *args: object) -> "Future[R]":
        if self._closed:
            raise ConfigurationError("RemoteTransport is closed")
        if self._degraded is not None:
            return self._degraded.submit(fn, *args)
        with self._lock:
            task_id = f"{self._prefix}-{self._serial:08d}"
            self._serial += 1
        try:
            payload = pickle.dumps(
                {"id": task_id, "fn": fn, "args": args},
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        except Exception:
            # Surface the standard, named picklability error rather
            # than a raw pickle traceback from inside the spool write.
            check_picklable(fn, "task function")
            check_picklable(args, "task arguments")
            raise
        fut: "Future[R]" = Future()
        with self._lock:
            self._pending[task_id] = _Pending(
                future=fut, fn=fn, args=tuple(args), submitted_at=time.monotonic()
            )
        _write_atomic(
            os.path.join(self._dirs["new"], f"{task_id}.task"), _frame(payload)
        )
        return fut

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        tasks = list(tasks)
        if not tasks:
            return []
        if self._degraded is not None:
            return self._degraded.map(fn, tasks)
        try:
            futures = [self.submit(fn, task) for task in tasks]
            return [fut.result() for fut in futures]
        except WorkerCrash:
            self.recycle()
            # Deterministic fallback: the whole batch re-runs in-process
            # (the same contract PoolTransport.map keeps).
            return [fn(task) for task in tasks]

    # ------------------------------------------------------------------ #
    # Failure machinery
    # ------------------------------------------------------------------ #
    def recycle(self) -> None:
        """Re-establish the worker set after a crash signal.

        Re-scans host liveness *now*, moves tasks claimed by dead hosts
        back into ``tasks/new/`` when their futures are still pending
        (surviving agents pick them up), clears claimed leftovers with
        no pending future, and applies the degradation policy if the
        live-host set is below ``min_hosts``.
        """
        if self._closed or self._degraded is not None:
            if self._degraded is not None:
                self._degraded.recycle()
            return
        self._refresh_hosts()
        self._reassign_orphans()
        live = self.live_hosts()
        if len(live) < self.min_hosts:
            self._apply_degradation(
                reason="host-floor",
                detail=(
                    f"{len(live)} live host(s) after recycle, floor is "
                    f"{self.min_hosts}"
                ),
            )

    def _refresh_hosts(self) -> None:
        """Rebuild the live-host map from the lease files."""
        now = time.time()
        live: Dict[str, dict] = {}
        try:
            entries = sorted(os.listdir(self._dirs["hosts"]))
        except OSError:
            entries = []
        for entry in entries:
            if not entry.endswith(".json"):
                continue
            path = os.path.join(self._dirs["hosts"], entry)
            try:
                stamp = os.stat(path).st_mtime
                with open(path, "r", encoding="utf-8") as fh:
                    info = json.load(fh)
            except (OSError, json.JSONDecodeError):
                continue
            if now - stamp > self.lease_s:
                continue  # stale lease: wedged or silently gone
            if not self._pid_alive(info):
                continue  # same-machine agent whose process is gone
            live[entry[: -len(".json")]] = info
        with self._lock:
            self._live_hosts = live

    @staticmethod
    def _pid_alive(info: dict) -> bool:
        """Same-machine pid probe; cross-machine leases pass by default."""
        if info.get("node") != os.uname().nodename:
            return True
        pid = info.get("pid")
        if not isinstance(pid, int):
            return True
        try:
            os.kill(pid, 0)
        except OSError:
            return False
        return True

    def _reassign_orphans(self) -> None:
        """Requeue dead hosts' claimed tasks whose futures still wait."""
        with self._lock:
            live = set(self._live_hosts)
        try:
            host_dirs = sorted(os.listdir(self._dirs["claimed"]))
        except OSError:
            return
        for host in host_dirs:
            if host in live:
                continue
            host_dir = os.path.join(self._dirs["claimed"], host)
            try:
                names = sorted(os.listdir(host_dir))
            except OSError:
                continue
            for name in names:
                task_id = name[: -len(".task")] if name.endswith(".task") else name
                src = os.path.join(host_dir, name)
                with self._lock:
                    entry = self._pending.get(task_id)
                    pending = entry is not None and not entry.future.done()
                if pending:
                    try:
                        os.rename(src, os.path.join(self._dirs["new"], name))
                    except OSError:
                        continue  # the host raced back or another caller won
                else:
                    try:
                        os.unlink(src)
                    except OSError:
                        continue

    def _fail_host_tasks(self, host: str) -> None:
        """Translate one lost host into ``HostLost`` on its claimed tasks."""
        host_dir = os.path.join(self._dirs["claimed"], host)
        try:
            names = sorted(os.listdir(host_dir))
        except OSError:
            return
        for name in names:
            if not name.endswith(".task"):
                continue
            task_id = name[: -len(".task")]
            with self._lock:
                entry = self._pending.pop(task_id, None)
            try:
                os.unlink(os.path.join(host_dir, name))
            except OSError:
                pass
            if entry is not None and not entry.future.done():
                entry.future.set_exception(
                    HostLost(
                        f"host {host!r} was lost (lease expired or agent "
                        f"died) while running task {task_id}"
                    )
                )

    def _apply_degradation(self, *, reason: str, detail: str) -> None:
        """Fall back below the live-host floor, per the configured policy."""
        if self.degrade == "fail":
            event = DegradationEvent(
                requested="remote", used="error", reason=reason, detail=detail
            )
            self.degradation_events.append(event)
            self._fail_pending(
                HostLost(f"remote execution unavailable ({reason}): {detail}")
            )
            raise HostLost(
                f"remote execution unavailable ({reason}): {detail}; "
                f"degrade='fail' forbids the pool fallback"
            )
        event = DegradationEvent(
            requested="remote", used="pool", reason=reason, detail=detail
        )
        self.degradation_events.append(event)
        warnings.warn(
            f"RemoteTransport degrading to a local PoolTransport "
            f"({reason}): {detail}",
            RuntimeWarning,
            stacklevel=3,
        )
        pool = PoolTransport(
            workers=(
                self.fallback_workers if self.fallback_workers is not None else 0
            ),
            spill_threshold=self.spill_threshold,
        )
        self._degraded = pool
        # Re-dispatch everything still waiting: unclaimed task files are
        # removed from the spool, and each pending future is bridged to
        # a pool future for the same (fn, args).
        with self._lock:
            waiting = [
                (task_id, entry)
                for task_id, entry in self._pending.items()
                if not entry.future.done()
            ]
            self._pending.clear()
        for task_id, entry in waiting:
            try:
                os.unlink(os.path.join(self._dirs["new"], f"{task_id}.task"))
            except OSError:
                pass
            self._bridge_to_pool(pool, entry)

    @staticmethod
    def _bridge_to_pool(pool: PoolTransport, entry: _Pending) -> None:
        outer = entry.future

        def _done(inner: "Future[Any]") -> None:
            if outer.done():  # pragma: no cover - reply raced the bridge
                return
            exc = inner.exception()
            if exc is not None:
                outer.set_exception(exc)
            else:
                outer.set_result(inner.result())

        pool.submit(entry.fn, *entry.args).add_done_callback(_done)

    def _fail_pending(self, exc: BaseException) -> None:
        with self._lock:
            waiting = [e for e in self._pending.values() if not e.future.done()]
            self._pending.clear()
        for entry in waiting:
            entry.future.set_exception(exc)

    # ------------------------------------------------------------------ #
    # The poller
    # ------------------------------------------------------------------ #
    def _poll_loop(self) -> None:
        while not self._stop.wait(self.poll_interval_s):
            try:
                self._poll_once()
            except Exception as exc:  # pragma: no cover - defensive
                warnings.warn(
                    f"RemoteTransport poller error (continuing): {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )

    def _poll_once(self) -> None:
        self._consume_replies()
        if self._degraded is not None:
            return
        self._refresh_hosts()
        with self._lock:
            live_now = set(self._live_hosts)
            has_pending = any(
                not e.future.done() for e in self._pending.values()
            )
        if not has_pending:
            return
        # Any claimed directory of a non-live host may hold our tasks.
        # The cached live set can lag an agent that *just* wrote its
        # first lease, so each suspect is re-verified against its lease
        # file at fail time — never from the cache.
        try:
            claim_hosts = sorted(os.listdir(self._dirs["claimed"]))
        except OSError:
            claim_hosts = []
        for host in claim_hosts:
            if host not in live_now and self._host_is_dead(host):
                self._fail_host_tasks(host)
        self._check_claim_timeout(live_now)

    def _host_is_dead(self, host: str) -> bool:
        """Authoritative single-host liveness read (no cache)."""
        path = os.path.join(self._dirs["hosts"], f"{host}.json")
        try:
            stamp = os.stat(path).st_mtime
            with open(path, "r", encoding="utf-8") as fh:
                info = json.load(fh)
        except (OSError, json.JSONDecodeError):
            # No readable lease: an agent always leases before claiming
            # and requeues on clean exit, so claimed files without a
            # lease mean a crashed agent.
            return True
        if time.time() - stamp > self.lease_s:
            return True
        return not self._pid_alive(info)

    def _check_claim_timeout(self, live_now: Set[str]) -> None:
        if live_now or self.claim_timeout_s is None:
            return
        now = time.monotonic()
        with self._lock:
            overdue = [
                e
                for e in self._pending.values()
                if not e.future.done()
                and now - e.submitted_at > self.claim_timeout_s
            ]
        if overdue:
            self._apply_degradation(
                reason="unclaimed-timeout",
                detail=(
                    f"{len(overdue)} task(s) unclaimed for "
                    f"{self.claim_timeout_s}s with no live hosts"
                ),
            )

    def _consume_replies(self) -> None:
        try:
            names = sorted(os.listdir(self._dirs["replies"]))
        except OSError:
            return
        for name in names:
            if not name.endswith(".reply"):
                continue
            task_id = name[: -len(".reply")]
            if not task_id.startswith(self._prefix):
                continue  # another transport's traffic on a shared spool
            path = os.path.join(self._dirs["replies"], name)
            with self._lock:
                entry = self._pending.pop(task_id, None)
            try:
                with open(path, "rb") as fh:
                    raw = fh.read()
                reply = pickle.loads(_unframe(raw))
                if not isinstance(reply, dict) or reply.get("id") != task_id:
                    raise ValueError("reply names the wrong task")
            except Exception as exc:
                if entry is not None and not entry.future.done():
                    entry.future.set_exception(
                        HostLost(
                            f"reply channel for task {task_id} is corrupt "
                            f"({exc}); treating the host as lost"
                        )
                    )
                self._unlink_quiet(path)
                continue
            self._unlink_quiet(path)
            if entry is None or entry.future.done():
                continue
            if reply.get("ok"):
                entry.future.set_result(reply.get("value"))
            else:
                error = reply.get("value")
                if not isinstance(error, BaseException):  # pragma: no cover
                    error = RuntimeError(f"malformed error reply: {error!r}")
                entry.future.set_exception(error)

    @staticmethod
    def _unlink_quiet(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        if self._closed:
            return
        self._stop.set()
        self._poller.join(timeout=5.0)
        # Withdraw our unclaimed work and unstick any remaining waiters.
        with self._lock:
            pending_ids = list(self._pending)
        for task_id in pending_ids:
            self._unlink_quiet(
                os.path.join(self._dirs["new"], f"{task_id}.task")
            )
        self._fail_pending(
            HostLost("RemoteTransport closed with task(s) still in flight")
        )
        if self._degraded is not None:
            self._degraded.close()
            self._degraded = None
        super().close()


# ---------------------------------------------------------------------- #
# The host agent
# ---------------------------------------------------------------------- #
@dataclass
class HostAgentStats:
    """What one :func:`run_host_agent` loop did before exiting."""

    host_id: str
    executed: int = 0
    failed: int = 0
    requeued_on_start: int = 0
    exit_reason: str = ""
    #: Task ids executed, in claim order (diagnostic).
    task_ids: List[str] = field(default_factory=list)


def _beat(path: str, info: dict) -> None:
    """Renew one lease file atomically, fsynced."""
    payload = json.dumps(info, sort_keys=True).encode("utf-8")
    _write_atomic(path, payload)


def run_host_agent(
    spool: Union[str, os.PathLike],
    *,
    host_id: Optional[str] = None,
    lease_s: float = 5.0,
    poll_interval_s: float = 0.05,
    idle_exit_s: Optional[float] = None,
    max_tasks: Optional[int] = None,
    slots: int = 1,
) -> HostAgentStats:
    """Serve a spool directory until stopped: the ``repro host`` loop.

    Claims task files from ``<spool>/tasks/new`` by atomic rename,
    executes them one at a time on the agent's main thread (so the
    supervisor's in-worker SIGALRM timeout arms normally), writes
    framed, CRC-checked replies, and maintains the fsynced heartbeat
    lease the transport's failure detection reads.  Heartbeats happen
    *between* tasks only — a wedged task body starves the lease, which
    is exactly how the caller detects the wedge.

    On startup, tasks left claimed by a previous incarnation of the
    same ``host_id`` (a crashed or restarted agent) are requeued.

    Parameters
    ----------
    idle_exit_s:
        Exit after this long without finding work (``None``: serve
        forever until SIGTERM/SIGINT).
    max_tasks:
        Exit after executing this many tasks (chaos tests use it to
        stop deterministically).
    slots:
        Advertised parallelism of this agent (the transport sums live
        hosts' slots into ``workers``).  The loop itself is single
        threaded; run several agents for true parallelism.
    """
    if lease_s <= 0:
        raise ConfigurationError(
            f"lease_s must be positive, got {lease_s!r}: a non-positive "
            f"lease is always expired, so every transport would treat "
            f"this agent as dead while it serves"
        )
    if poll_interval_s <= 0:
        raise ConfigurationError(
            f"poll_interval_s must be positive, got {poll_interval_s!r}"
        )
    if slots < 1:
        raise ConfigurationError(f"slots must be >= 1, got {slots!r}")
    spool = os.fspath(spool)
    dirs = _ensure_spool(spool)
    if host_id is None:
        host_id = f"h{os.uname().nodename}-{os.getpid()}"
    my_claimed = os.path.join(dirs["claimed"], host_id)
    os.makedirs(my_claimed, exist_ok=True)
    lease_path = os.path.join(dirs["hosts"], f"{host_id}.json")
    info = {
        "host": host_id,
        "node": os.uname().nodename,
        "pid": os.getpid(),
        "slots": int(slots),
    }
    stats = HostAgentStats(host_id=host_id)

    # A restarted agent requeues whatever its previous incarnation had
    # claimed but not finished.
    for name in sorted(os.listdir(my_claimed)):
        try:
            os.rename(
                os.path.join(my_claimed, name), os.path.join(dirs["new"], name)
            )
            stats.requeued_on_start += 1
        except OSError:
            pass

    beat_every = lease_s / 3.0
    last_beat = 0.0
    idle_since = time.monotonic()

    def _maybe_beat(force: bool = False) -> None:
        nonlocal last_beat  # reprolint: ok[R8] heartbeat throttle clock — agent-local liveness state, never task state
        now = time.monotonic()
        if force or now - last_beat >= beat_every:
            _beat(lease_path, info)
            last_beat = now

    try:
        _maybe_beat(force=True)
        while True:
            if max_tasks is not None and stats.executed >= max_tasks:
                stats.exit_reason = "max-tasks"
                break
            claimed = _claim_one(dirs["new"], my_claimed)
            if claimed is None:
                if (
                    idle_exit_s is not None
                    and time.monotonic() - idle_since > idle_exit_s
                ):
                    stats.exit_reason = "idle"
                    break
                _maybe_beat()
                time.sleep(poll_interval_s)
                continue
            idle_since = time.monotonic()
            _maybe_beat(force=True)  # the lease clock starts at task start
            _execute_claimed(dirs, my_claimed, claimed, host_id, stats)
            _maybe_beat(force=True)
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        stats.exit_reason = "interrupt"
    finally:
        # Requeue anything still claimed and withdraw the lease, so a
        # cleanly stopped agent never strands work or looks wedged.
        for name in sorted(os.listdir(my_claimed)):
            try:
                os.rename(
                    os.path.join(my_claimed, name),
                    os.path.join(dirs["new"], name),
                )
            except OSError:
                pass
        try:
            os.unlink(lease_path)
        except OSError:
            pass
    return stats


def _claim_one(new_dir: str, my_claimed: str) -> Optional[str]:
    """Try to claim the oldest task file; atomic rename arbitrates."""
    try:
        names = sorted(os.listdir(new_dir))
    except OSError:
        return None
    for name in names:
        if not name.endswith(".task"):
            continue
        try:
            os.rename(
                os.path.join(new_dir, name), os.path.join(my_claimed, name)
            )
        except OSError:
            continue  # another agent won the rename
        return name
    return None


def _execute_claimed(
    dirs: Dict[str, str],
    my_claimed: str,
    name: str,
    host_id: str,
    stats: HostAgentStats,
) -> None:
    task_id = name[: -len(".task")]
    path = os.path.join(my_claimed, name)
    try:
        with open(path, "rb") as fh:
            task = pickle.loads(_unframe(fh.read()))
        fn = task["fn"]
        args = task["args"]
        if task.get("id") != task_id:
            raise ValueError("task file names the wrong task")
    except Exception as exc:
        _write_reply(
            dirs,
            task_id,
            host_id,
            ok=False,
            value=RuntimeError(f"task file for {task_id} is corrupt: {exc}"),
        )
        stats.failed += 1
        _remove_quiet(path)
        return
    try:
        value: Any = fn(*args)
        ok = True
    except (KeyboardInterrupt, SystemExit):  # pragma: no cover
        raise
    except BaseException as exc:  # noqa: BLE001 - relayed to the caller
        value = _picklable_error(exc)
        ok = False
    _write_reply(dirs, task_id, host_id, ok=ok, value=value)
    stats.executed += 1
    stats.task_ids.append(task_id)
    if not ok:
        stats.failed += 1
    _remove_quiet(path)


def _write_reply(
    dirs: Dict[str, str], task_id: str, host_id: str, *, ok: bool, value: Any
) -> None:
    reply = {"id": task_id, "host": host_id, "ok": ok, "value": value}
    try:
        payload = pickle.dumps(reply, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:  # reprolint: ok[R7] pickling probe — an unpicklable result is answered with a stand-in error reply
        reply["value"] = (
            RuntimeError(f"task {task_id} result is not picklable")
            if ok
            else RuntimeError(f"task {task_id} error is not picklable")
        )
        reply["ok"] = False
        payload = pickle.dumps(reply, protocol=pickle.HIGHEST_PROTOCOL)
    _write_atomic(
        os.path.join(dirs["replies"], f"{task_id}.reply"), _frame(payload)
    )


def _remove_quiet(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


__all__ = [
    "DegradationEvent",
    "HostAgentStats",
    "RemoteTransport",
    "run_host_agent",
]

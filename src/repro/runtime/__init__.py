"""repro.runtime — the unified supervised execution substrate.

One coherent dispatch layer for everything that fans work out of the
main process: figure-sweep grids, shard interior settles, and epoch
replans.  Four pieces, composed rather than welded:

* :mod:`repro.runtime.transport` — *where* work executes.
  :class:`SerialTransport` (deterministic in-process reference),
  :class:`PoolTransport` (persistent local workers with the
  publish-once blob store), and :class:`RemoteTransport`
  (:mod:`repro.runtime.remote`): multi-host dispatch over a
  shared-filesystem spool served by ``repro host`` agents, with
  lease-based failure detection and a structured degradation path.
* :mod:`repro.runtime.supervisor` — *what* runs: per-task timeouts,
  :class:`RetryPolicy` backoff, crash quarantine with bystander refunds,
  structured :class:`TaskFailure` tombstones — over any transport.
* :mod:`repro.runtime.journal` — :class:`CheckpointJournal` durability
  (unchanged on-disk JSONL format; old journals replay bit-identically).
* :mod:`repro.runtime.executor` — the single public :class:`Runtime`
  facade consumers hold.

``repro.experiments.supervisor`` re-exports the old names with a
``DeprecationWarning``; new code imports from here.  See
``docs/runtime.md`` for the architecture and the transport seam.
"""

from repro.runtime.executor import BlobMap, Runtime
from repro.runtime.journal import CheckpointJournal, TaskKey
from repro.runtime.remote import (
    DegradationEvent,
    HostAgentStats,
    RemoteTransport,
    run_host_agent,
)
from repro.runtime.supervisor import (
    RetryPolicy,
    TaskFailure,
    supervise,
    supervised_map,
)
from repro.runtime.transport import (
    DEFAULT_SPILL_THRESHOLD,
    BlobRef,
    HostLost,
    PoolCrash,
    PoolTransport,
    SerialTransport,
    Transport,
    WorkerCrash,
    check_picklable,
    fetch_blob,
    resolve_workers,
    translate_crash,
)

__all__ = [
    "BlobMap",
    "BlobRef",
    "CheckpointJournal",
    "DEFAULT_SPILL_THRESHOLD",
    "DegradationEvent",
    "HostAgentStats",
    "HostLost",
    "PoolCrash",
    "PoolTransport",
    "RemoteTransport",
    "RetryPolicy",
    "Runtime",
    "SerialTransport",
    "TaskFailure",
    "TaskKey",
    "Transport",
    "WorkerCrash",
    "check_picklable",
    "fetch_blob",
    "resolve_workers",
    "run_host_agent",
    "supervise",
    "supervised_map",
    "translate_crash",
]

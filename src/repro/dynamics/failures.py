"""Cloudlet failure injection and recovery (extension).

The testbed wires every switch to at least two others "so that network data
can still be transmitted if one switch is down" (Section IV.C) — but the
paper never exercises failures. This module does: kill one or more
cloudlets, displace their cached instances, and measure how the market
recovers under two policies:

* ``"failover"`` — displaced instances re-enter greedily (posted price)
  onto the surviving cloudlets, everyone else stays put;
* ``"replan"`` — the full LCF mechanism reruns on the degraded network.

The report includes the displaced count, the recovery migrations, and the
cost before / after / recovered, so resilience can be compared across
topologies and load levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.assignment import CachingAssignment
from repro.core.lcf import lcf
from repro.exceptions import ConfigurationError
from repro.market.market import ServiceMarket
from repro.network.elements import Cloudlet

_POLICIES = ("failover", "replan")


@dataclass
class FailureReport:
    """Outcome of one failure + recovery experiment."""

    failed_cloudlets: Tuple[int, ...]
    displaced: Tuple[int, ...]
    policy: str
    cost_before: float
    cost_after: float
    recovered_placement: Dict[int, int]
    newly_rejected: Tuple[int, ...]

    @property
    def cost_increase(self) -> float:
        return self.cost_after - self.cost_before

    @property
    def displacement_rate(self) -> float:
        total = len(self.recovered_placement) + len(self.newly_rejected)
        return len(self.displaced) / total if total else 0.0


class FailureInjector:
    """Fails cloudlets of a market and recovers the assignment."""

    def __init__(self, market: ServiceMarket) -> None:
        self.market = market

    def _surviving_cloudlets(self, failed: Set[int]) -> List[Cloudlet]:
        return [
            cl for cl in self.market.network.cloudlets if cl.node_id not in failed
        ]

    def inject(
        self,
        assignment: CachingAssignment,
        failed_cloudlets: Iterable[int],
        policy: str = "failover",
        xi: float = 0.7,
    ) -> FailureReport:
        """Fail the given cloudlets and recover ``assignment``.

        The market's network object is *not* mutated; failed cloudlets are
        simply excluded from the candidate set (their capacity is gone).
        """
        if policy not in _POLICIES:
            raise ConfigurationError(f"policy must be one of {_POLICIES}")
        failed = set(failed_cloudlets)
        known = {cl.node_id for cl in self.market.network.cloudlets}
        unknown = failed - known
        if unknown:
            raise ConfigurationError(f"unknown cloudlets {sorted(unknown)}")
        if failed == known:
            raise ConfigurationError("cannot fail every cloudlet")

        cost_before = assignment.social_cost
        displaced = tuple(
            sorted(pid for pid, node in assignment.placement.items() if node in failed)
        )

        if policy == "replan":
            placement, rejected = self._replan(failed, xi)
        else:
            placement, rejected = self._failover(assignment, failed, displaced)

        after = CachingAssignment(
            market=self.market,
            placement=placement,
            rejected=frozenset(rejected),
            algorithm=f"recovered[{policy}]",
        )
        after.check_capacities()
        return FailureReport(
            failed_cloudlets=tuple(sorted(failed)),
            displaced=displaced,
            policy=policy,
            cost_before=cost_before,
            cost_after=after.social_cost,
            recovered_placement=dict(after.placement),
            newly_rejected=tuple(
                sorted(set(after.rejected) - set(assignment.rejected))
            ),
        )

    # ------------------------------------------------------------------ #
    def _failover(
        self,
        assignment: CachingAssignment,
        failed: Set[int],
        displaced: Tuple[int, ...],
    ) -> Tuple[Dict[int, int], Set[int]]:
        model = self.market.cost_model
        survivors = self._surviving_cloudlets(failed)
        placement = {
            pid: node
            for pid, node in assignment.placement.items()
            if node not in failed
        }
        rejected = set(assignment.rejected)
        loads: Dict[int, List[float]] = {cl.node_id: [0.0, 0.0] for cl in survivors}
        for pid, node in placement.items():
            provider = self.market.provider(pid)
            loads[node][0] += provider.compute_demand
            loads[node][1] += provider.bandwidth_demand

        for pid in displaced:
            provider = self.market.provider(pid)
            best_node = None
            best_cost = model.remote_cost(provider)
            for cl in survivors:
                node = cl.node_id
                if (
                    loads[node][0] + provider.compute_demand
                    > cl.compute_capacity + 1e-9
                    or loads[node][1] + provider.bandwidth_demand
                    > cl.bandwidth_capacity + 1e-9
                ):
                    continue
                cost = model.cost(provider, cl, 1)
                if cost < best_cost:
                    best_cost = cost
                    best_node = node
            if best_node is None:
                rejected.add(pid)
                continue
            placement[pid] = best_node
            loads[best_node][0] += provider.compute_demand
            loads[best_node][1] += provider.bandwidth_demand
        return placement, rejected

    def _replan(self, failed: Set[int], xi: float) -> Tuple[Dict[int, int], Set[int]]:
        """Rerun LCF with the failed cloudlets' capacity zeroed out.

        Implemented by temporarily marking the failed cloudlets as fully
        used, so no algorithm can place anything there, then restoring.
        """
        network = self.market.network
        touched = []
        try:
            for node in failed:
                cl = network.cloudlet_at(node)
                touched.append((cl, cl.compute_used, cl.bandwidth_used))
                cl.compute_used = cl.compute_capacity
                cl.bandwidth_used = cl.bandwidth_capacity
            # LCF's internal feasibility uses capacities, not usage — so we
            # instead filter through the failover path on its output.
            result = lcf(self.market, xi=xi, allow_remote=True)
            placement = dict(result.assignment.placement)
            rejected = set(result.assignment.rejected)
        finally:
            for cl, cpu, bw in touched:
                cl.compute_used = cpu
                cl.bandwidth_used = bw
        # Any placements LCF made on failed cloudlets are displaced through
        # greedy failover.
        fake = CachingAssignment(
            market=self.market,
            placement=placement,
            rejected=frozenset(rejected),
        )
        displaced = tuple(
            sorted(pid for pid, node in placement.items() if node in failed)
        )
        return self._failover(fake, failed, displaced)


__all__ = ["FailureReport", "FailureInjector"]

"""One-shot cloudlet failure injection and recovery (extension).

The testbed wires every switch to at least two others "so that network data
can still be transmitted if one switch is down" (Section IV.C) — but the
paper never exercises failures. This module does: kill one or more
cloudlets, displace their cached instances, and measure how the market
recovers under two policies:

* ``"failover"`` — displaced instances re-enter greedily (posted price)
  onto the surviving cloudlets, everyone else stays put;
* ``"replan"`` — the full LCF mechanism reruns on the degraded network.

:class:`FailureInjector` is the one-epoch counterpart of running
:class:`~repro.dynamics.simulation.DynamicMarketSimulation` with an
:class:`~repro.dynamics.outages.OutageTrace`: the outage is expressed as a
:class:`~repro.market.delta.MarketDelta` (zeroing the victims' effective
capacity through the sanctioned mutation protocol, so a cached
:class:`~repro.market.compiled.CompiledMarket` stays coherent), the
recovery policy runs on the genuinely degraded market, and a matching
recovery delta restores the nominal capacities before the report is
returned. The report includes the displaced count, the cost before /
after, and the recovered placement, so resilience can be compared across
topologies and load levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.core.assignment import CachingAssignment
from repro.core.lcf import lcf
from repro.exceptions import ConfigurationError
from repro.market.delta import MarketDelta
from repro.market.market import ServiceMarket
from repro.network.elements import Cloudlet
from repro.utils.validation import CAPACITY_EPS

_POLICIES = ("failover", "replan")


@dataclass
class FailureReport:
    """Outcome of one failure + recovery experiment."""

    failed_cloudlets: Tuple[int, ...]
    displaced: Tuple[int, ...]
    policy: str
    cost_before: float
    cost_after: float
    recovered_placement: Dict[int, int]
    newly_rejected: Tuple[int, ...]

    @property
    def cost_increase(self) -> float:
        return self.cost_after - self.cost_before

    @property
    def displacement_rate(self) -> float:
        total = len(self.recovered_placement) + len(self.newly_rejected)
        return len(self.displaced) / total if total else 0.0


class FailureInjector:
    """Fails cloudlets of a market and recovers the assignment."""

    def __init__(self, market: ServiceMarket) -> None:
        self.market = market

    def _surviving_cloudlets(self, failed: Set[int]) -> List[Cloudlet]:
        return [
            cl for cl in self.market.network.cloudlets if cl.node_id not in failed
        ]

    def inject(
        self,
        assignment: CachingAssignment,
        failed_cloudlets: Iterable[int],
        policy: str = "failover",
        xi: float = 0.7,
    ) -> FailureReport:
        """Fail the given cloudlets and recover ``assignment``.

        The outage round-trips through the mutation protocol: an outage
        delta zeroes the victims' effective capacity (patching any cached
        compiled view along the way), the recovery policy runs on the
        degraded market, and the matching recovery delta restores the
        nominal capacities — the market leaves this method exactly as it
        entered.
        """
        if policy not in _POLICIES:
            raise ConfigurationError(f"policy must be one of {_POLICIES}")
        failed = set(failed_cloudlets)
        known = {cl.node_id for cl in self.market.network.cloudlets}
        unknown = failed - known
        if unknown:
            raise ConfigurationError(f"unknown cloudlets {sorted(unknown)}")
        if failed == known:
            raise ConfigurationError("cannot fail every cloudlet")

        cost_before = assignment.social_cost
        displaced = tuple(
            sorted(pid for pid, node in assignment.placement.items() if node in failed)
        )

        down = tuple(sorted(failed))
        self.market.apply(MarketDelta(outages=down))
        try:
            if policy == "replan":
                placement, rejected = self._replan(failed, xi)
            else:
                placement, rejected = self._failover(assignment, failed, displaced)

            after = CachingAssignment(
                market=self.market,
                placement=placement,
                rejected=frozenset(rejected),
                algorithm=f"recovered[{policy}]",
            )
            # Checked while the market is still degraded, so a placement
            # that leaked onto a failed (zero-capacity) cloudlet trips it.
            after.check_capacities()
        finally:
            self.market.apply(MarketDelta(recoveries=down))
        return FailureReport(
            failed_cloudlets=down,
            displaced=displaced,
            policy=policy,
            cost_before=cost_before,
            cost_after=after.social_cost,
            recovered_placement=dict(after.placement),
            newly_rejected=tuple(
                sorted(set(after.rejected) - set(assignment.rejected))
            ),
        )

    # ------------------------------------------------------------------ #
    def _failover(
        self,
        assignment: CachingAssignment,
        failed: Set[int],
        displaced: Tuple[int, ...],
    ) -> Tuple[Dict[int, int], Set[int]]:
        model = self.market.cost_model
        survivors = self._surviving_cloudlets(failed)
        placement = {
            pid: node
            for pid, node in assignment.placement.items()
            if node not in failed
        }
        rejected = set(assignment.rejected)
        loads: Dict[int, List[float]] = {cl.node_id: [0.0, 0.0] for cl in survivors}
        for pid, node in placement.items():
            provider = self.market.provider(pid)
            loads[node][0] += provider.compute_demand
            loads[node][1] += provider.bandwidth_demand

        for pid in displaced:
            provider = self.market.provider(pid)
            best_node = None
            best_cost = model.remote_cost(provider)
            for cl in survivors:
                node = cl.node_id
                if (
                    loads[node][0] + provider.compute_demand
                    > cl.compute_capacity + CAPACITY_EPS
                    or loads[node][1] + provider.bandwidth_demand
                    > cl.bandwidth_capacity + CAPACITY_EPS
                ):
                    continue
                cost = model.cost(provider, cl, 1)
                if cost < best_cost:
                    best_cost = cost
                    best_node = node
            if best_node is None:
                rejected.add(pid)
                continue
            placement[pid] = best_node
            loads[best_node][0] += provider.compute_demand
            loads[best_node][1] += provider.bandwidth_demand
        return placement, rejected

    def _replan(self, failed: Set[int], xi: float) -> Tuple[Dict[int, int], Set[int]]:
        """Rerun LCF on the degraded market.

        The outage delta already zeroed the failed cloudlets' capacities,
        so every algorithm layer sees them as unplaceable — no usage
        bookkeeping tricks, no post-hoc filtering.
        """
        result = lcf(self.market, xi=xi, allow_remote=True)
        return dict(result.assignment.placement), set(result.assignment.rejected)


__all__ = ["FailureReport", "FailureInjector"]

"""Epoch-by-epoch simulation of a dynamic caching market.

Each epoch: the population churns, a placement policy reacts, and the epoch
is billed its social cost (Eq. 6 over the current placement) plus the
*migration cost* of every cached instance that moved — re-shipping its data
volume over the network and re-instantiating its VM. Three policies:

* ``"replan"`` — rerun the full LCF mechanism on the new population every
  epoch. Near-optimal per epoch but migrates aggressively.
* ``"incremental"`` — survivors keep their cloudlets; only arrivals choose
  (posted-price cheapest feasible, like LCF's selfish entry). Zero
  migrations, but the placement drifts away from optimal as the population
  turns over.
* ``"hysteresis"`` — hold the incremental placement until its social cost
  drifts more than ``hysteresis_threshold`` (relative) away from the cost
  recorded at the last replan, then replan once and re-anchor. The
  stability knob between the two extremes: migrations happen in bursts,
  only when staying put has become measurably bad.

The tension between the policies is the classic caching stability trade-off
the title alludes to; ``examples/dynamic_market.py`` and the dynamics
benchmark quantify it.

Epochs can also carry *cloudlet outages*: pass an
:class:`~repro.dynamics.outages.OutageTrace` and each epoch's failure and
recovery events ride the same :class:`~repro.market.delta.MarketDelta` as
the provider churn. Providers cached on a failed cloudlet are *displaced*
— their instances are destroyed (re-instantiated from the data center,
so no migration is billed) and they re-enter under a ``recovery`` policy:

* ``"failover"`` — displaced providers re-enter greedily at posted
  prices, everyone else stays put (the cheap, warm path);
* ``"replan"`` — a full (warm-started) LCF replan absorbs the outage;
* ``"hysteresis"`` — failover until the social cost drifts past
  ``hysteresis_threshold``, then one replan.

Per-epoch availability metrics (which cloudlets are down, displacement
churn, SLA violations, time-to-recover) land on the
:class:`EpochRecord`/:class:`SimulationSummary` report.

Epochs run on the mutation protocol: the simulation keeps **one** persistent
:class:`~repro.market.market.ServiceMarket` and feeds each epoch's churn to
``market.apply(MarketDelta(...))``, which patches the cached
:class:`~repro.market.compiled.CompiledMarket` in place (tombstone/append
rows) instead of recompiling; replans are *warm-started* from the previous
epoch's LCF result (survivors keep strategies, only newcomers are placed —
the GAP LP is skipped entirely). ``representation="object"`` keeps the
pre-refactor reference behaviour — a fresh market object graph every epoch —
as the differential-testing oracle: for the same policy and ``warm_start``
setting the two representations bill bit-identical costs every epoch, which
``tests/dynamics/test_delta_equivalence.py`` pins over long churn traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.lcf import LCFResult, lcf
from repro.dynamics.outages import OutageEvent, OutageTrace
from repro.game.best_response import ENGINES
from repro.game.partitioned import partitioned_best_response
from repro.dynamics.population import PopulationEvent, PopulationProcess
from repro.exceptions import ConfigurationError
from repro.market.compiled import REPRESENTATIONS
from repro.market.costs import CongestionFunction
from repro.market.delta import MarketDelta
from repro.market.market import ServiceMarket
from repro.market.pricing import Pricing
from repro.market.service import ServiceProvider
from repro.market.shard import MarketPartition, ShardLog, partition_market
from repro.network.topology import MECNetwork
from repro.utils.validation import CAPACITY_EPS, check_fraction

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.runtime import CheckpointJournal, Runtime

_POLICIES = ("replan", "incremental", "hysteresis")
_RECOVERY_POLICIES = ("failover", "replan", "hysteresis")
_SHARDING = ("none", "region")

#: Floor for the relative-drift denominator, so an anchor of zero social
#: cost (an epoch the market emptied into) cannot divide by zero.
_DRIFT_FLOOR = 1e-12


@dataclass
class EpochRecord:
    """Everything billed in one epoch."""

    epoch: int
    population: int
    arrived: int
    departed: int
    social_cost: float
    migration_cost: float
    migrations: int
    rejected: int
    #: Whether this epoch ran the full LCF replan (always true for
    #: ``"replan"``, never for ``"incremental"``, drift-dependent for
    #: ``"hysteresis"``).
    replanned: bool = False
    #: Cloudlets that went down this epoch.
    outages: Tuple[int, ...] = ()
    #: Cloudlets that came back up this epoch.
    recoveries: Tuple[int, ...] = ()
    #: Cloudlets down at the end of the epoch (after outages/recoveries).
    failed_cloudlets: Tuple[int, ...] = ()
    #: Providers whose cached instance was destroyed by an outage this
    #: epoch (they re-enter under the recovery policy).
    displaced: int = 0
    #: Displaced providers the recovery policy could not re-place at the
    #: edge this epoch — their service falls back to remote serving.
    sla_violations: int = 0
    #: Best-response moves the sharded settle committed after the policy
    #: ran (``sharding="region"`` only; zero otherwise).
    settle_moves: int = 0
    #: Whether the sharded settle certified the final placement as a
    #: global Nash equilibrium; ``None`` when sharding is off.
    equilibrium_certified: Optional[bool] = None

    @property
    def total_cost(self) -> float:
        return self.social_cost + self.migration_cost


@dataclass
class SimulationSummary:
    """Aggregates over a full run."""

    policy: str
    epochs: List[EpochRecord]
    #: Completed outage durations, one entry per cloudlet-down incident
    #: that recovered within the run (epochs from failure to recovery).
    #: Incidents still open when the run ends are not counted.
    recovery_epochs: Tuple[int, ...] = ()

    @property
    def total_cost(self) -> float:
        return sum(e.total_cost for e in self.epochs)

    @property
    def total_migration_cost(self) -> float:
        return sum(e.migration_cost for e in self.epochs)

    @property
    def total_migrations(self) -> int:
        return sum(e.migrations for e in self.epochs)

    @property
    def total_replans(self) -> int:
        return sum(1 for e in self.epochs if e.replanned)

    @property
    def total_settle_moves(self) -> int:
        """Moves committed by the sharded settle across the run."""
        return sum(e.settle_moves for e in self.epochs)

    @property
    def mean_social_cost(self) -> float:
        return float(np.mean([e.social_cost for e in self.epochs]))

    @property
    def mean_population(self) -> float:
        return float(np.mean([e.population for e in self.epochs]))

    # ------------------------------------------------------------------ #
    # Availability metrics
    # ------------------------------------------------------------------ #
    @property
    def total_displaced(self) -> int:
        """Displacement churn: provider instances destroyed by outages."""
        return sum(e.displaced for e in self.epochs)

    @property
    def total_sla_violations(self) -> int:
        """Displaced providers that fell back to remote serving."""
        return sum(e.sla_violations for e in self.epochs)

    @property
    def provider_downtime(self) -> int:
        """Provider-epochs spent rejected (served remotely, not at the
        edge) — the end-to-end availability cost of congestion *and*
        outages together."""
        return sum(e.rejected for e in self.epochs)

    @property
    def cloudlet_downtime(self) -> int:
        """Cloudlet-epochs spent failed across the run."""
        return sum(len(e.failed_cloudlets) for e in self.epochs)

    @property
    def mean_time_to_recover(self) -> float:
        """Mean epochs from cloudlet failure to recovery over completed
        incidents; ``nan`` when no incident completed."""
        if not self.recovery_epochs:
            return float("nan")
        return float(np.mean(self.recovery_epochs))


class DynamicMarketSimulation:
    """Run a placement policy over a churning provider population.

    Parameters
    ----------
    policy:
        ``"replan"``, ``"incremental"`` or ``"hysteresis"`` (see the
        module docstring).
    representation:
        ``"compiled"`` (default) keeps one persistent market whose
        compiled tables are delta-patched every epoch; ``"object"``
        rebuilds the market object graph from scratch each epoch — the
        pre-refactor reference path the differential tests compare
        against. Both bill identical costs.
    warm_start:
        Warm-start each replan from the previous replan's LCF result
        (survivors keep strategies, newcomers enter greedily, no GAP LP).
        Default on; set ``False`` for cold replans — the quality
        reference the benchmark compares against.
    hysteresis_threshold:
        Relative social-cost drift that triggers a replan under the
        ``"hysteresis"`` policy. ``0.0`` replans on any drift
        (≈ ``"replan"``); ``inf`` never re-triggers after the first
        epoch (≈ ``"incremental"``).
    outages:
        Optional :class:`~repro.dynamics.outages.OutageTrace`; stepped
        once per epoch, its failure/recovery events ride the epoch's
        :class:`~repro.market.delta.MarketDelta`.
    recovery:
        How displaced providers re-enter on epochs with new outages:
        ``"failover"`` (greedy posted-price re-entry, everyone else
        stays), ``"replan"`` (full warm LCF replan) or ``"hysteresis"``
        (failover until drift exceeds ``hysteresis_threshold``). Ignored
        when ``outages`` is ``None``.
    engine:
        The best-response engine driving each replan's selfish phase:
        ``"batch"`` (default — the batch-vectorized kernel, the fast path
        for warm-started epoch replans), ``"incremental"`` or ``"naive"``.
        All engines replay the identical move sequence, so the billed
        costs are engine-independent bit for bit.
    sharding:
        ``"none"`` (default) bills each epoch's policy output as-is;
        ``"region"`` partitions the market into transit-stub region
        shards and, after the policy runs, settles the placement to a
        certified equilibrium with
        :func:`~repro.game.partitioned.partitioned_best_response` —
        epoch churn rides the sequence-numbered
        :class:`~repro.market.shard.ShardLog` replication log alongside
        the compiled-table deltas. Requires
        ``representation="compiled"``.
    n_shards / boundary_rounds:
        Shard count for :func:`~repro.market.shard.partition_market`
        (default: one shard per cloudlet-bearing region) and the cap on
        interior/boundary reconciliation iterations per settle.
    shard_workers:
        Settle shard interiors on a :class:`~repro.runtime.Runtime`
        process pool of this size (``None``/``1`` = serial, the
        deterministic reference). Call :meth:`close` (or use the
        simulation as a context manager) to release the pool.
    shard_runtime:
        Alternatively, a caller-owned live :class:`~repro.runtime.Runtime`
        to settle on (mutually exclusive with ``shard_workers``); the
        simulation borrows it — its workers and blob store persist after
        :meth:`close`.
    shard_spool:
        Alternatively again (mutually exclusive with both), a shared
        spool directory: interiors settle on an owned
        :class:`~repro.runtime.remote.RemoteTransport` against the
        ``repro host`` agents serving that spool, shipping shard
        sub-views once per ``(shard, seq)`` into the content-addressed
        store.  Host loss surfaces through the runtime's quarantine
        machinery; when the live-host set drops below the transport's
        floor the settle degrades to a local pool and records a
        :class:`~repro.runtime.remote.DegradationEvent`.
    shard_journal:
        Optional :class:`~repro.runtime.CheckpointJournal`
        handed to the :class:`~repro.market.shard.ShardLog`: every routed
        :class:`~repro.market.shard.ShardDelta` is durably checkpointed
        under ``(seq, shard_id)`` before the epoch settles, and
        :meth:`ShardLog.replay <repro.market.shard.ShardLog.replay>`
        rebuilds the delta stream deterministically from it after a
        crash.
    """

    def __init__(
        self,
        network: MECNetwork,
        population: PopulationProcess,
        policy: str = "replan",
        xi: float = 0.7,
        pricing: Optional[Pricing] = None,
        congestion: Optional[CongestionFunction] = None,
        latency_budget_ms: Optional[float] = None,
        migration_setup_cost: float = 0.1,
        trace: Optional[Callable[[int], float]] = None,
        representation: str = "compiled",
        warm_start: bool = True,
        gap_solver: str = "shmoys_tardos",
        hysteresis_threshold: float = 0.15,
        outages: Optional[OutageTrace] = None,
        recovery: str = "failover",
        engine: str = "batch",
        sharding: str = "none",
        n_shards: Optional[int] = None,
        boundary_rounds: int = 8,
        shard_workers: Optional[int] = None,
        shard_runtime: Optional["Runtime"] = None,
        shard_spool: Optional[str] = None,
        shard_journal: Optional["CheckpointJournal"] = None,
    ) -> None:
        if policy not in _POLICIES:
            raise ConfigurationError(
                f"policy must be one of {_POLICIES}, got {policy!r}"
            )
        if sharding not in _SHARDING:
            raise ConfigurationError(
                f"sharding must be one of {_SHARDING}, got {sharding!r}"
            )
        if sharding == "region" and representation != "compiled":
            raise ConfigurationError(
                "sharding='region' runs on the compiled representation only"
            )
        if boundary_rounds < 1:
            raise ConfigurationError(
                f"boundary_rounds must be >= 1, got {boundary_rounds}"
            )
        if recovery not in _RECOVERY_POLICIES:
            raise ConfigurationError(
                f"recovery must be one of {_RECOVERY_POLICIES}, got {recovery!r}"
            )
        if representation not in REPRESENTATIONS:
            raise ConfigurationError(
                f"representation must be one of {REPRESENTATIONS}, "
                f"got {representation!r}"
            )
        if hysteresis_threshold < 0:
            raise ConfigurationError(
                f"hysteresis_threshold must be >= 0, got {hysteresis_threshold}"
            )
        if engine not in ENGINES:
            raise ConfigurationError(
                f"engine must be one of {ENGINES}, got {engine!r}"
            )
        if sum(
            arg is not None for arg in (shard_workers, shard_runtime, shard_spool)
        ) > 1:
            raise ConfigurationError(
                "pass at most one of shard_workers=, shard_runtime= or "
                "shard_spool="
            )
        check_fraction(xi, "xi")
        self.network = network
        self.population = population
        self.policy = policy
        self.xi = xi
        self.pricing = pricing if pricing is not None else Pricing()
        self.congestion = congestion
        #: Optional per-request latency budget for every epoch's market;
        #: a tight budget shrinks feasible cloudlet sets, which is what
        #: gives region sharding non-trivial shard *interiors* (providers
        #: whose settle can dispatch to shard workers or host agents).
        self.latency_budget_ms = latency_budget_ms
        self.migration_setup_cost = migration_setup_cost
        #: Optional ``epoch -> arrival rate`` profile (e.g.
        #: :class:`repro.dynamics.traces.DiurnalTrace`); when given, the
        #: population's arrival rate is retargeted before every epoch.
        self.trace = trace
        self.representation = representation
        self.warm_start = warm_start
        self.gap_solver = gap_solver
        self.hysteresis_threshold = hysteresis_threshold
        self.outages = outages
        self.recovery = recovery
        self.engine = engine
        #: Completed outage durations (epochs down per recovered incident).
        self._recovery_times: List[int] = []
        #: node -> epoch it failed, for incidents still open.
        self._down_since: Dict[int, int] = {}
        #: provider_id -> cloudlet node of the *currently cached* instance.
        self.placement: Dict[int, int] = {}
        self.rejected: Set[int] = set()
        #: The persistent delta-patched market (compiled representation
        #: only; the object arm rebuilds per epoch).
        self.market: Optional[ServiceMarket] = None
        self._last_result: Optional[LCFResult] = None
        self._anchor_cost: Optional[float] = None
        self.sharding = sharding
        self.n_shards = n_shards
        self.boundary_rounds = boundary_rounds
        self.shard_workers = shard_workers
        self.shard_spool = shard_spool
        self.shard_journal = shard_journal
        #: Borrowed caller-owned runtime (left open by :meth:`close`), as
        #: opposed to one built from ``shard_workers`` (owned, closed).
        self._borrowed_runtime = shard_runtime is not None
        self._shard_runtime: Optional["Runtime"] = shard_runtime
        #: Region partition + replication log, built lazily with the
        #: persistent market (``sharding="region"`` only).
        self._partition: Optional[MarketPartition] = None
        self._shard_log: Optional[ShardLog] = None
        #: Settle-layer cache (shard sub-views, global boundary game),
        #: keyed by the log's sequence number — cleared whenever a delta
        #: advances the tables, so entries never go stale.
        self._shard_cache: Dict[object, object] = {}

    # ------------------------------------------------------------------ #
    # Cost helpers
    # ------------------------------------------------------------------ #
    def _market(self, providers: List[ServiceProvider]) -> ServiceMarket:
        return ServiceMarket(
            self.network,
            providers,
            pricing=self.pricing,
            congestion=self.congestion,
            latency_budget_ms=self.latency_budget_ms,
        )

    def migration_cost(self, provider: ServiceProvider, old: int, new: int) -> float:
        """Cost of moving a cached instance between cloudlets: re-ship the
        full service data along the path plus a VM re-setup charge."""
        hops = self.network.hop_count(old, new)
        shipping = self.pricing.transmission_cost(provider.service.data_volume_gb, hops)
        return shipping + self.migration_setup_cost

    def _bill_migrations(
        self, market: ServiceMarket, new_placement: Dict[int, int]
    ) -> Tuple[float, int]:
        """Bill survivors whose cloudlet changed across the epoch boundary.

        Only the epoch's *net* movement is billed: a provider evicted and
        readmitted within the same epoch (e.g. shuffled by the capacity
        repair, or placed by the incremental candidate and then moved by a
        hysteresis replan) is charged exactly once, for the old -> final
        hop — and nothing at all if it ends up back where it started,
        since the instance never physically moved.
        """
        cost = 0.0
        count = 0
        for pid, node in new_placement.items():
            old = self.placement.get(pid)
            if old is not None and old != node:
                cost += self.migration_cost(market.provider(pid), old, node)
                count += 1
        return cost, count

    def _social(
        self, market: ServiceMarket, placement: Dict[int, int], rejected: Set[int]
    ) -> float:
        """Epoch social cost: Eq. (6) over the placed providers plus the
        remote-serving cost of the rejected ones (folded in id order, so
        the compiled and object arms sum identically)."""
        if self.representation == "compiled":
            cm = market.compile()
            total = cm.social_cost(placement)
            for pid in sorted(rejected):
                total += cm.remote_cost(pid)
            return total
        model = market.cost_model
        total = model.social_cost(market.providers_by_id(), placement)
        for pid in sorted(rejected):
            total += model.remote_cost(market.provider(pid))
        return total

    # ------------------------------------------------------------------ #
    # Market maintenance (the mutation protocol)
    # ------------------------------------------------------------------ #
    def _init_sharding(self, market: ServiceMarket) -> None:
        """Build the region partition and seed the replication log with
        the market's founding population (later churn arrives as deltas
        through :meth:`_apply_delta`)."""
        if self.sharding != "region" or self._partition is not None:
            return
        self._partition = partition_market(market, self.n_shards)
        self._shard_log = ShardLog(
            self._partition,
            providers=market.providers,
            journal=self.shard_journal,
        )
        if self._shard_runtime is None and self.shard_spool is not None:
            from repro.runtime import Runtime

            self._shard_runtime = Runtime(spool=self.shard_spool)
        elif (
            self._shard_runtime is None
            and self.shard_workers is not None
            and self.shard_workers > 1
        ):
            from repro.runtime import Runtime

            self._shard_runtime = Runtime(workers=self.shard_workers)

    def _apply_delta(self, delta: MarketDelta) -> None:
        """Patch the persistent market and, when sharding, append the
        delta to the replication log (advancing its sequence number and
        invalidating the settle-layer cache)."""
        assert self.market is not None
        self.market.apply(delta)
        if self._shard_log is not None:
            self._shard_log.append(delta)
            self._shard_cache.clear()

    def _advance_market(
        self, delta: MarketDelta, providers: List[ServiceProvider]
    ) -> ServiceMarket:
        """One epoch's market: delta-patch the persistent one (compiled)
        or rebuild from scratch (object, the pre-refactor reference).

        Outages still route through the protocol on the object arm: the
        fresh market gets one cumulative ``MarketDelta(outages=...)`` for
        everything currently down (and :meth:`step` recovers them again
        before the epoch ends, since the rebuilt markets share one
        network whose cloudlets must re-enter each epoch nominal).
        """
        down = self.outages.failed if self.outages is not None else ()
        if self.representation != "compiled":
            market = self._market(providers)
            if down:
                market.apply(MarketDelta(outages=down))
            return market
        if self.market is None:
            self.market = self._market(providers)
            self.market.compile()
            self._init_sharding(self.market)
            if down:
                self._apply_delta(MarketDelta(outages=down))
        else:
            self._apply_delta(delta)
        return self.market

    # ------------------------------------------------------------------ #
    # Policies
    # ------------------------------------------------------------------ #
    def _replan(self, market: ServiceMarket) -> Tuple[Dict[int, int], Set[int]]:
        warm = self._last_result if self.warm_start else None
        result = lcf(
            market,
            xi=self.xi,
            allow_remote=True,
            gap_solver=self.gap_solver,
            representation=self.representation,
            warm_start=warm,
            engine=self.engine,
        )
        self._last_result = result
        return dict(result.assignment.placement), set(result.assignment.rejected)

    def _incremental(
        self, market: ServiceMarket, arrivals: Set[int]
    ) -> Tuple[Dict[int, int], Set[int]]:
        """Keep survivors in place; arrivals enter posted-price greedily."""
        present = {p.provider_id for p in market.providers}
        placement = {
            pid: node for pid, node in self.placement.items() if pid in present
        }
        rejected = {pid for pid in self.rejected if pid in present}

        if self.representation == "compiled":
            cm = market.compile()
            loads = cm.load_matrix(placement)
            for pid in sorted(arrivals):
                row = cm.provider_row(pid)
                # Posted price sheet: congestion at its face value of one
                # occupant plus the fixed cost — the same two terms, in
                # the same order, as `model.cost(provider, cl, 1)`.
                costs = cm.shared[:, 1] + cm.fixed[row]
                costs = np.where(cm.fits_mask(row, loads), costs, np.inf)
                j = int(np.argmin(costs))
                if not costs[j] < cm.remote[row]:
                    rejected.add(pid)
                    continue
                placement[pid] = cm.cloudlet_nodes[j]
                loads[j] += cm.demand[row]
            return placement, rejected

        model = market.cost_model
        obj_loads: Dict[int, List[float]] = {
            cl.node_id: [0.0, 0.0] for cl in self.network.cloudlets
        }
        for pid, node in placement.items():
            provider = market.provider(pid)
            obj_loads[node][0] += provider.compute_demand
            obj_loads[node][1] += provider.bandwidth_demand

        for pid in sorted(arrivals):
            provider = market.provider(pid)
            best_node = None
            best_cost = model.remote_cost(provider)
            for cl in self.network.cloudlets:
                node = cl.node_id
                if (
                    obj_loads[node][0] + provider.compute_demand
                    > cl.compute_capacity + CAPACITY_EPS
                    or obj_loads[node][1] + provider.bandwidth_demand
                    > cl.bandwidth_capacity + CAPACITY_EPS
                ):
                    continue
                cost = model.cost(provider, cl, 1)  # posted price sheet
                if cost < best_cost:
                    best_cost = cost
                    best_node = node
            if best_node is None:
                rejected.add(pid)
                continue
            placement[pid] = best_node
            obj_loads[best_node][0] += provider.compute_demand
            obj_loads[best_node][1] += provider.bandwidth_demand
        return placement, rejected

    def _hysteresis(
        self, market: ServiceMarket, arrivals: Set[int]
    ) -> Tuple[Dict[int, int], Set[int], bool]:
        """Stick with the incremental candidate until its social cost
        drifts past the threshold, then replan and re-anchor."""
        placement, rejected = self._incremental(market, arrivals)
        candidate_cost = self._social(market, placement, rejected)
        if self._anchor_cost is None:
            drift = float("inf")
        else:
            drift = abs(candidate_cost - self._anchor_cost) / max(
                abs(self._anchor_cost), _DRIFT_FLOOR
            )
        if drift > self.hysteresis_threshold:
            placement, rejected = self._replan(market)
            self._anchor_cost = self._social(market, placement, rejected)
            return placement, rejected, True
        return placement, rejected, False

    # ------------------------------------------------------------------ #
    # The epoch loop
    # ------------------------------------------------------------------ #
    def step(self) -> EpochRecord:
        """Advance one epoch and bill it."""
        if self.trace is not None:
            next_epoch = self.population._epoch + 1
            self.population.arrival_rate = float(self.trace(next_epoch))
        event: PopulationEvent = self.population.step()
        outage_event: Optional[OutageEvent] = (
            self.outages.step() if self.outages is not None else None
        )
        out_nodes = outage_event.outages if outage_event is not None else ()
        rec_nodes = outage_event.recoveries if outage_event is not None else ()
        for node in out_nodes:
            self._down_since[node] = event.epoch
        for node in rec_nodes:
            self._recovery_times.append(event.epoch - self._down_since.pop(node))
        failed_now = (
            set(self.outages.failed) if self.outages is not None else set()
        )

        providers = self.population.present
        by_id = {p.provider_id: p for p in providers}
        delta = MarketDelta(
            arrivals=tuple(by_id[pid] for pid in sorted(event.arrived)),
            departures=tuple(event.departed),
            outages=out_nodes,
            recoveries=rec_nodes,
        )

        if not providers:
            # The market died out this epoch: keep the persistent market's
            # tables in sync (it may refill later) and reset the warm state
            # — the next population starts a fresh history.
            if self.market is not None and self.representation == "compiled":
                self._apply_delta(delta)
            self.placement = {}
            self.rejected = set()
            self._last_result = None
            self._anchor_cost = None
            return EpochRecord(
                epoch=event.epoch,
                population=0,
                arrived=len(event.arrived),
                departed=len(event.departed),
                social_cost=0.0,
                migration_cost=0.0,
                migrations=0,
                rejected=0,
                outages=out_nodes,
                recoveries=rec_nodes,
                failed_cloudlets=tuple(sorted(failed_now)),
            )

        market = self._advance_market(delta, providers)

        # Outage displacement: instances cached on a failed cloudlet are
        # destroyed. The provider re-enters through the recovery policy
        # below as if newly arrived (re-instantiated from the data
        # center), so no old->new migration is billed for them.
        displaced = {
            pid for pid, node in self.placement.items() if node in failed_now
        }
        if displaced:
            self.placement = {
                pid: node
                for pid, node in self.placement.items()
                if pid not in displaced
            }

        replanned = False
        # Anyone present but unplaced must choose now — epoch-1 initial
        # population included, displaced providers included, not just this
        # epoch's arrivals.
        unplaced = {
            p.provider_id
            for p in providers
            if p.provider_id not in self.placement
            and p.provider_id not in self.rejected
        }
        if displaced:
            # An outage epoch: the recovery policy decides how the market
            # absorbs the displacement.
            if self.recovery == "replan":
                new_placement, new_rejected = self._replan(market)
                replanned = True
                self._anchor_cost = self._social(
                    market, new_placement, new_rejected
                )
            elif self.recovery == "failover":
                new_placement, new_rejected = self._incremental(market, unplaced)
            else:
                new_placement, new_rejected, replanned = self._hysteresis(
                    market, unplaced
                )
        elif self.policy == "replan":
            new_placement, new_rejected = self._replan(market)
            replanned = True
        elif self.policy == "incremental":
            new_placement, new_rejected = self._incremental(market, unplaced)
        else:
            new_placement, new_rejected, replanned = self._hysteresis(
                market, unplaced
            )

        settle_moves = 0
        certified: Optional[bool] = None
        if self._partition is not None:
            new_placement, settle_moves, certified = self._settle_sharded(
                market, new_placement
            )

        migration_cost, migrations = self._bill_migrations(market, new_placement)
        self.placement = new_placement
        self.rejected = new_rejected

        social = self._social(market, new_placement, new_rejected)
        if self.representation != "compiled" and market.failed_cloudlets:
            # The object arm rebuilds its market every epoch but shares
            # one network: hand the borrowed cloudlets back at nominal
            # capacity before the next rebuild saves 0.0 as "nominal".
            market.apply(MarketDelta(recoveries=market.failed_cloudlets))
        return EpochRecord(
            epoch=event.epoch,
            population=len(providers),
            arrived=len(event.arrived),
            departed=len(event.departed),
            social_cost=social,
            migration_cost=migration_cost,
            migrations=migrations,
            rejected=len(new_rejected),
            replanned=replanned,
            outages=out_nodes,
            recoveries=rec_nodes,
            failed_cloudlets=tuple(sorted(failed_now)),
            displaced=len(displaced),
            sla_violations=len(displaced & new_rejected),
            settle_moves=settle_moves,
            equilibrium_certified=certified,
        )

    def _settle_sharded(
        self, market: ServiceMarket, placement: Dict[int, int]
    ) -> Tuple[Dict[int, int], int, bool]:
        """Settle the policy's placement to a partitioned equilibrium.

        The log's sequence number keys the settle-layer cache and the
        worker blob publications, so a shard whose tables have not moved
        since the last epoch is neither re-sliced nor re-pickled.
        """
        assert self._shard_log is not None
        result = partitioned_best_response(
            market,
            placement,
            partition=self._partition,
            boundary_rounds=self.boundary_rounds,
            runtime=self._shard_runtime,
            blob_seq=self._shard_log.seq,
            cache=self._shard_cache,
        )
        return dict(result.profile), result.moves, result.certified

    def run(self, epochs: int) -> SimulationSummary:
        """Run ``epochs`` epochs and return the billing summary."""
        if epochs < 1:
            raise ConfigurationError(f"epochs must be >= 1, got {epochs}")
        records = [self.step() for _ in range(epochs)]
        return SimulationSummary(
            policy=self.policy,
            epochs=records,
            recovery_epochs=tuple(self._recovery_times),
        )

    def close(self) -> None:
        """Release an owned shard runtime (a borrowed ``shard_runtime=``
        stays open for its owner; serial settles are a no-op)."""
        if self._shard_runtime is not None and not self._borrowed_runtime:
            self._shard_runtime.close()
            self._shard_runtime = None

    def __enter__(self) -> "DynamicMarketSimulation":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


__all__ = ["EpochRecord", "SimulationSummary", "DynamicMarketSimulation"]

"""Epoch-by-epoch simulation of a dynamic caching market.

Each epoch: the population churns, a placement policy reacts, and the epoch
is billed its social cost (Eq. 6 over the current placement) plus the
*migration cost* of every cached instance that moved — re-shipping its data
volume over the network and re-instantiating its VM. Two policies:

* ``"replan"`` — rerun the full LCF mechanism on the new population every
  epoch. Near-optimal per epoch but migrates aggressively.
* ``"incremental"`` — survivors keep their cloudlets; only arrivals choose
  (posted-price cheapest feasible, like LCF's selfish entry). Zero
  migrations, but the placement drifts away from optimal as the population
  turns over.

The tension between the two is the classic caching stability trade-off the
title alludes to; ``examples/dynamic_market.py`` and the dynamics benchmark
quantify it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.lcf import lcf
from repro.dynamics.population import PopulationEvent, PopulationProcess
from repro.exceptions import ConfigurationError
from repro.market.costs import CongestionFunction, CostModel
from repro.market.market import ServiceMarket
from repro.market.pricing import Pricing
from repro.market.service import ServiceProvider
from repro.network.topology import MECNetwork
from repro.utils.validation import check_fraction

_POLICIES = ("replan", "incremental")


@dataclass
class EpochRecord:
    """Everything billed in one epoch."""

    epoch: int
    population: int
    arrived: int
    departed: int
    social_cost: float
    migration_cost: float
    migrations: int
    rejected: int

    @property
    def total_cost(self) -> float:
        return self.social_cost + self.migration_cost


@dataclass
class SimulationSummary:
    """Aggregates over a full run."""

    policy: str
    epochs: List[EpochRecord]

    @property
    def total_cost(self) -> float:
        return sum(e.total_cost for e in self.epochs)

    @property
    def total_migration_cost(self) -> float:
        return sum(e.migration_cost for e in self.epochs)

    @property
    def total_migrations(self) -> int:
        return sum(e.migrations for e in self.epochs)

    @property
    def mean_social_cost(self) -> float:
        return float(np.mean([e.social_cost for e in self.epochs]))

    @property
    def mean_population(self) -> float:
        return float(np.mean([e.population for e in self.epochs]))


class DynamicMarketSimulation:
    """Run a placement policy over a churning provider population."""

    def __init__(
        self,
        network: MECNetwork,
        population: PopulationProcess,
        policy: str = "replan",
        xi: float = 0.7,
        pricing: Optional[Pricing] = None,
        congestion: Optional[CongestionFunction] = None,
        migration_setup_cost: float = 0.1,
        trace: Optional[Callable[[int], float]] = None,
    ) -> None:
        if policy not in _POLICIES:
            raise ConfigurationError(
                f"policy must be one of {_POLICIES}, got {policy!r}"
            )
        check_fraction(xi, "xi")
        self.network = network
        self.population = population
        self.policy = policy
        self.xi = xi
        self.pricing = pricing if pricing is not None else Pricing()
        self.congestion = congestion
        self.migration_setup_cost = migration_setup_cost
        #: Optional ``epoch -> arrival rate`` profile (e.g.
        #: :class:`repro.dynamics.traces.DiurnalTrace`); when given, the
        #: population's arrival rate is retargeted before every epoch.
        self.trace = trace
        #: provider_id -> cloudlet node of the *currently cached* instance.
        self.placement: Dict[int, int] = {}
        self.rejected: Set[int] = set()

    # ------------------------------------------------------------------ #
    # Cost helpers
    # ------------------------------------------------------------------ #
    def _market(self, providers: List[ServiceProvider]) -> ServiceMarket:
        return ServiceMarket(
            self.network, providers, pricing=self.pricing, congestion=self.congestion
        )

    def migration_cost(self, provider: ServiceProvider, old: int, new: int) -> float:
        """Cost of moving a cached instance between cloudlets: re-ship the
        full service data along the path plus a VM re-setup charge."""
        hops = self.network.hop_count(old, new)
        shipping = self.pricing.transmission_cost(provider.service.data_volume_gb, hops)
        return shipping + self.migration_setup_cost

    # ------------------------------------------------------------------ #
    # Policies
    # ------------------------------------------------------------------ #
    def _replan(self, market: ServiceMarket) -> Tuple[Dict[int, int], Set[int]]:
        result = lcf(market, xi=self.xi, allow_remote=True)
        return dict(result.assignment.placement), set(result.assignment.rejected)

    def _incremental(
        self, market: ServiceMarket, arrivals: Set[int]
    ) -> Tuple[Dict[int, int], Set[int]]:
        """Keep survivors in place; arrivals enter posted-price greedily."""
        model = market.cost_model
        placement = {
            pid: node
            for pid, node in self.placement.items()
            if pid in {p.provider_id for p in market.providers}
        }
        rejected = {
            pid
            for pid in self.rejected
            if pid in {p.provider_id for p in market.providers}
        }
        loads: Dict[int, List[float]] = {
            cl.node_id: [0.0, 0.0] for cl in self.network.cloudlets
        }
        for pid, node in placement.items():
            provider = market.provider(pid)
            loads[node][0] += provider.compute_demand
            loads[node][1] += provider.bandwidth_demand

        for pid in sorted(arrivals):
            provider = market.provider(pid)
            best_node = None
            best_cost = model.remote_cost(provider)
            for cl in self.network.cloudlets:
                node = cl.node_id
                if (
                    loads[node][0] + provider.compute_demand
                    > cl.compute_capacity + 1e-9
                    or loads[node][1] + provider.bandwidth_demand
                    > cl.bandwidth_capacity + 1e-9
                ):
                    continue
                cost = model.cost(provider, cl, 1)  # posted price sheet
                if cost < best_cost:
                    best_cost = cost
                    best_node = node
            if best_node is None:
                rejected.add(pid)
                continue
            placement[pid] = best_node
            loads[best_node][0] += provider.compute_demand
            loads[best_node][1] += provider.bandwidth_demand
        return placement, rejected

    # ------------------------------------------------------------------ #
    # The epoch loop
    # ------------------------------------------------------------------ #
    def step(self) -> EpochRecord:
        """Advance one epoch and bill it."""
        if self.trace is not None:
            next_epoch = self.population._epoch + 1
            self.population.arrival_rate = float(self.trace(next_epoch))
        event: PopulationEvent = self.population.step()
        providers = self.population.present
        if not providers:
            self.placement = {}
            self.rejected = set()
            return EpochRecord(
                epoch=event.epoch,
                population=0,
                arrived=len(event.arrived),
                departed=len(event.departed),
                social_cost=0.0,
                migration_cost=0.0,
                migrations=0,
                rejected=0,
            )

        market = self._market(providers)
        if self.policy == "replan":
            new_placement, new_rejected = self._replan(market)
        else:
            # Anyone present but unplaced must choose now — epoch-1 initial
            # population included, not just this epoch's arrivals.
            unplaced = {
                p.provider_id
                for p in providers
                if p.provider_id not in self.placement
                and p.provider_id not in self.rejected
            }
            new_placement, new_rejected = self._incremental(market, unplaced)

        # Migration billing: survivors whose cloudlet changed.
        migration_cost = 0.0
        migrations = 0
        for pid, node in new_placement.items():
            old = self.placement.get(pid)
            if old is not None and old != node:
                migration_cost += self.migration_cost(market.provider(pid), old, node)
                migrations += 1

        self.placement = new_placement
        self.rejected = new_rejected

        social = market.cost_model.social_cost(market.providers_by_id(), new_placement)
        social += sum(
            market.cost_model.remote_cost(market.provider(pid))
            for pid in new_rejected
        )
        return EpochRecord(
            epoch=event.epoch,
            population=len(providers),
            arrived=len(event.arrived),
            departed=len(event.departed),
            social_cost=social,
            migration_cost=migration_cost,
            migrations=migrations,
            rejected=len(new_rejected),
        )

    def run(self, epochs: int) -> SimulationSummary:
        """Run ``epochs`` epochs and return the billing summary."""
        if epochs < 1:
            raise ConfigurationError(f"epochs must be >= 1, got {epochs}")
        records = [self.step() for _ in range(epochs)]
        return SimulationSummary(policy=self.policy, epochs=records)


__all__ = ["EpochRecord", "SimulationSummary", "DynamicMarketSimulation"]

"""Dynamic service markets (extension).

The paper's services are cached *temporarily* — "the original instances are
still kept in remote data centers for later use when the cached service is
destroyed" (Section II.B) — which implies a market that evolves over time:
providers arrive, leave, and cached instances migrate. This package adds
that temporal dimension on top of the static mechanism:

* :class:`~repro.dynamics.population.PopulationProcess` — provider
  arrivals (geometric per epoch) and departures (geometric lifetimes);
* :class:`~repro.dynamics.simulation.DynamicMarketSimulation` — runs a
  caching mechanism over many epochs under the ``replan`` policy
  (recompute every epoch, paying migration costs for instances that move),
  the ``incremental`` policy (surviving placements are sticky; only
  arrivals choose, via the same posted-price entry as LCF's selfish step),
  or the ``hysteresis`` policy (sticky until the social cost drifts past a
  threshold, then replan once — stability with bounded regret);
* migration accounting: moving a cached instance re-ships its data volume
  between cloudlets and re-instantiates the VM.

Epochs mutate one persistent market through
:class:`~repro.market.delta.MarketDelta` (delta-patched compiled tables,
warm-started replans); ``representation="object"`` keeps the rebuild-
from-scratch reference path for differential testing.
"""

from repro.dynamics.population import PopulationEvent, PopulationProcess
from repro.dynamics.simulation import (
    DynamicMarketSimulation,
    EpochRecord,
    SimulationSummary,
)
from repro.dynamics.failures import FailureInjector, FailureReport
from repro.dynamics.outages import (
    CorrelatedOutageTrace,
    IndependentOutageTrace,
    OutageEvent,
    OutageTrace,
    ScheduledOutageTrace,
)
from repro.dynamics.traces import DiurnalTrace

__all__ = [
    "PopulationEvent",
    "PopulationProcess",
    "DynamicMarketSimulation",
    "EpochRecord",
    "SimulationSummary",
    "FailureInjector",
    "FailureReport",
    "DiurnalTrace",
    "OutageEvent",
    "OutageTrace",
    "IndependentOutageTrace",
    "CorrelatedOutageTrace",
    "ScheduledOutageTrace",
]

"""Seeded cloudlet outage traces (extension).

The paper's testbed wires every switch to at least two neighbours "so that
network data can still be transmitted if one switch is down" (Section IV.C)
— a redundancy claim it never exercises.  This module turns that sentence
into event streams: an :class:`OutageTrace` emits one :class:`OutageEvent`
per epoch (which cloudlets fail, which recover), and the dynamic
simulation folds those events into the same :class:`~repro.market.delta.
MarketDelta` protocol that carries provider churn, so outages flow through
the delta-patched compiled tables and warm-started replans like any other
mutation.

Three generators cover the regimes studied by online service-caching work
(Fan et al.; Chen et al., arXiv:2407.03804):

* :class:`IndependentOutageTrace` — each cloudlet fails and repairs
  independently with geometric sojourn times (mean time to failure
  ``mttf`` epochs up, mean time to repair ``mttr`` epochs down);
* :class:`CorrelatedOutageTrace` — regional events: one failure takes its
  nearest neighbours (by hop count) down with it, modelling a shared
  switch or power domain;
* :class:`ScheduledOutageTrace` — an explicit per-epoch script, used by
  the failure-injection wrapper and the differential tests.

Every trace guarantees at least ``min_survivors`` healthy cloudlets
(matching the guard in :meth:`ServiceMarket.apply
<repro.market.market.ServiceMarket.apply>`) and is a deterministic
function of its seed: two traces built with the same arguments emit
identical event streams, which is what lets the compiled/warm simulation
arm be compared bit-for-bit against the object-graph oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.network.topology import MECNetwork
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_int_at_least

__all__ = [
    "OutageEvent",
    "OutageTrace",
    "IndependentOutageTrace",
    "CorrelatedOutageTrace",
    "ScheduledOutageTrace",
]


@dataclass(frozen=True)
class OutageEvent:
    """What happened to the cloudlet fleet in one epoch.

    ``outages`` and ``recoveries`` are disjoint, sorted node-id tuples —
    exactly the shape :class:`~repro.market.delta.MarketDelta` expects.
    """

    epoch: int
    outages: Tuple[int, ...] = ()
    recoveries: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "outages", tuple(sorted(int(n) for n in self.outages))
        )
        object.__setattr__(
            self, "recoveries", tuple(sorted(int(n) for n in self.recoveries))
        )
        flapping = set(self.outages) & set(self.recoveries)
        if flapping:
            raise ConfigurationError(
                f"cloudlets {sorted(flapping)} both fail and recover in one event"
            )

    @property
    def is_quiet(self) -> bool:
        """True when nothing failed and nothing recovered."""
        return not (self.outages or self.recoveries)


class OutageTrace:
    """Base class: tracks which cloudlets are down and clips failure draws
    so at least ``min_survivors`` cloudlets stay healthy.

    Subclasses implement :meth:`_draw`, returning the failure and recovery
    *candidates* for the epoch; the base class enforces the survivor floor
    (dropping excess failure candidates in ascending node-id order, so the
    clipping itself is deterministic) and updates the down-set.
    """

    def __init__(self, network: MECNetwork, min_survivors: int = 1) -> None:
        self.nodes: Tuple[int, ...] = tuple(
            sorted(cl.node_id for cl in network.cloudlets)
        )
        if not self.nodes:
            raise ConfigurationError("outage traces need a network with cloudlets")
        check_int_at_least(min_survivors, 1, "min_survivors")
        if min_survivors > len(self.nodes):
            raise ConfigurationError(
                f"min_survivors={min_survivors} exceeds the fleet size "
                f"{len(self.nodes)}"
            )
        self.min_survivors = int(min_survivors)
        self._down: Dict[int, int] = {}  # node -> epoch it failed
        self._epoch = 0

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    @property
    def epoch(self) -> int:
        """Epochs stepped so far."""
        return self._epoch

    @property
    def failed(self) -> Tuple[int, ...]:
        """Node ids currently down, in id order."""
        return tuple(sorted(self._down))

    def downtime_start(self, node: int) -> int:
        """The epoch at which a currently-failed cloudlet went down."""
        try:
            return self._down[node]
        except KeyError:
            raise ConfigurationError(f"cloudlet {node} is not failed") from None

    # ------------------------------------------------------------------ #
    # Stepping
    # ------------------------------------------------------------------ #
    def _draw(
        self, up: Tuple[int, ...], down: Tuple[int, ...]
    ) -> Tuple[Sequence[int], Sequence[int]]:
        """Return ``(failure_candidates, recovery_candidates)`` for this
        epoch, drawn from ``up`` and ``down`` respectively."""
        raise NotImplementedError

    def step(self) -> OutageEvent:
        """Advance one epoch and return what failed and what recovered."""
        self._epoch += 1
        up = tuple(n for n in self.nodes if n not in self._down)
        down = self.failed
        fail_cand, recover_cand = self._draw(up, down)

        bad = set(fail_cand) - set(up)
        if bad:
            raise ConfigurationError(
                f"trace tried to fail cloudlets {sorted(bad)} that are not up"
            )
        bad = set(recover_cand) - set(down)
        if bad:
            raise ConfigurationError(
                f"trace tried to recover cloudlets {sorted(bad)} that are not down"
            )

        recoveries = tuple(sorted(set(int(n) for n in recover_cand)))
        # Survivor floor: after the delta, |up| - |outages| + |recoveries|
        # cloudlets are healthy.  Admit failure candidates in node-id order
        # until the floor binds.
        budget = len(up) + len(recoveries) - self.min_survivors
        outages = tuple(sorted(set(int(n) for n in fail_cand)))[: max(budget, 0)]

        for node in outages:
            self._down[node] = self._epoch
        for node in recoveries:
            del self._down[node]
        return OutageEvent(epoch=self._epoch, outages=outages, recoveries=recoveries)


class IndependentOutageTrace(OutageTrace):
    """Independent geometric failure/repair per cloudlet.

    Each healthy cloudlet fails with probability ``1/mttf`` per epoch and
    each failed cloudlet recovers with probability ``1/mttr``, giving
    geometric up/down sojourns with the stated means — the classic
    MTTF/MTTR renewal model.  Draws happen in ascending node-id order so
    the stream is a pure function of the seed.
    """

    def __init__(
        self,
        network: MECNetwork,
        mttf: float = 50.0,
        mttr: float = 5.0,
        rng: RandomSource = None,
        min_survivors: int = 1,
    ) -> None:
        super().__init__(network, min_survivors=min_survivors)
        if mttf < 1 or mttr < 1:
            raise ConfigurationError(
                f"mttf and mttr are epoch counts and must be >= 1, "
                f"got mttf={mttf}, mttr={mttr}"
            )
        self.mttf = float(mttf)
        self.mttr = float(mttr)
        self.rng = as_rng(rng)

    def _draw(
        self, up: Tuple[int, ...], down: Tuple[int, ...]
    ) -> Tuple[Sequence[int], Sequence[int]]:
        recover = [n for n in down if self.rng.random() < 1.0 / self.mttr]
        fail = [n for n in up if self.rng.random() < 1.0 / self.mttf]
        return fail, recover


class CorrelatedOutageTrace(OutageTrace):
    """Regional failures: one event takes a neighbourhood down together.

    With probability ``1/mttf`` per epoch a regional event fires: a seed
    cloudlet is drawn uniformly among the healthy ones and fails together
    with its ``region_size - 1`` nearest healthy cloudlets by hop count
    (ties broken by node id) — a shared aggregation switch or power domain
    going dark.  Repairs stay per-cloudlet geometric with mean ``mttr``:
    correlated failure, independent repair.
    """

    def __init__(
        self,
        network: MECNetwork,
        mttf: float = 50.0,
        mttr: float = 5.0,
        region_size: int = 2,
        rng: RandomSource = None,
        min_survivors: int = 1,
    ) -> None:
        super().__init__(network, min_survivors=min_survivors)
        if mttf < 1 or mttr < 1:
            raise ConfigurationError(
                f"mttf and mttr are epoch counts and must be >= 1, "
                f"got mttf={mttf}, mttr={mttr}"
            )
        check_int_at_least(region_size, 1, "region_size")
        self.mttf = float(mttf)
        self.mttr = float(mttr)
        self.region_size = int(region_size)
        self.rng = as_rng(rng)
        self._network = network

    def _region(self, seed_node: int, up: Tuple[int, ...]) -> List[int]:
        others = [n for n in up if n != seed_node]
        others.sort(key=lambda n: (self._network.hop_count(seed_node, n), n))
        return [seed_node, *others[: self.region_size - 1]]

    def _draw(
        self, up: Tuple[int, ...], down: Tuple[int, ...]
    ) -> Tuple[Sequence[int], Sequence[int]]:
        recover = [n for n in down if self.rng.random() < 1.0 / self.mttr]
        fail: List[int] = []
        if up and self.rng.random() < 1.0 / self.mttf:
            seed_node = up[int(self.rng.integers(0, len(up)))]
            fail = self._region(seed_node, up)
        return fail, recover


class ScheduledOutageTrace(OutageTrace):
    """An explicit per-epoch outage script, for tests and one-shot drills.

    ``script`` maps epoch number (1-based, matching :meth:`OutageTrace.
    step`) to ``(outages, recoveries)`` node-id sequences; epochs absent
    from the script are quiet.  The base class still validates the script
    against the live up/down state and enforces the survivor floor, so an
    inconsistent script fails loudly instead of desynchronising the
    market.
    """

    def __init__(
        self,
        network: MECNetwork,
        script: Optional[
            Dict[int, Tuple[Sequence[int], Sequence[int]]]
        ] = None,
        min_survivors: int = 1,
    ) -> None:
        super().__init__(network, min_survivors=min_survivors)
        self.script: Dict[int, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}
        for epoch, (outs, recs) in (script or {}).items():
            check_int_at_least(int(epoch), 1, "script epoch")
            self.script[int(epoch)] = (
                tuple(int(n) for n in outs),
                tuple(int(n) for n in recs),
            )

    def _draw(
        self, up: Tuple[int, ...], down: Tuple[int, ...]
    ) -> Tuple[Sequence[int], Sequence[int]]:
        return self.script.get(self._epoch, ((), ()))

"""Provider population dynamics.

Each epoch, a geometric number of new providers arrives (mean
``arrival_rate``) and every present provider departs independently with
probability ``1 / mean_lifetime``. Arrivals draw their services from the
same Section IV.A workload distributions as the static experiments, so a
long-running dynamic market is statistically the paper's market in steady
state with mean population ``arrival_rate * mean_lifetime``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.exceptions import ConfigurationError
from repro.market.service import ServiceProvider
from repro.market.workload import WorkloadParams, generate_providers
from repro.network.topology import MECNetwork
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class PopulationEvent:
    """What happened to the population in one epoch."""

    epoch: int
    arrived: tuple
    departed: tuple

    @property
    def churn(self) -> int:
        return len(self.arrived) + len(self.departed)


class PopulationProcess:
    """Generates the provider population epoch by epoch."""

    def __init__(
        self,
        network: MECNetwork,
        arrival_rate: float = 4.0,
        mean_lifetime: float = 10.0,
        params: Optional[WorkloadParams] = None,
        rng: RandomSource = None,
        initial_population: int = 0,
    ) -> None:
        check_positive(arrival_rate, "arrival_rate")
        check_positive(mean_lifetime, "mean_lifetime")
        if mean_lifetime < 1.0:
            raise ConfigurationError("mean_lifetime must be >= 1 epoch")
        self.network = network
        self.arrival_rate = arrival_rate
        self.departure_prob = 1.0 / mean_lifetime
        self.params = params if params is not None else WorkloadParams()
        self.rng = as_rng(rng)
        self._next_id = 0
        self._present: Dict[int, ServiceProvider] = {}
        self._epoch = 0
        if initial_population:
            for provider in self._draw_providers(initial_population):
                self._present[provider.provider_id] = provider

    def _draw_providers(self, count: int) -> List[ServiceProvider]:
        """Draw new providers with globally unique, increasing ids."""
        drawn = generate_providers(
            self.network, count, params=self.params, rng=self.rng
        )
        renumbered = []
        for provider in drawn:
            service = provider.service
            service.service_id = self._next_id
            renumbered.append(
                ServiceProvider(provider_id=self._next_id, service=service)
            )
            self._next_id += 1
        return renumbered

    @property
    def present(self) -> List[ServiceProvider]:
        """Providers currently in the market, ordered by id."""
        return [self._present[k] for k in sorted(self._present)]

    @property
    def population(self) -> int:
        return len(self._present)

    @property
    def expected_population(self) -> float:
        """Steady-state mean: arrival_rate * mean_lifetime."""
        return self.arrival_rate / self.departure_prob

    def step(self) -> PopulationEvent:
        """Advance one epoch: departures first, then arrivals."""
        self._epoch += 1
        departed: Set[int] = {
            pid
            for pid in list(self._present)
            if self.rng.random() < self.departure_prob
        }
        for pid in departed:
            del self._present[pid]

        n_arrivals = int(self.rng.poisson(self.arrival_rate))
        arrived = self._draw_providers(n_arrivals) if n_arrivals else []
        for provider in arrived:
            self._present[provider.provider_id] = provider

        return PopulationEvent(
            epoch=self._epoch,
            arrived=tuple(p.provider_id for p in arrived),
            departed=tuple(sorted(departed)),
        )


__all__ = ["PopulationEvent", "PopulationProcess"]

"""Time-varying arrival traces (diurnal load patterns).

Real edge workloads breathe: AR/VR demand peaks in the evening, video
processing follows office hours. :class:`DiurnalTrace` produces a smooth
sinusoidal arrival-rate profile with optional noise, and plugging it into
:class:`~repro.dynamics.simulation.DynamicMarketSimulation` (via the
``trace`` argument) makes the provider population swell and shrink through
the day — the regime where the replan-vs-incremental trade-off is starkest
(replanning during the evening ramp, coasting overnight).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_non_negative, check_positive


@dataclass
class DiurnalTrace:
    """A sinusoidal arrival-rate profile.

    ``rate(t) = base * (1 + amplitude * sin(2*pi*(t - phase)/period))``
    plus optional multiplicative noise, floored at ``min_rate``.

    Parameters
    ----------
    base_rate:
        Mean arrivals per epoch.
    amplitude:
        Relative swing, in [0, 1): 0.6 means peaks at 1.6x and troughs at
        0.4x the base.
    period:
        Epochs per day.
    phase:
        Epoch offset of the peak.
    noise:
        Std-dev of multiplicative lognormal-ish noise (0 disables).
    """

    base_rate: float = 5.0
    amplitude: float = 0.6
    period: float = 24.0
    phase: float = 0.0
    noise: float = 0.0
    min_rate: float = 0.1
    rng: RandomSource = None

    def __post_init__(self) -> None:
        check_positive(self.base_rate, "base_rate")
        if not 0.0 <= self.amplitude < 1.0:
            raise ConfigurationError(
                f"amplitude must lie in [0, 1), got {self.amplitude}"
            )
        check_positive(self.period, "period")
        check_non_negative(self.noise, "noise")
        check_positive(self.min_rate, "min_rate")
        self._rng = as_rng(self.rng)

    def __call__(self, epoch: int) -> float:
        """Arrival rate for the given epoch."""
        angle = 2.0 * math.pi * (epoch - self.phase) / self.period
        rate = self.base_rate * (1.0 + self.amplitude * math.sin(angle))
        if self.noise > 0:
            rate *= math.exp(float(self._rng.normal(0.0, self.noise)))
        return max(self.min_rate, rate)

    @property
    def peak_rate(self) -> float:
        return self.base_rate * (1.0 + self.amplitude)

    @property
    def trough_rate(self) -> float:
        return max(self.min_rate, self.base_rate * (1.0 - self.amplitude))


__all__ = ["DiurnalTrace"]

"""Servers and VM provisioning.

The testbed has five servers (i7-8700, 16 GB RAM); overlay OVS nodes and the
VMs implementing cached service instances are placed on them. The manager
balances VMs across servers and enforces core/memory limits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exceptions import CapacityError, ConfigurationError


@dataclass
class Server:
    """A physical server of the testbed."""

    server_id: int
    cores: int = 6  # i7-8700
    memory_gb: float = 16.0
    name: str = ""
    cores_used: float = field(default=0.0, compare=False)
    memory_used: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.memory_gb <= 0:
            raise ConfigurationError("server must have positive cores and memory")
        if not self.name:
            self.name = f"server{self.server_id}"

    def can_host(self, cores: float, memory_gb: float) -> bool:
        return (
            self.cores_used + cores <= self.cores + 1e-9
            and self.memory_used + memory_gb <= self.memory_gb + 1e-9
        )

    def allocate(self, cores: float, memory_gb: float) -> None:
        if not self.can_host(cores, memory_gb):
            raise CapacityError(
                f"{self.name}: cannot allocate {cores} cores / {memory_gb} GB"
            )
        self.cores_used += cores
        self.memory_used += memory_gb

    def release(self, cores: float, memory_gb: float) -> None:
        self.cores_used = max(0.0, self.cores_used - cores)
        self.memory_used = max(0.0, self.memory_used - memory_gb)


@dataclass
class VirtualMachine:
    """A VM implementing one cached service instance (or an OVS helper)."""

    vm_id: int
    server: Server
    cores: float = 0.5
    memory_gb: float = 0.5
    label: str = ""

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.memory_gb <= 0:
            raise ConfigurationError("VM must request positive resources")


class VMManager:
    """Provision/destroy VMs across a server pool (least-loaded first)."""

    def __init__(self, servers: List[Server]) -> None:
        if not servers:
            raise ConfigurationError("VMManager needs at least one server")
        self.servers = list(servers)
        self._vms: Dict[int, VirtualMachine] = {}
        self._next_id = 0

    def provision(
        self, cores: float = 0.5, memory_gb: float = 0.5, label: str = ""
    ) -> VirtualMachine:
        """Create a VM on the least-loaded server able to host it."""
        candidates = sorted(
            (s for s in self.servers if s.can_host(cores, memory_gb)),
            key=lambda s: (s.cores_used / s.cores, s.server_id),
        )
        if not candidates:
            raise CapacityError(
                f"no server can host a VM with {cores} cores / {memory_gb} GB"
            )
        server = candidates[0]
        server.allocate(cores, memory_gb)
        vm = VirtualMachine(
            vm_id=self._next_id, server=server, cores=cores,
            memory_gb=memory_gb, label=label,
        )
        self._next_id += 1
        self._vms[vm.vm_id] = vm
        return vm

    def destroy(self, vm_id: int) -> None:
        try:
            vm = self._vms.pop(vm_id)
        except KeyError:
            raise ConfigurationError(f"unknown VM {vm_id}") from None
        vm.server.release(vm.cores, vm.memory_gb)

    def destroy_all(self) -> None:
        for vm_id in list(self._vms):
            self.destroy(vm_id)

    @property
    def vms(self) -> List[VirtualMachine]:
        return [self._vms[k] for k in sorted(self._vms)]

    def utilization(self) -> Dict[str, float]:
        """Pool-wide core/memory utilisation fractions."""
        total_cores = sum(s.cores for s in self.servers)
        total_mem = sum(s.memory_gb for s in self.servers)
        return {
            "cores": sum(s.cores_used for s in self.servers) / total_cores,
            "memory": sum(s.memory_used for s in self.servers) / total_mem,
        }


__all__ = ["Server", "VirtualMachine", "VMManager"]

"""A minimal discrete-event simulation engine.

Events are ``(time, sequence, callback)`` triples in a binary heap; the
sequence number breaks ties FIFO so simultaneous events run in scheduling
order, which keeps runs deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.exceptions import EmulationError

Callback = Callable[[], None]


class EventQueue:
    """A deterministic time-ordered event queue."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callback]] = []
        self._counter = itertools.count()
        self._cancelled: set = set()

    def push(self, time: float, callback: Callback) -> int:
        """Schedule ``callback`` at ``time``; returns an id for cancellation."""
        if time < 0:
            raise EmulationError(f"cannot schedule an event at negative time {time}")
        seq = next(self._counter)
        heapq.heappush(self._heap, (time, seq, callback))
        return seq

    def cancel(self, event_id: int) -> None:
        """Lazily cancel a scheduled event by id."""
        self._cancelled.add(event_id)

    def pop(self) -> Optional[Tuple[float, Callback]]:
        """Next live event as ``(time, callback)``; ``None`` when drained."""
        while self._heap:
            time, seq, callback = heapq.heappop(self._heap)
            if seq in self._cancelled:
                self._cancelled.discard(seq)
                continue
            return time, callback
        return None

    def __len__(self) -> int:
        return len(self._heap)


class Simulator:
    """Runs an :class:`EventQueue` forward, tracking the simulated clock."""

    def __init__(self) -> None:
        self.queue = EventQueue()
        self.now = 0.0
        self._steps = 0

    def schedule(self, delay: float, callback: Callback) -> int:
        """Schedule ``callback`` ``delay`` seconds from the current time."""
        if delay < 0:
            raise EmulationError(f"delay must be non-negative, got {delay}")
        return self.queue.push(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callback) -> int:
        if time < self.now:
            raise EmulationError(
                f"cannot schedule in the past ({time} < now {self.now})"
            )
        return self.queue.push(time, callback)

    def cancel(self, event_id: int) -> None:
        self.queue.cancel(event_id)

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Process events until the queue drains (or ``until``/``max_events``).

        Returns the final simulated time. ``max_events`` guards against
        pathological self-rescheduling loops.
        """
        while True:
            item = self.queue.pop()
            if item is None:
                break
            time, callback = item
            if until is not None and time > until:
                # Put it back conceptually: we simply stop; the caller can
                # continue with another run() call since the event was
                # consumed — so re-push it first.
                self.queue.push(time, callback)
                self.now = until
                break
            if time < self.now - 1e-12:
                raise EmulationError(
                    f"event time {time} precedes current time {self.now}"
                )
            self.now = max(self.now, time)
            callback()
            self._steps += 1
            if self._steps > max_events:
                raise EmulationError(f"exceeded {max_events} events; runaway loop?")
        return self.now

    @property
    def processed_events(self) -> int:
        return self._steps


__all__ = ["Callback", "EventQueue", "Simulator"]

"""Flow-level transfer emulation with max-min fair bandwidth sharing.

Each :class:`Flow` carries a volume across a set of capacitated resources
(overlay links and underlay cables). Rates follow the classic max-min
fair / progressive-filling allocation: repeatedly saturate the most
contended resource and freeze the flows crossing it. The
:class:`FlowSimulator` is event-driven — rates are recomputed only at flow
arrival/completion — so the emulation is exact for piecewise-constant rates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.exceptions import ConfigurationError, EmulationError
from repro.testbed.events import Simulator

GBITS_PER_GB = 8.0


@dataclass
class Flow:
    """One transfer: ``volume_gb`` across the given capacitated resources."""

    flow_id: int
    src: int
    dst: int
    volume_gb: float
    #: Resource ids the flow crosses (overlay links, underlay cables, ...).
    resources: Tuple[Hashable, ...]
    start_time: float = 0.0

    # Runtime state.
    remaining_gbits: float = field(init=False)
    rate_mbps: float = field(default=0.0, init=False)
    finish_time: Optional[float] = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.volume_gb <= 0:
            raise ConfigurationError(f"flow volume must be positive, got {self.volume_gb}")
        self.remaining_gbits = self.volume_gb * GBITS_PER_GB

    @property
    def done(self) -> bool:
        return self.finish_time is not None

    @property
    def completion_time(self) -> Optional[float]:
        """Seconds from start to finish, once finished."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.start_time


def max_min_fair_rates(
    flows: Sequence[Flow],
    capacities_mbps: Dict[Hashable, float],
) -> Dict[int, float]:
    """Progressive-filling max-min fair allocation.

    Every resource a flow lists constrains it; flows not crossing any listed
    resource get ``inf`` (uncapped locally, the caller may clamp). Returns
    ``flow_id -> rate (Mbps)``.
    """
    active = [f for f in flows if not f.done]
    rates: Dict[int, float] = {}
    remaining_cap = dict(capacities_mbps)
    unfrozen: Set[int] = {f.flow_id for f in active}
    flows_on: Dict[Hashable, Set[int]] = {}
    for f in active:
        for r in f.resources:
            if r not in remaining_cap:
                raise EmulationError(f"flow {f.flow_id} crosses unknown resource {r!r}")
            flows_on.setdefault(r, set()).add(f.flow_id)

    while unfrozen:
        # Bottleneck = resource with the smallest fair share.
        best_share = math.inf
        best_resource = None
        for r, members in flows_on.items():
            live = members & unfrozen
            if not live:
                continue
            share = remaining_cap[r] / len(live)
            if share < best_share:
                best_share = share
                best_resource = r
        if best_resource is None:
            # Remaining flows cross no contended resource: uncapped.
            for fid in unfrozen:
                rates[fid] = math.inf
            break
        saturated = flows_on[best_resource] & unfrozen
        for fid in saturated:
            rates[fid] = best_share
        unfrozen -= saturated
        # Charge the frozen flows against every other resource they cross.
        for f in active:
            if f.flow_id in saturated:
                for r in f.resources:
                    remaining_cap[r] = max(0.0, remaining_cap[r] - best_share)
        remaining_cap[best_resource] = 0.0
        del flows_on[best_resource]

    return rates


class FlowSimulator:
    """Event-driven completion of a set of flows under max-min sharing."""

    def __init__(
        self,
        capacities_mbps: Dict[Hashable, float],
        default_rate_cap_mbps: float = 10_000.0,
    ) -> None:
        for r, c in capacities_mbps.items():
            if c <= 0:
                raise ConfigurationError(f"resource {r!r} has non-positive capacity {c}")
        self.capacities = dict(capacities_mbps)
        self.default_rate_cap = default_rate_cap_mbps
        self.flows: List[Flow] = []
        self._next_id = 0

    def add_flow(
        self,
        src: int,
        dst: int,
        volume_gb: float,
        resources: Sequence[Hashable],
        start_time: float = 0.0,
    ) -> Flow:
        flow = Flow(
            flow_id=self._next_id,
            src=src,
            dst=dst,
            volume_gb=volume_gb,
            resources=tuple(resources),
            start_time=start_time,
        )
        self._next_id += 1
        self.flows.append(flow)
        return flow

    def resource_volumes(self) -> Dict[Hashable, float]:
        """GB carried by each resource (telemetry counters).

        Attribution is static — every flow bills its full volume to every
        resource it crosses, which is exactly what interface byte counters
        on the switches would report.
        """
        volumes: Dict[Hashable, float] = {r: 0.0 for r in self.capacities}
        for flow in self.flows:
            # dict.fromkeys dedups while keeping path order deterministic.
            for resource in dict.fromkeys(flow.resources):
                volumes[resource] = volumes.get(resource, 0.0) + flow.volume_gb
        return volumes

    def run(self) -> Dict[str, float]:
        """Simulate all flows to completion; returns summary metrics.

        Metrics: ``makespan`` (seconds until the last flow finishes),
        ``mean_completion``, ``total_gb``, ``mean_rate_mbps``.
        """
        if not self.flows:
            return {"makespan": 0.0, "mean_completion": 0.0, "total_gb": 0.0,
                    "mean_rate_mbps": 0.0}

        sim = Simulator()
        pending = sorted(self.flows, key=lambda f: (f.start_time, f.flow_id))
        started: List[Flow] = []

        def recompute(now: float) -> None:
            """Advance remaining volumes to ``now`` happens implicitly via
            completion events; here we only reassign rates."""
            rates = max_min_fair_rates(started, self.capacities)
            for f in started:
                if f.done:
                    continue
                f.rate_mbps = min(rates.get(f.flow_id, math.inf), self.default_rate_cap)

        # Because rates change only at start/finish events, we track the
        # last event time and drain volume between events.
        state = {"last": 0.0}

        def drain(now: float) -> None:
            dt = now - state["last"]
            if dt > 0:
                for f in started:
                    if not f.done:
                        f.remaining_gbits = max(
                            0.0, f.remaining_gbits - f.rate_mbps * dt / 1000.0
                        )
            state["last"] = now

        completion_event: Dict[int, int] = {}

        def schedule_completions(now: float) -> None:
            for f in started:
                if f.done:
                    continue
                if f.flow_id in completion_event:
                    sim.cancel(completion_event[f.flow_id])
                if f.rate_mbps <= 0:
                    continue
                eta = f.remaining_gbits * 1000.0 / f.rate_mbps
                completion_event[f.flow_id] = sim.schedule_at(
                    now + eta, lambda f=f: finish(f)
                )

        def finish(f: Flow) -> None:
            drain(sim.now)
            if f.done:
                return
            f.remaining_gbits = 0.0
            f.finish_time = sim.now
            recompute(sim.now)
            schedule_completions(sim.now)

        def start(f: Flow) -> None:
            drain(sim.now)
            started.append(f)
            recompute(sim.now)
            schedule_completions(sim.now)

        for f in pending:
            sim.schedule_at(f.start_time, lambda f=f: start(f))
        sim.run()

        unfinished = [f for f in self.flows if not f.done]
        if unfinished:
            raise EmulationError(
                f"{len(unfinished)} flows never completed (zero rate?)"
            )
        makespan = max(f.finish_time for f in self.flows)
        completions = [f.completion_time for f in self.flows]
        total_gb = sum(f.volume_gb for f in self.flows)
        mean_rate = (
            sum(
                f.volume_gb * GBITS_PER_GB * 1000.0 / f.completion_time
                for f in self.flows
                if f.completion_time and f.completion_time > 0
            )
            / len(self.flows)
        )
        return {
            "makespan": makespan,
            "mean_completion": sum(completions) / len(completions),
            "total_gb": total_gb,
            "mean_rate_mbps": mean_rate,
        }


__all__ = ["GBITS_PER_GB", "Flow", "max_min_fair_rates", "FlowSimulator"]

"""The testbed facade: underlay + overlay + controller + traffic emulation.

:class:`Testbed` assembles the paper's Fig. 4 setup — the five hardware
switches, five servers, an AS1755 OVS/VXLAN overlay — and exposes
:meth:`Testbed.run` which (1) runs a caching algorithm as a controller app,
(2) installs its placement, (3) emulates the resulting access and update
traffic at flow level, and (4) reports social cost, wall-clock runtime and
transfer metrics. The Fig. 5–7 experiments are thin loops over this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

import networkx as nx

from repro.core.assignment import CachingAssignment
from repro.exceptions import ConfigurationError
from repro.market.market import ServiceMarket
from repro.network.topology import MECNetwork
from repro.network.zoo import as1755_mec_network
from repro.testbed.controller import CachingApp, RyuController
from repro.testbed.flows import FlowSimulator
from repro.testbed.ovs import OverlayNetwork
from repro.testbed.switch import HardwareSwitch, default_underlay
from repro.testbed.vm import Server, VMManager
from repro.utils.rng import RandomSource, as_rng

#: Capacity of one underlay cable (10GbE uplinks), Mbps.
UNDERLAY_CABLE_MBPS = 10_000.0


@dataclass
class TestbedRun:
    """Everything measured for one algorithm run on the testbed."""

    #: Not a pytest test class, despite the Test* name.
    __test__ = False

    algorithm: str
    assignment: CachingAssignment
    social_cost: float
    runtime_s: float
    flow_metrics: Dict[str, float]
    vm_utilization: Dict[str, float]
    #: Byte counters: GB carried per overlay link / underlay cable, keyed
    #: by the same resource ids the flow simulator uses.
    telemetry: Dict[Hashable, float] = field(default_factory=dict)

    @property
    def makespan_s(self) -> float:
        return self.flow_metrics["makespan"]

    def hottest_links(
        self, top: int = 5, layer: str = "overlay"
    ) -> List[Tuple[Tuple[Hashable, ...], float]]:
        """The ``top`` busiest links of a layer as ``(endpoints, GB)``.

        ``layer`` is ``"overlay"`` (VXLAN tunnels) or ``"underlay"``
        (physical cables).
        """
        if layer not in ("overlay", "underlay"):
            raise ConfigurationError(f"unknown layer {layer!r}")
        rows = [
            (tuple(sorted(key[1])), volume)
            for key, volume in self.telemetry.items()
            if key[0] == layer
        ]
        rows.sort(key=lambda t: (-t[1], t[0]))
        return rows[:top]


class Testbed:
    """The emulated hardware testbed of Section IV.C.

    Parameters
    ----------
    network:
        The overlay dressed as a two-tiered MEC network; default builds the
        AS1755 overlay with the Section IV.A parameters.
    rng:
        Seeds the default network construction.
    """

    #: Not a pytest test class, despite the Test* name.
    __test__ = False

    def __init__(
        self,
        network: Optional[MECNetwork] = None,
        rng: RandomSource = None,
    ) -> None:
        self.network = network if network is not None else as1755_mec_network(as_rng(rng))
        self.switches: List[HardwareSwitch] = default_underlay()
        self.servers: List[Server] = [Server(server_id=i) for i in range(5)]
        self.vm_manager = VMManager(self.servers)
        self.overlay = OverlayNetwork(self.network.graph, self.switches, self.servers)
        self.controller = RyuController(self.overlay)

    def register_algorithm(self, name: str, app: CachingApp) -> None:
        """Expose a caching algorithm as a controller application."""
        self.controller.register_app(name, app)

    # ------------------------------------------------------------------ #
    # Traffic emulation
    # ------------------------------------------------------------------ #
    def _capacities(self) -> Dict[Hashable, float]:
        caps: Dict[Hashable, float] = {}
        for link in self.network.links():
            caps[("overlay", frozenset((link.u, link.v)))] = link.bandwidth
        cable_set = set()
        for tunnel in self.overlay.tunnels.values():
            for cable in tunnel.underlay_path:
                cable_set.add(frozenset(cable))
        for cable in cable_set:
            caps[("underlay", cable)] = UNDERLAY_CABLE_MBPS
        return caps

    def _flow_resources(self, src: int, dst: int) -> List[Hashable]:
        """Overlay links + underlay cables a transfer crosses (dedup)."""
        resources: List[Hashable] = []
        path = self.overlay.overlay_path(src, dst)
        seen = set()
        for u, v in zip(path, path[1:]):
            key = ("overlay", frozenset((u, v)))
            if key not in seen:
                seen.add(key)
                resources.append(key)
        for cable in self.overlay.underlay_cables(src, dst):
            key = ("underlay", frozenset(cable))
            if key not in seen:
                seen.add(key)
                resources.append(key)
        return resources

    def build_flow_simulator(self, assignment: CachingAssignment) -> FlowSimulator:
        """The flow set one epoch of the assignment's traffic generates.

        Cached providers generate an access flow (users -> cache) and an
        update flow (cache -> home DC); rejected providers backhaul their
        request traffic to the remote cloud.
        """
        simulator = FlowSimulator(self._capacities())
        market = assignment.market
        for pid, node in sorted(assignment.placement.items()):
            svc = market.provider(pid).service
            if svc.user_node != node and svc.request_traffic_gb > 0:
                simulator.add_flow(
                    svc.user_node, node, svc.request_traffic_gb,
                    self._flow_resources(svc.user_node, node),
                )
            if node != svc.home_dc and svc.update_volume_gb > 0:
                simulator.add_flow(
                    node, svc.home_dc, svc.update_volume_gb,
                    self._flow_resources(node, svc.home_dc),
                )
        for pid in sorted(assignment.rejected):
            svc = market.provider(pid).service
            if svc.user_node != svc.home_dc and svc.request_traffic_gb > 0:
                simulator.add_flow(
                    svc.user_node, svc.home_dc, svc.request_traffic_gb,
                    self._flow_resources(svc.user_node, svc.home_dc),
                )
        return simulator

    def emulate_traffic(self, assignment: CachingAssignment) -> Dict[str, float]:
        """Run the flow emulation and return the summary metrics only."""
        return self.build_flow_simulator(assignment).run()

    # ------------------------------------------------------------------ #
    # One full run
    # ------------------------------------------------------------------ #
    def run(self, algorithm: str, market: ServiceMarket) -> TestbedRun:
        """Run a registered algorithm on a market over this testbed."""
        if market.network is not self.network:
            raise ConfigurationError(
                "market was generated over a different network than the testbed overlay"
            )
        self.vm_manager.destroy_all()
        assignment = self.controller.run_app(algorithm, market)

        # Provision one VM per cached instance (capacity effects on the
        # servers are reported, not enforced — the paper's servers are
        # sized to fit the experiment).
        for pid in sorted(assignment.placement):
            self.vm_manager.provision(
                cores=0.25, memory_gb=0.25, label=f"svc{pid}"
            )

        simulator = self.build_flow_simulator(assignment)
        flow_metrics = simulator.run()
        return TestbedRun(
            algorithm=algorithm,
            assignment=assignment,
            social_cost=assignment.social_cost,
            runtime_s=self.controller.app_runtimes[algorithm],
            flow_metrics=flow_metrics,
            vm_utilization=self.vm_manager.utilization(),
            telemetry=simulator.resource_volumes(),
        )


__all__ = ["UNDERLAY_CABLE_MBPS", "Testbed", "TestbedRun"]

"""The VXLAN/OVS overlay.

The testbed virtualises the AS1755 topology as Open vSwitch bridges
connected by VXLAN tunnels over the five-switch underlay. Each overlay node
becomes an :class:`OVSBridge` pinned to one physical server; each overlay
edge becomes a :class:`VXLANTunnel` whose underlay path is the switch-level
route between the two servers. Tunnels crossing the same underlay cable
share its capacity — that coupling is what distinguishes the testbed numbers
from the pure simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import networkx as nx

from repro.exceptions import ConfigurationError, EmulationError, TopologyError
from repro.testbed.switch import HardwareSwitch
from repro.testbed.vm import Server, VMManager


@dataclass
class OVSBridge:
    """An Open vSwitch instance implementing one overlay node."""

    bridge_id: int  # equals the overlay (AS1755) node id
    server: Server
    datapath_id: str = ""

    def __post_init__(self) -> None:
        if not self.datapath_id:
            self.datapath_id = f"dpid-{self.bridge_id:016x}"


@dataclass(frozen=True)
class VXLANTunnel:
    """A VXLAN tunnel implementing one overlay edge."""

    u: int  # overlay endpoint bridges
    v: int
    vni: int  # VXLAN network identifier
    #: Underlay cables the tunnel traverses, as (switch, switch) pairs;
    #: empty when both bridges share a server.
    underlay_path: Tuple[Tuple[int, int], ...] = ()

    @property
    def endpoints(self) -> FrozenSet[int]:
        return frozenset((self.u, self.v))


class OverlayNetwork:
    """An overlay graph realised as OVS bridges + VXLAN tunnels.

    Parameters
    ----------
    graph:
        The overlay topology (AS1755 in the paper's testbed).
    switches:
        The physical underlay switches (already wired).
    servers:
        Physical servers; each hosts ``|V| / len(servers)`` bridges. Server
        ``i`` is assumed attached to switch ``i % len(switches)``.
    """

    def __init__(
        self,
        graph: nx.Graph,
        switches: Sequence[HardwareSwitch],
        servers: Sequence[Server],
    ) -> None:
        if graph.number_of_nodes() == 0:
            raise ConfigurationError("overlay graph is empty")
        if not switches or not servers:
            raise ConfigurationError("need at least one switch and one server")
        self.graph = graph
        self.switches = list(switches)
        self.servers = list(servers)

        self._switch_graph = nx.Graph()
        for sw in self.switches:
            self._switch_graph.add_node(sw.switch_id)
        for sw in self.switches:
            for port in range(sw.model.ports):
                peer = sw.peer_on(port)
                if peer is not None:
                    self._switch_graph.add_edge(sw.switch_id, peer)
        if not nx.is_connected(self._switch_graph):
            raise TopologyError("underlay switch graph is not connected")

        # Pin bridges to servers round-robin (the paper balances OVS nodes
        # across its five servers).
        self.bridges: Dict[int, OVSBridge] = {}
        for k, node in enumerate(sorted(graph.nodes)):
            server = self.servers[k % len(self.servers)]
            self.bridges[node] = OVSBridge(bridge_id=node, server=server)

        # Build tunnels; underlay path = switch route between the servers.
        self.tunnels: Dict[FrozenSet[int], VXLANTunnel] = {}
        vni = 1
        for u, v in sorted(graph.edges):
            su = self._attached_switch(self.bridges[u].server)
            sv = self._attached_switch(self.bridges[v].server)
            if su == sv:
                path: Tuple[Tuple[int, int], ...] = ()
            else:
                nodes = nx.shortest_path(self._switch_graph, su, sv)
                path = tuple(zip(nodes, nodes[1:]))
            self.tunnels[frozenset((u, v))] = VXLANTunnel(
                u=u, v=v, vni=vni, underlay_path=path
            )
            vni += 1

        # Populate switch forwarding tables along shortest paths.
        self._install_underlay_routes()

    def _attached_switch(self, server: Server) -> int:
        return self.switches[server.server_id % len(self.switches)].switch_id

    def _install_underlay_routes(self) -> None:
        by_id = {sw.switch_id: sw for sw in self.switches}
        for src in self._switch_graph.nodes:
            paths = nx.single_source_shortest_path(self._switch_graph, src)
            sw = by_id[src]
            for dst, nodes in paths.items():
                if dst == src or len(nodes) < 2:
                    continue
                next_hop = nodes[1]
                # Find a port towards next_hop.
                for port in range(sw.model.ports):
                    if sw.peer_on(port) == next_hop:
                        sw.install_route(dst, port)
                        break
                else:
                    raise EmulationError(
                        f"{sw.name}: no cable towards {next_hop}"
                    )

    # ------------------------------------------------------------------ #
    # Fault handling
    # ------------------------------------------------------------------ #
    def fail_cable(self, a: int, b: int) -> List[VXLANTunnel]:
        """Cut the physical cable between switches ``a`` and ``b``.

        The testbed is wired so that "network data can still be transmitted
        if one switch is down": the underlay must stay connected, otherwise
        the failure is rejected. Switch forwarding tables are recomputed
        and every VXLAN tunnel that crossed the cable is re-pinned onto the
        new shortest path. Returns the re-pinned tunnels.
        """
        if not self._switch_graph.has_edge(a, b):
            raise TopologyError(f"no cable between switches {a} and {b}")
        self._switch_graph.remove_edge(a, b)
        if not nx.is_connected(self._switch_graph):
            self._switch_graph.add_edge(a, b)
            raise EmulationError(
                f"cutting cable {a}-{b} would partition the underlay"
            )
        # Physically unplug both ends.
        by_id = {sw.switch_id: sw for sw in self.switches}
        for near, far in ((a, b), (b, a)):
            sw = by_id[near]
            for port in range(sw.model.ports):
                if sw.peer_on(port) == far:
                    sw.disconnect(port)
                    break
        self._install_underlay_routes()

        cable = frozenset((a, b))
        repinned: List[VXLANTunnel] = []
        for key, tunnel in list(self.tunnels.items()):
            if cable not in {frozenset(c) for c in tunnel.underlay_path}:
                continue
            su = self._attached_switch(self.bridges[tunnel.u].server)
            sv = self._attached_switch(self.bridges[tunnel.v].server)
            if su == sv:
                path: Tuple[Tuple[int, int], ...] = ()
            else:
                nodes = nx.shortest_path(self._switch_graph, su, sv)
                path = tuple(zip(nodes, nodes[1:]))
            new_tunnel = VXLANTunnel(
                u=tunnel.u, v=tunnel.v, vni=tunnel.vni, underlay_path=path
            )
            self.tunnels[key] = new_tunnel
            repinned.append(new_tunnel)
        return repinned

    # ------------------------------------------------------------------ #
    # Queries used by the flow simulator
    # ------------------------------------------------------------------ #
    def tunnel(self, u: int, v: int) -> VXLANTunnel:
        try:
            return self.tunnels[frozenset((u, v))]
        except KeyError:
            raise TopologyError(f"no tunnel between overlay nodes {u} and {v}") from None

    def overlay_path(self, src: int, dst: int) -> List[int]:
        """Overlay node sequence between two overlay nodes."""
        try:
            return nx.shortest_path(self.graph, src, dst)
        except nx.NetworkXNoPath:
            raise TopologyError(f"no overlay path {src} -> {dst}") from None

    def underlay_cables(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """All underlay cables a transfer ``src -> dst`` crosses (with
        multiplicity), concatenating each hop tunnel's underlay path."""
        cables: List[Tuple[int, int]] = []
        path = self.overlay_path(src, dst)
        for u, v in zip(path, path[1:]):
            cables.extend(self.tunnel(u, v).underlay_path)
        return cables

    def __repr__(self) -> str:
        return (
            f"OverlayNetwork(bridges={len(self.bridges)}, "
            f"tunnels={len(self.tunnels)}, servers={len(self.servers)})"
        )


__all__ = ["OVSBridge", "VXLANTunnel", "OverlayNetwork"]

"""Hardware-switch models of the physical underlay (Fig. 4).

The paper's underlay uses five switches of five different vendors. We model
each as a port-count + per-packet switching latency + backplane capacity
triple (numbers from the vendors' public data sheets, rounded); the emulator
only consumes ports and capacities, so the exact figures shape constants,
not conclusions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ConfigurationError, EmulationError


@dataclass(frozen=True)
class SwitchModel:
    """Static data-sheet characteristics of a switch product."""

    vendor: str
    product: str
    ports: int
    port_speed_mbps: float
    switching_latency_us: float
    backplane_gbps: float


#: The five physical switches of the paper's testbed.
SWITCH_CATALOG: Dict[str, SwitchModel] = {
    "huawei": SwitchModel("Huawei", "S5720-32C-HI-24S-AC", 24, 10_000.0, 1.2, 680.0),
    "h3c": SwitchModel("H3C", "S5560-30S-EI", 30, 10_000.0, 1.5, 598.0),
    "ruijie": SwitchModel("Ruijie", "RG-5750C-28GT4XS-H", 28, 1_000.0, 2.0, 256.0),
    "cisco": SwitchModel("Cisco", "3750X-24T", 24, 1_000.0, 2.8, 160.0),
    "centec": SwitchModel("Centec", "aSW1100-48T4X", 48, 1_000.0, 2.2, 176.0),
}


class HardwareSwitch:
    """A runtime switch instance: ports, links and a forwarding table."""

    def __init__(self, switch_id: int, model: SwitchModel, name: str = "") -> None:
        self.switch_id = switch_id
        self.model = model
        self.name = name or f"{model.vendor}-{switch_id}"
        # port -> peer switch_id (None = free port)
        self._ports: List[Optional[int]] = [None] * model.ports
        # destination switch_id -> egress port
        self.forwarding_table: Dict[int, int] = {}

    @property
    def free_ports(self) -> int:
        return sum(1 for p in self._ports if p is None)

    def connect(self, peer_id: int) -> int:
        """Attach a cable towards ``peer_id``; returns the port used."""
        for port, peer in enumerate(self._ports):
            if peer is None:
                self._ports[port] = peer_id
                return port
        raise EmulationError(f"{self.name}: no free ports (all {self.model.ports} used)")

    def disconnect(self, port: int) -> None:
        if not 0 <= port < self.model.ports:
            raise ConfigurationError(f"{self.name}: no port {port}")
        self._ports[port] = None
        self.forwarding_table = {
            dst: p for dst, p in self.forwarding_table.items() if p != port
        }

    def peer_on(self, port: int) -> Optional[int]:
        if not 0 <= port < self.model.ports:
            raise ConfigurationError(f"{self.name}: no port {port}")
        return self._ports[port]

    def install_route(self, destination: int, port: int) -> None:
        """Install a forwarding entry (done by the controller via Netconf/
        SNMP in the real testbed)."""
        if self._ports[port] is None:
            raise EmulationError(
                f"{self.name}: cannot route {destination} via unconnected port {port}"
            )
        self.forwarding_table[destination] = port

    def next_hop(self, destination: int) -> int:
        """Peer switch towards ``destination``; raises when unknown."""
        try:
            port = self.forwarding_table[destination]
        except KeyError:
            raise EmulationError(
                f"{self.name}: no forwarding entry for {destination}"
            ) from None
        peer = self._ports[port]
        if peer is None:
            raise EmulationError(f"{self.name}: forwarding entry points at dead port")
        return peer

    def __repr__(self) -> str:
        return f"HardwareSwitch({self.name}, model={self.model.product})"


def default_underlay() -> List[HardwareSwitch]:
    """The paper's five-switch underlay, each connected to >= 2 others.

    Wiring is a ring plus two chords (each switch reaches at least two
    peers, the paper's survivability requirement).
    """
    switches = [
        HardwareSwitch(i, model) for i, model in enumerate(SWITCH_CATALOG.values())
    ]
    edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2), (1, 3)]
    for u, v in edges:
        switches[u].connect(v)
        switches[v].connect(u)
    return switches


__all__ = ["SwitchModel", "SWITCH_CATALOG", "HardwareSwitch", "default_underlay"]

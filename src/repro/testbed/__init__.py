"""A discrete-event testbed emulator (the hardware-testbed substitute).

The paper's Section IV.C testbed is five hardware switches (Huawei, H3C,
Ruijie, Cisco, Centec), five i7 servers, and a VXLAN/OVS overlay following
AS1755, orchestrated by a Ryu SDN controller. None of that hardware is
available here, so this package provides a behaviourally equivalent
discrete-event emulator:

* :mod:`~repro.testbed.events` — the event engine;
* :mod:`~repro.testbed.switch` — the five switch models with port counts
  and switching latencies;
* :mod:`~repro.testbed.vm` — servers and VM provisioning;
* :mod:`~repro.testbed.ovs` — OVS bridges and VXLAN tunnels pinning the
  overlay onto the underlay;
* :mod:`~repro.testbed.flows` — flow-level transfers with max-min fair
  bandwidth sharing;
* :mod:`~repro.testbed.controller` — a Ryu-like controller hosting the
  caching algorithms as applications;
* :mod:`~repro.testbed.emulator` — the :class:`Testbed` facade used by the
  Fig. 5–7 experiments.

The testbed figures measure social cost and algorithm running time over the
AS1755 overlay; both are functions of topology, capacities and algorithm
behaviour, which the emulator reproduces (see DESIGN.md, substitutions).
"""

from repro.testbed.events import EventQueue, Simulator
from repro.testbed.switch import HardwareSwitch, SWITCH_CATALOG
from repro.testbed.vm import Server, VirtualMachine, VMManager
from repro.testbed.ovs import OVSBridge, VXLANTunnel, OverlayNetwork
from repro.testbed.flows import Flow, FlowSimulator
from repro.testbed.controller import CachingApp, RyuController
from repro.testbed.emulator import Testbed, TestbedRun

__all__ = [
    "EventQueue",
    "Simulator",
    "HardwareSwitch",
    "SWITCH_CATALOG",
    "Server",
    "VirtualMachine",
    "VMManager",
    "OVSBridge",
    "VXLANTunnel",
    "OverlayNetwork",
    "Flow",
    "FlowSimulator",
    "CachingApp",
    "RyuController",
    "Testbed",
    "TestbedRun",
]

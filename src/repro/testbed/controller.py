"""A Ryu-like SDN controller hosting the caching algorithms.

In the paper the proposed algorithms are "implemented as Ryu applications";
the controller discovers the overlay topology, runs an app to decide the
placement, installs the corresponding routes, and reports per-app wall-clock
runtimes (the quantity plotted in Fig. 5b/6b).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.assignment import CachingAssignment
from repro.exceptions import ConfigurationError, EmulationError
from repro.market.market import ServiceMarket
from repro.testbed.ovs import OverlayNetwork

#: A caching application: market in, assignment out.
CachingApp = Callable[[ServiceMarket], CachingAssignment]


@dataclass
class InstalledPath:
    """A flow rule chain installed for one provider's traffic."""

    provider_id: int
    overlay_nodes: List[int]
    purpose: str  # "access" or "update"


class RyuController:
    """Controls the overlay, runs caching apps, installs their decisions."""

    def __init__(self, overlay: OverlayNetwork) -> None:
        self.overlay = overlay
        self._apps: Dict[str, CachingApp] = {}
        self.installed: List[InstalledPath] = []
        self.app_runtimes: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # App registry
    # ------------------------------------------------------------------ #
    def register_app(self, name: str, app: CachingApp) -> None:
        if name in self._apps:
            raise ConfigurationError(f"app {name!r} already registered")
        self._apps[name] = app

    @property
    def apps(self) -> List[str]:
        return sorted(self._apps)

    # ------------------------------------------------------------------ #
    # Topology discovery (LLDP-equivalent)
    # ------------------------------------------------------------------ #
    def discovered_topology(self) -> Dict[str, int]:
        """What the controller learns from the overlay datapaths."""
        return {
            "bridges": len(self.overlay.bridges),
            "tunnels": len(self.overlay.tunnels),
            "servers": len({b.server.server_id for b in self.overlay.bridges.values()}),
        }

    # ------------------------------------------------------------------ #
    # Running an app
    # ------------------------------------------------------------------ #
    def run_app(self, name: str, market: ServiceMarket) -> CachingAssignment:
        """Execute a registered app and install routes for its placement.

        The returned assignment's runtime is re-measured here (controller
        wall clock) so that every app is timed identically.
        """
        try:
            app = self._apps[name]
        except KeyError:
            raise ConfigurationError(f"no app named {name!r}") from None

        start = time.perf_counter()
        assignment = app(market)
        elapsed = time.perf_counter() - start
        self.app_runtimes[name] = elapsed

        self._install_assignment(assignment)
        return assignment

    def _install_assignment(self, assignment: CachingAssignment) -> None:
        """Install access and update paths for every cached provider."""
        self.installed = []
        market = assignment.market
        for pid, node in sorted(assignment.placement.items()):
            svc = market.provider(pid).service
            if node not in self.overlay.graph:
                raise EmulationError(
                    f"placement node {node} does not exist in the overlay"
                )
            self.installed.append(
                InstalledPath(
                    provider_id=pid,
                    overlay_nodes=self.overlay.overlay_path(svc.user_node, node),
                    purpose="access",
                )
            )
            self.installed.append(
                InstalledPath(
                    provider_id=pid,
                    overlay_nodes=self.overlay.overlay_path(node, svc.home_dc),
                    purpose="update",
                )
            )
        for pid in sorted(assignment.rejected):
            svc = market.provider(pid).service
            self.installed.append(
                InstalledPath(
                    provider_id=pid,
                    overlay_nodes=self.overlay.overlay_path(svc.user_node, svc.home_dc),
                    purpose="access",
                )
            )


__all__ = ["CachingApp", "InstalledPath", "RyuController"]

"""Shortest-path routing with cached all-pairs distances.

The cost model turns network distance into bandwidth cost (a cached instance
must synchronise updates back to its home data center, Section II.C), so
distance queries are on the hot path of every algorithm. We precompute
delay-weighted shortest paths once per topology with Dijkstra and memoise the
actual node sequences on demand.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import networkx as nx

from repro.exceptions import TopologyError


class RoutingTable:
    """All-pairs shortest paths over a delay-weighted graph.

    Distances (sum of ``weight`` = link delay) and hop counts are computed
    eagerly; explicit paths are computed lazily and cached.
    """

    def __init__(self, graph: nx.Graph) -> None:
        if graph.number_of_nodes() == 0:
            raise TopologyError("cannot build a routing table for an empty graph")
        self._graph = graph
        # dict-of-dict: delay[u][v]
        self._delay: Dict[int, Dict[int, float]] = dict(
            nx.all_pairs_dijkstra_path_length(graph, weight="weight")
        )
        self._hops: Dict[int, Dict[int, int]] = {
            u: {v: L for v, L in lengths.items()}
            for u, lengths in nx.all_pairs_shortest_path_length(graph)
        }
        self._path_cache: Dict[Tuple[int, int], List[int]] = {}

    def path_delay(self, u: int, v: int) -> float:
        """Total delay (ms) along the min-delay path; 0 when ``u == v``."""
        try:
            return self._delay[u][v]
        except KeyError:
            raise TopologyError(f"no path between {u} and {v}") from None

    def hop_count(self, u: int, v: int) -> int:
        """Hop count of the unweighted shortest path; 0 when ``u == v``."""
        try:
            return self._hops[u][v]
        except KeyError:
            raise TopologyError(f"no path between {u} and {v}") from None

    def shortest_path(self, u: int, v: int) -> List[int]:
        """Node sequence of the min-delay path ``u → v`` (inclusive)."""
        key = (u, v)
        if key not in self._path_cache:
            try:
                path = nx.dijkstra_path(self._graph, u, v, weight="weight")
            except nx.NetworkXNoPath:
                raise TopologyError(f"no path between {u} and {v}") from None
            except nx.NodeNotFound as exc:
                raise TopologyError(str(exc)) from None
            self._path_cache[key] = path
        return list(self._path_cache[key])

    def eccentricity(self, u: int) -> float:
        """Max delay from ``u`` to any reachable node."""
        return max(self._delay[u].values())

    def diameter(self) -> float:
        """Max delay between any node pair (delay-weighted diameter)."""
        return max(self.eccentricity(u) for u in self._delay)


__all__ = ["RoutingTable"]

"""Shortest-path routing with lazily computed per-source distance rows.

The cost model turns network distance into bandwidth cost (a cached instance
must synchronise updates back to its home data center, Section II.C), so
distance queries are on the hot path of every algorithm. An eager all-pairs
computation is wasted work, though: the queried sources are almost entirely
cloudlet and data-center nodes — roughly 15% of a GT-ITM-style topology —
so we run single-source Dijkstra/BFS on demand and cache each completed row.
Undirected graphs additionally answer ``(u, v)`` from a cached row of either
endpoint (distances are symmetric), which keeps the row set small when the
query pattern is many-sources-to-few-destinations.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, TypeVar

import networkx as nx

#: Row value type: delay rows hold floats, hop rows hold ints.
_V = TypeVar("_V", float, int)

from repro.exceptions import TopologyError


class RoutingTable:
    """Shortest-path oracle over a delay-weighted graph.

    Per-source distance rows (sum of ``weight`` = link delay) and hop-count
    rows (unweighted BFS) are computed lazily on first use and memoised;
    explicit paths are memoised per pair. Query results are identical to an
    eager all-pairs computation — laziness only changes when the Dijkstra
    runs happen.
    """

    def __init__(self, graph: nx.Graph) -> None:
        if graph.number_of_nodes() == 0:
            raise TopologyError("cannot build a routing table for an empty graph")
        self._graph = graph
        self._symmetric = not graph.is_directed()
        self._delay_rows: Dict[int, Dict[int, float]] = {}
        self._hop_rows: Dict[int, Dict[int, int]] = {}
        self._path_cache: Dict[Tuple[int, int], List[int]] = {}

    # ------------------------------------------------------------------ #
    # Row computation
    # ------------------------------------------------------------------ #
    def _delay_row(self, u: int) -> Dict[int, float]:
        row = self._delay_rows.get(u)
        if row is None:
            if u not in self._graph:
                raise TopologyError(f"unknown node {u}")
            row = dict(
                nx.single_source_dijkstra_path_length(self._graph, u, weight="weight")
            )
            self._delay_rows[u] = row
        return row

    def _hop_row(self, u: int) -> Dict[int, int]:
        row = self._hop_rows.get(u)
        if row is None:
            if u not in self._graph:
                raise TopologyError(f"unknown node {u}")
            row = dict(nx.single_source_shortest_path_length(self._graph, u))
            self._hop_rows[u] = row
        return row

    def _lookup(
        self,
        rows: Dict[int, Dict[int, _V]],
        compute_row: Callable[[int], Dict[int, _V]],
        u: int,
        v: int,
    ) -> Optional[_V]:
        """Answer ``(u, v)`` from a cached row of ``u`` or — on undirected
        graphs — of ``v``; otherwise compute the row for ``v`` (the
        destination side is the small node set under the cost model's
        query pattern: cloudlets and data centers)."""
        row = rows.get(u)
        if row is not None:
            return row.get(v)
        if self._symmetric:
            row = rows.get(v)
            if row is None:
                row = compute_row(v)
            return row.get(u) if u in self._graph else None
        return compute_row(u).get(v)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def delay_row(self, u: int) -> Dict[int, float]:
        """The full single-source delay row ``{node: delay_ms}`` of ``u``.

        Bulk consumers (e.g. the market compiler) gather whole rows instead
        of issuing per-pair queries; values are the memoised Dijkstra
        results :meth:`path_delay` serves from. Treat the dict as
        read-only.
        """
        return self._delay_row(u)

    def hop_row(self, u: int) -> Dict[int, int]:
        """The full single-source hop-count row ``{node: hops}`` of ``u``
        (same memoised BFS results as :meth:`hop_count`; read-only)."""
        return self._hop_row(u)

    def path_delay(self, u: int, v: int) -> float:
        """Total delay (ms) along the min-delay path; 0 when ``u == v``."""
        d = self._lookup(self._delay_rows, self._delay_row, u, v)
        if d is None:
            raise TopologyError(f"no path between {u} and {v}")
        return d

    def hop_count(self, u: int, v: int) -> int:
        """Hop count of the unweighted shortest path; 0 when ``u == v``."""
        h = self._lookup(self._hop_rows, self._hop_row, u, v)
        if h is None:
            raise TopologyError(f"no path between {u} and {v}")
        return h

    def shortest_path(self, u: int, v: int) -> List[int]:
        """Node sequence of the min-delay path ``u → v`` (inclusive)."""
        key = (u, v)
        if key not in self._path_cache:
            try:
                path = nx.dijkstra_path(self._graph, u, v, weight="weight")
            except nx.NetworkXNoPath:
                raise TopologyError(f"no path between {u} and {v}") from None
            except nx.NodeNotFound as exc:
                raise TopologyError(str(exc)) from None
            self._path_cache[key] = path
        return list(self._path_cache[key])

    def eccentricity(self, u: int) -> float:
        """Max delay from ``u`` to any reachable node."""
        return max(self._delay_row(u).values())

    def diameter(self) -> float:
        """Max delay between any node pair (delay-weighted diameter)."""
        return max(self.eccentricity(u) for u in self._graph.nodes)


__all__ = ["RoutingTable"]

"""Two-tiered mobile edge-cloud (MEC) network model.

The paper's network is ``G = (CL ∪ DC, E)``: cloudlets with finite computing
and bandwidth capacities near the edge, remote data centers with effectively
unbounded capacity, and links interconnecting them. This package provides the
element types, the :class:`~repro.network.topology.MECNetwork` container,
GT-ITM-style random topology generators, an AS1755-like topology-zoo graph,
and routing/distance queries used by the cost model.
"""

from repro.network.elements import Cloudlet, DataCenter, Link, NodeKind, SwitchNode
from repro.network.topology import MECNetwork
from repro.network.generators import (
    transit_stub_graph,
    waxman_graph,
    random_mec_network,
)
from repro.network.zoo import as1755, as1755_mec_network
from repro.network.routing import RoutingTable

__all__ = [
    "Cloudlet",
    "DataCenter",
    "Link",
    "NodeKind",
    "SwitchNode",
    "MECNetwork",
    "transit_stub_graph",
    "waxman_graph",
    "random_mec_network",
    "as1755",
    "as1755_mec_network",
    "RoutingTable",
]

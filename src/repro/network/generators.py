"""GT-ITM-style random topology generation.

The paper generates networks of 50–400 switch nodes with GT-ITM [9]. GT-ITM's
flagship model is the *transit-stub* graph: a small connected core of transit
domains, each transit node sprouting several stub domains, plus a few extra
transit-stub and stub-stub edges. :func:`transit_stub_graph` reproduces that
structure; :func:`waxman_graph` provides GT-ITM's "flat random" alternative.

:func:`random_mec_network` dresses a generated graph per Section IV.A:
cloudlets at 10% of the nodes (randomly placed at the edge), 5 remote data
centers, per-cloudlet VM counts in [15, 30], per-VM bandwidth in
[10, 100] Mbps, and congestion coefficients alpha, beta in [0, 1].
"""

from __future__ import annotations

import itertools
import math
from typing import List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.exceptions import TopologyError
from repro.network.elements import Cloudlet, DataCenter
from repro.network.topology import MECNetwork
from repro.utils.rng import RandomSource, as_rng, uniform, uniform_int
from repro.utils.validation import check_int_at_least

#: Per-VM abstract compute capacity (1 VM = 1 compute unit).
VM_COMPUTE_UNIT = 1.0


def _connected_gnp(n: int, p: float, rng: np.random.Generator) -> nx.Graph:
    """An Erdos–Renyi graph patched into connectivity.

    GT-ITM guarantees connected domains by redrawing; redrawing whole graphs
    is wasteful for large ``n``, so we draw once and connect stranded
    components with uniformly random cross edges, which preserves the degree
    profile asymptotically.
    """
    g = nx.gnp_random_graph(n, p, seed=int(rng.integers(0, 2**31 - 1)))
    components = [list(c) for c in nx.connected_components(g)]
    while len(components) > 1:
        a = components.pop()
        b = components[-1]
        u = a[int(rng.integers(0, len(a)))]
        v = b[int(rng.integers(0, len(b)))]
        g.add_edge(u, v)
        components[-1] = b + a
    return g


def transit_stub_graph(
    n_nodes: int,
    rng: RandomSource = None,
    transit_fraction: float = 0.15,
    stub_domain_size: int = 4,
    extra_edge_fraction: float = 0.05,
) -> nx.Graph:
    """Generate a two-level transit-stub graph with ~``n_nodes`` nodes.

    Structure (after GT-ITM):

    * a connected *transit core* of ``ceil(transit_fraction * n_nodes)``
      nodes with average degree ~3;
    * the remaining nodes grouped into stub domains of ``stub_domain_size``
      (internally connected), each domain homed to one transit node;
    * ``extra_edge_fraction * n_nodes`` additional random stub-stub /
      transit-stub edges for path diversity.

    Node attribute ``level`` is ``"transit"`` or ``"stub"``; ``region`` is
    the id of the transit node the node's domain is homed to (a transit
    node is its own region) — the stable partition key the sharded market
    layer reads through :func:`region_map`.
    """
    check_int_at_least(n_nodes, 4, "n_nodes")
    rng = as_rng(rng)

    n_transit = max(2, int(math.ceil(transit_fraction * n_nodes)))
    n_stub = n_nodes - n_transit
    if n_stub < 0:
        raise TopologyError(f"transit_fraction too large for {n_nodes} nodes")

    # Transit core: connected, avg degree ~3.
    p_core = min(1.0, 3.0 / max(1, n_transit - 1))
    core = _connected_gnp(n_transit, p_core, rng)
    g = nx.Graph()
    for u in core.nodes:
        g.add_node(u, level="transit", region=u)
    g.add_edges_from(core.edges)

    # Stub domains.
    next_id = n_transit
    stub_nodes: List[int] = []
    while next_id < n_nodes:
        size = min(stub_domain_size, n_nodes - next_id)
        members = list(range(next_id, next_id + size))
        next_id += size
        for u in members:
            g.add_node(u, level="stub")
            stub_nodes.append(u)
        if size == 1:
            pass  # singleton stub: only the uplink below
        else:
            dom = _connected_gnp(size, 0.6, rng)
            for a, b in dom.edges:
                g.add_edge(members[a], members[b])
        home = int(rng.integers(0, n_transit))
        gateway = members[int(rng.integers(0, size))]
        g.add_edge(home, gateway)
        # Region attributes are assigned after the home/gateway draws so
        # the RNG consumption order is exactly the pre-region sequence —
        # every seeded topology stays bit-identical.
        for u in members:
            g.nodes[u]["region"] = home

    # Extra cross edges for redundancy (each node keeps >= 2 disjoint routes
    # on average, matching the testbed's "at least two other switches" rule).
    n_extra = int(extra_edge_fraction * n_nodes)
    all_nodes = list(g.nodes)
    for _ in range(n_extra):
        u = all_nodes[int(rng.integers(0, len(all_nodes)))]
        v = all_nodes[int(rng.integers(0, len(all_nodes)))]
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)

    assert nx.is_connected(g)
    return g


def scale_free_graph(
    n_nodes: int,
    rng: RandomSource = None,
    attachments: int = 2,
) -> nx.Graph:
    """A Barabási–Albert preferential-attachment graph.

    Not a GT-ITM model, but a common ISP-like alternative (heavy-tailed
    degrees); exposed for robustness studies of the algorithms across
    topology families. Nodes are labelled ``stub`` except the ``m`` highest
    degree hubs, which are ``transit`` (so data centers land on hubs).
    """
    check_int_at_least(n_nodes, 3, "n_nodes")
    check_int_at_least(attachments, 1, "attachments")
    if attachments >= n_nodes:
        raise TopologyError("attachments must be smaller than n_nodes")
    rng = as_rng(rng)
    g = nx.barabasi_albert_graph(
        n_nodes, attachments, seed=int(rng.integers(0, 2**31 - 1))
    )
    hubs = sorted(g.degree, key=lambda t: -t[1])[: max(2, n_nodes // 10)]
    hub_set = {u for u, _ in hubs}
    for u in g.nodes:
        g.nodes[u]["level"] = "transit" if u in hub_set else "stub"
    return g


def waxman_graph(
    n_nodes: int,
    rng: RandomSource = None,
    alpha: float = 0.4,
    beta: float = 0.2,
) -> nx.Graph:
    """GT-ITM's flat random (Waxman) model, patched into connectivity.

    Nodes are placed uniformly in the unit square and joined with
    probability ``alpha * exp(-d / (beta * L))`` where ``d`` is Euclidean
    distance and ``L`` the max distance.
    """
    check_int_at_least(n_nodes, 2, "n_nodes")
    rng = as_rng(rng)
    g = nx.waxman_graph(
        n_nodes, alpha=alpha, beta=beta, seed=int(rng.integers(0, 2**31 - 1))
    )
    components = [list(c) for c in nx.connected_components(g)]
    while len(components) > 1:
        a = components.pop()
        b = components[-1]
        g.add_edge(a[0], b[0])
        components[-1] = b + a
    for u in g.nodes:
        g.nodes[u]["level"] = "stub"
    return g


def _pick_cloudlet_nodes(
    g: nx.Graph, count: int, rng: np.random.Generator
) -> List[int]:
    """Choose nodes for cloudlets, preferring stub (edge) nodes.

    The paper deploys cloudlets "randomly distributed in the network edge";
    in a transit-stub graph the edge is the stub level.
    """
    stubs = [u for u, d in g.nodes(data=True) if d.get("level") == "stub"]
    pool = stubs if len(stubs) >= count else list(g.nodes)
    idx = rng.choice(len(pool), size=count, replace=False)
    return sorted(pool[i] for i in idx)


def _pick_dc_nodes(
    g: nx.Graph, count: int, taken: Sequence[int], rng: np.random.Generator
) -> List[int]:
    """Choose nodes for data centers, preferring transit (core) nodes."""
    taken_set = set(taken)
    transit = [
        u for u, d in g.nodes(data=True)
        if d.get("level") == "transit" and u not in taken_set
    ]
    pool = transit if len(transit) >= count else [
        u for u in g.nodes if u not in taken_set
    ]
    if len(pool) < count:
        raise TopologyError(
            f"cannot place {count} data centers: only {len(pool)} free nodes"
        )
    idx = rng.choice(len(pool), size=count, replace=False)
    return sorted(pool[i] for i in idx)


def mec_network_from_graph(
    g: nx.Graph,
    rng: RandomSource = None,
    cloudlet_fraction: float = 0.10,
    n_data_centers: int = 5,
    vms_per_cloudlet: Tuple[int, int] = (15, 30),
    vm_bandwidth_mbps: Tuple[float, float] = (10.0, 100.0),
    congestion_coeff_range: Tuple[float, float] = (0.0, 1.0),
    link_bandwidth_mbps: float = 1000.0,
    link_delay_ms: Tuple[float, float] = (0.5, 2.0),
    name: str = "mec",
) -> MECNetwork:
    """Dress an arbitrary connected graph into a two-tiered MEC network.

    Parameters mirror Section IV.A: the number of VMs per cloudlet is drawn
    from ``vms_per_cloudlet`` = [15, 30]; each VM contributes
    :data:`VM_COMPUTE_UNIT` compute units and a bandwidth share drawn from
    ``vm_bandwidth_mbps`` = [10, 100] Mbps; alpha_i and beta_i are drawn from
    ``congestion_coeff_range`` = [0, 1].
    """
    if not nx.is_connected(g):
        raise TopologyError("input graph must be connected")
    rng = as_rng(rng)

    net = MECNetwork(name=name)
    for u in sorted(g.nodes):
        net.add_switch(u)
        # Carry the generator's topology-role attributes onto the dressed
        # network so region/level survive into every downstream consumer
        # (the sharded market partitions by them).
        for key in ("level", "region"):
            if key in g.nodes[u]:
                net.graph.nodes[u][key] = g.nodes[u][key]
    for u, v in g.edges:
        net.add_link(
            u, v,
            bandwidth=link_bandwidth_mbps,
            delay_ms=uniform(rng, *link_delay_ms),
        )

    n_cloudlets = max(1, int(round(cloudlet_fraction * g.number_of_nodes())))
    cl_nodes = _pick_cloudlet_nodes(g, n_cloudlets, rng)
    for u in cl_nodes:
        n_vms = uniform_int(rng, *vms_per_cloudlet)
        per_vm_bw = uniform(rng, *vm_bandwidth_mbps)
        net.attach_cloudlet(
            Cloudlet(
                node_id=u,
                compute_capacity=n_vms * VM_COMPUTE_UNIT,
                bandwidth_capacity=n_vms * per_vm_bw,
                alpha=uniform(rng, *congestion_coeff_range),
                beta=uniform(rng, *congestion_coeff_range),
                # Per-GB bandwidth unit price of the cloudlet, drawn from the
                # Section IV.A transmission price range.
                bdw_unit_cost=uniform(rng, 0.05, 0.12),
            )
        )

    dc_nodes = _pick_dc_nodes(g, n_data_centers, cl_nodes, rng)
    for u in dc_nodes:
        net.attach_data_center(DataCenter(node_id=u))

    net.validate()
    return net


def random_mec_network(
    n_nodes: int,
    rng: RandomSource = None,
    model: str = "transit_stub",
    **kwargs,
) -> MECNetwork:
    """One-call generator: GT-ITM-style graph + Section IV.A dressing.

    ``model`` is ``"transit_stub"`` (default, GT-ITM's main model),
    ``"waxman"`` or ``"scale_free"``. Remaining keyword arguments pass
    through to :func:`mec_network_from_graph`.
    """
    rng = as_rng(rng)
    if model == "transit_stub":
        g = transit_stub_graph(n_nodes, rng)
    elif model == "waxman":
        g = waxman_graph(n_nodes, rng)
    elif model == "scale_free":
        g = scale_free_graph(n_nodes, rng)
    else:
        raise TopologyError(f"unknown topology model {model!r}")
    return mec_network_from_graph(g, rng, name=f"{model}-{n_nodes}", **kwargs)


def _spread_regions(g: nx.Graph, assigned: dict) -> dict:
    """Complete a partial node -> region assignment by layered BFS.

    Seeds are the already-assigned nodes (or, when none carry a ``region``
    attribute, the transit nodes as their own regions; or the minimum node
    id as a single region). Each BFS layer assigns every still-unassigned
    node the *minimum* region among its assigned neighbours — a pure
    function of the graph, so the partition is stable across runs.
    """
    regions = dict(assigned)
    if not regions:
        transit = [u for u, d in g.nodes(data=True) if d.get("level") == "transit"]
        seeds = transit if transit else [min(g.nodes)]
        for u in seeds:
            regions[u] = u
    frontier = sorted(u for u in g.nodes if u not in regions)
    while frontier:
        layer = {}
        for u in frontier:
            neighbour_regions = [
                regions[v] for v in g.neighbors(u) if v in regions
            ]
            if neighbour_regions:
                layer[u] = min(neighbour_regions)
        if not layer:
            # Disconnected remainder (cannot happen for the generators
            # here, which all patch into connectivity): own regions.
            for u in frontier:
                regions[u] = u
            break
        regions.update(layer)
        frontier = [u for u in frontier if u not in regions]
    return regions


def region_map(network) -> dict:
    """``node -> region id`` for every node of a network or graph.

    Accepts an :class:`~repro.network.topology.MECNetwork` or a bare
    :class:`networkx.Graph`. Nodes generated by :func:`transit_stub_graph`
    carry an explicit ``region`` attribute (the transit node their stub
    domain is homed to); any nodes without one are filled in by
    :func:`_spread_regions` — deterministically, from the transit level
    when present, else as one flat region. The result is the partition key
    of the region-sharded market (:mod:`repro.market.shard`).
    """
    g = network if isinstance(network, nx.Graph) else network.graph
    assigned = {
        u: d["region"] for u, d in g.nodes(data=True) if "region" in d
    }
    if len(assigned) < g.number_of_nodes():
        assigned = _spread_regions(g, assigned)
    return assigned


def region_of(network, node: int) -> int:
    """The region id of one node (see :func:`region_map`)."""
    regions = region_map(network)
    try:
        return regions[node]
    except KeyError:
        raise TopologyError(f"node {node} is not part of the network") from None


__all__ = [
    "VM_COMPUTE_UNIT",
    "transit_stub_graph",
    "waxman_graph",
    "scale_free_graph",
    "mec_network_from_graph",
    "random_mec_network",
    "region_map",
    "region_of",
]

"""The two-tiered MEC network container.

:class:`MECNetwork` wraps a :class:`networkx.Graph` whose nodes carry element
objects (:class:`Cloudlet`, :class:`DataCenter`, :class:`SwitchNode`) and
whose edges carry :class:`Link` attributes. It owns capacity accounting and
exposes the distance/routing queries the cost model needs.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import networkx as nx

from repro.exceptions import ConfigurationError, TopologyError
from repro.network.elements import Cloudlet, DataCenter, Link, NodeKind, SwitchNode
from repro.network.routing import RoutingTable


class MECNetwork:
    """A two-tiered mobile edge-cloud network ``G = (CL ∪ DC, E)``.

    Nodes are integers; each node is a switch by default and may additionally
    host a cloudlet or a data center (mirroring the paper's deployment of
    cloudlets "at switch nodes" of GT-ITM graphs).
    """

    def __init__(self, name: str = "mec") -> None:
        self.name = name
        self.graph = nx.Graph()
        self._cloudlets: Dict[int, Cloudlet] = {}
        self._data_centers: Dict[int, DataCenter] = {}
        self._routing: Optional[RoutingTable] = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_switch(self, node_id: int, name: str = "") -> SwitchNode:
        """Add a pure forwarding node."""
        if node_id in self.graph:
            raise ConfigurationError(f"node {node_id} already exists")
        sw = SwitchNode(node_id=node_id, name=name or f"SW{node_id}")
        self.graph.add_node(node_id, element=sw, kind=NodeKind.SWITCH)
        self._routing = None
        return sw

    def add_link(self, u: int, v: int, bandwidth: float = 1000.0, delay_ms: float = 1.0) -> Link:
        """Connect two existing nodes with an undirected link."""
        for n in (u, v):
            if n not in self.graph:
                raise ConfigurationError(f"cannot link unknown node {n}")
        link = Link(u=u, v=v, bandwidth=bandwidth, delay_ms=delay_ms)
        self.graph.add_edge(u, v, link=link, weight=delay_ms)
        self._routing = None
        return link

    def attach_cloudlet(self, cloudlet: Cloudlet) -> Cloudlet:
        """Attach a cloudlet to an existing switch node."""
        if cloudlet.node_id not in self.graph:
            raise ConfigurationError(f"no node {cloudlet.node_id} to attach cloudlet to")
        if cloudlet.node_id in self._cloudlets:
            raise ConfigurationError(f"node {cloudlet.node_id} already hosts a cloudlet")
        if cloudlet.node_id in self._data_centers:
            raise ConfigurationError(
                f"node {cloudlet.node_id} hosts a data center; cannot also host a cloudlet"
            )
        self._cloudlets[cloudlet.node_id] = cloudlet
        self.graph.nodes[cloudlet.node_id]["kind"] = NodeKind.CLOUDLET
        return cloudlet

    def attach_data_center(self, dc: DataCenter) -> DataCenter:
        """Attach a remote data center to an existing switch node."""
        if dc.node_id not in self.graph:
            raise ConfigurationError(f"no node {dc.node_id} to attach data center to")
        if dc.node_id in self._data_centers:
            raise ConfigurationError(f"node {dc.node_id} already hosts a data center")
        if dc.node_id in self._cloudlets:
            raise ConfigurationError(
                f"node {dc.node_id} hosts a cloudlet; cannot also host a data center"
            )
        self._data_centers[dc.node_id] = dc
        self.graph.nodes[dc.node_id]["kind"] = NodeKind.DATA_CENTER
        return dc

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def cloudlets(self) -> List[Cloudlet]:
        """All cloudlets, ordered by node id (deterministic iteration)."""
        return [self._cloudlets[k] for k in sorted(self._cloudlets)]

    @property
    def data_centers(self) -> List[DataCenter]:
        """All data centers, ordered by node id."""
        return [self._data_centers[k] for k in sorted(self._data_centers)]

    def cloudlet_at(self, node_id: int) -> Cloudlet:
        try:
            return self._cloudlets[node_id]
        except KeyError:
            raise TopologyError(f"no cloudlet at node {node_id}") from None

    def data_center_at(self, node_id: int) -> DataCenter:
        try:
            return self._data_centers[node_id]
        except KeyError:
            raise TopologyError(f"no data center at node {node_id}") from None

    def has_cloudlet(self, node_id: int) -> bool:
        return node_id in self._cloudlets

    def has_data_center(self, node_id: int) -> bool:
        return node_id in self._data_centers

    @property
    def num_nodes(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def num_links(self) -> int:
        return self.graph.number_of_edges()

    def links(self) -> Iterator[Link]:
        for _, _, data in self.graph.edges(data=True):
            yield data["link"]

    # ------------------------------------------------------------------ #
    # Routing / distances
    # ------------------------------------------------------------------ #
    @property
    def routing(self) -> RoutingTable:
        """Lazily computed all-pairs shortest-path routing table."""
        if self._routing is None:
            self._routing = RoutingTable(self.graph)
        return self._routing

    def hop_count(self, u: int, v: int) -> int:
        """Number of hops on the shortest (delay-weighted) path ``u → v``."""
        return self.routing.hop_count(u, v)

    def path_delay(self, u: int, v: int) -> float:
        """End-to-end delay (ms) of the shortest path ``u → v``."""
        return self.routing.path_delay(u, v)

    def shortest_path(self, u: int, v: int) -> List[int]:
        return self.routing.shortest_path(u, v)

    def nearest_data_center(self, node_id: int) -> DataCenter:
        """The data center with the smallest path delay from ``node_id``."""
        if not self._data_centers:
            raise TopologyError("network has no data centers")
        return min(self.data_centers, key=lambda dc: self.path_delay(node_id, dc.node_id))

    def nearest_cloudlet(self, node_id: int) -> Cloudlet:
        """The cloudlet with the smallest path delay from ``node_id``."""
        if not self._cloudlets:
            raise TopologyError("network has no cloudlets")
        return min(self.cloudlets, key=lambda cl: self.path_delay(node_id, cl.node_id))

    # ------------------------------------------------------------------ #
    # Capacity bookkeeping
    # ------------------------------------------------------------------ #
    def release_all_capacity(self) -> None:
        """Reset capacity usage on all cloudlets (fresh assignment round)."""
        for cl in self._cloudlets.values():
            cl.release_all()

    def validate(self) -> None:
        """Sanity-check the network: connected, has cloudlets and DCs."""
        if self.num_nodes == 0:
            raise ConfigurationError("network is empty")
        if not nx.is_connected(self.graph):
            raise ConfigurationError("network graph is not connected")
        if not self._cloudlets:
            raise ConfigurationError("network has no cloudlets")
        if not self._data_centers:
            raise ConfigurationError("network has no data centers")

    def __repr__(self) -> str:
        return (
            f"MECNetwork(name={self.name!r}, nodes={self.num_nodes}, "
            f"links={self.num_links}, cloudlets={len(self._cloudlets)}, "
            f"data_centers={len(self._data_centers)})"
        )


__all__ = ["MECNetwork"]

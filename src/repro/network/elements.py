"""Network element types: cloudlets, data centers, switches and links.

A *cloudlet* is an edge server cluster reachable within a few hops of users;
it exposes finite computing capacity ``C(CL_i)`` (VM slots aggregated into an
abstract compute unit) and finite bandwidth capacity ``B(CL_i)``. A *data
center* hosts the original service instances; per Section II.A its capacity
is not a constraint. Plain *switch nodes* only forward traffic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import CapacityError, ConfigurationError
from repro.utils.validation import check_non_negative, check_positive


class NodeKind(enum.Enum):
    """Role of a node in the two-tiered MEC graph."""

    SWITCH = "switch"
    CLOUDLET = "cloudlet"
    DATA_CENTER = "data_center"


@dataclass(frozen=True)
class SwitchNode:
    """A pure forwarding node (GT-ITM switch or testbed hardware switch)."""

    node_id: int
    name: str = ""

    @property
    def kind(self) -> NodeKind:
        return NodeKind.SWITCH


@dataclass
class Cloudlet:
    """An edge cloudlet with finite computing and bandwidth capacities.

    Parameters
    ----------
    node_id:
        Identifier of the graph node the cloudlet is attached to.
    compute_capacity:
        ``C(CL_i)`` — aggregate computing capacity (abstract units; the
        workload generator expresses VM counts in the same unit).
    bandwidth_capacity:
        ``B(CL_i)`` — aggregate ingress/egress bandwidth (Mbps).
    alpha:
        Congestion coefficient of the computing resource, Eq. (1).
    beta:
        Congestion coefficient of the bandwidth resource, Eq. (2).
    bdw_unit_cost:
        The fixed per-provider bandwidth consumption cost ``c_i^bdw``
        *per GB of update traffic*; the cost model multiplies it by the
        provider's update volume and path factor.
    """

    node_id: int
    compute_capacity: float
    bandwidth_capacity: float
    alpha: float = 0.5
    beta: float = 0.5
    bdw_unit_cost: float = 0.08
    name: str = ""

    # Mutable usage accounting (reset via ``release_all``).
    compute_used: float = field(default=0.0, compare=False)
    bandwidth_used: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        check_positive(self.compute_capacity, "compute_capacity")
        check_positive(self.bandwidth_capacity, "bandwidth_capacity")
        check_non_negative(self.alpha, "alpha")
        check_non_negative(self.beta, "beta")
        check_non_negative(self.bdw_unit_cost, "bdw_unit_cost")
        if not self.name:
            self.name = f"CL{self.node_id}"

    @property
    def kind(self) -> NodeKind:
        return NodeKind.CLOUDLET

    @property
    def compute_free(self) -> float:
        return self.compute_capacity - self.compute_used

    @property
    def bandwidth_free(self) -> float:
        return self.bandwidth_capacity - self.bandwidth_used

    def can_host(self, compute_demand: float, bandwidth_demand: float) -> bool:
        """Whether the residual capacities admit the given demands."""
        eps = 1e-9
        return (
            compute_demand <= self.compute_free + eps
            and bandwidth_demand <= self.bandwidth_free + eps
        )

    def allocate(self, compute_demand: float, bandwidth_demand: float) -> None:
        """Reserve capacity; raises :class:`CapacityError` when infeasible."""
        check_non_negative(compute_demand, "compute_demand")
        check_non_negative(bandwidth_demand, "bandwidth_demand")
        if not self.can_host(compute_demand, bandwidth_demand):
            raise CapacityError(
                f"{self.name}: demand (cpu={compute_demand}, bw={bandwidth_demand}) "
                f"exceeds free (cpu={self.compute_free:.3f}, bw={self.bandwidth_free:.3f})"
            )
        self.compute_used += compute_demand
        self.bandwidth_used += bandwidth_demand

    def release(self, compute_demand: float, bandwidth_demand: float) -> None:
        """Return previously allocated capacity."""
        self.compute_used = max(0.0, self.compute_used - compute_demand)
        self.bandwidth_used = max(0.0, self.bandwidth_used - bandwidth_demand)

    def release_all(self) -> None:
        """Drop all usage accounting (start of a fresh assignment)."""
        self.compute_used = 0.0
        self.bandwidth_used = 0.0


@dataclass
class DataCenter:
    """A remote data center. Capacity is unconstrained (Section II.A)."""

    node_id: int
    name: str = ""
    #: Per-GB processing price charged when serving from the remote cloud.
    processing_unit_cost: float = 0.18

    def __post_init__(self) -> None:
        check_non_negative(self.processing_unit_cost, "processing_unit_cost")
        if not self.name:
            self.name = f"DC{self.node_id}"

    @property
    def kind(self) -> NodeKind:
        return NodeKind.DATA_CENTER


@dataclass(frozen=True)
class Link:
    """An undirected network link with a bandwidth capacity and delay."""

    u: int
    v: int
    bandwidth: float = 1000.0  # Mbps
    delay_ms: float = 1.0

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise ConfigurationError(f"self-loop link at node {self.u}")
        check_positive(self.bandwidth, "bandwidth")
        check_non_negative(self.delay_ms, "delay_ms")

    @property
    def endpoints(self) -> tuple:
        return (self.u, self.v)

    def other(self, node: int) -> int:
        """The endpoint opposite ``node``."""
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise ConfigurationError(f"node {node} is not an endpoint of {self}")


__all__ = ["NodeKind", "SwitchNode", "Cloudlet", "DataCenter", "Link"]

"""An AS1755 (Ebone) topology substitute.

The paper's testbed overlay follows the real topology "AS1755" from the
Internet Topology Zoo / Rocketfuel data set [29] — the Ebone European
backbone, commonly reported as 87 routers and 161 links. The data file is not
redistributable here, so :func:`as1755` *constructs* a deterministic graph
with exactly those counts and an ISP-like structure: point-of-presence (PoP)
clusters of 2–6 routers, a well-connected PoP-level core ring with chords,
and intra-PoP meshes. Every node has degree >= 2 (the testbed requires each
switch to reach at least two others).

The substitution is documented in DESIGN.md; the experiments consume only
connectivity and path lengths, which this graph reproduces at the right scale.
"""

from __future__ import annotations

from typing import List, Optional

import networkx as nx

from repro.network.generators import mec_network_from_graph
from repro.network.topology import MECNetwork
from repro.utils.rng import RandomSource, as_rng

AS1755_NODES = 87
AS1755_EDGES = 161

#: PoP sizes (router counts per city) summing to 87; loosely modelled on
#: Ebone's European footprint (large hubs + small regional PoPs).
_POP_SIZES: List[int] = [6, 6, 5, 5, 5, 4, 4, 4, 4, 4, 4, 3, 3, 3, 3, 3, 3, 3, 3, 2, 2, 2, 2, 2, 2]

_SEED = 1755  # fixed: the graph must be identical across runs


def _build_as1755() -> nx.Graph:
    assert sum(_POP_SIZES) == AS1755_NODES
    rng = as_rng(_SEED)
    g = nx.Graph()

    pops: List[List[int]] = []
    nid = 0
    for size in _POP_SIZES:
        members = list(range(nid, nid + size))
        nid += size
        pops.append(members)
        for u in members:
            g.add_node(u, pop=len(pops) - 1)
        # Intra-PoP: ring (mesh for size 2 collapses to one edge).
        if size == 2:
            g.add_edge(members[0], members[1])
        elif size > 2:
            for i in range(size):
                g.add_edge(members[i], members[(i + 1) % size])

    # PoP-level backbone ring through gateway routers (first member of each
    # PoP), so the graph is connected even before chords.
    n_pops = len(pops)
    for i in range(n_pops):
        g.add_edge(pops[i][0], pops[(i + 1) % n_pops][0])

    # Chords between random PoP pairs until the edge budget is met; connect
    # via the second router when available to spread degree.
    while g.number_of_edges() < AS1755_EDGES:
        i, j = rng.choice(n_pops, size=2, replace=False)
        u = pops[i][min(1, len(pops[i]) - 1)]
        v = pops[j][min(1, len(pops[j]) - 1)]
        if not g.has_edge(u, v):
            g.add_edge(u, v)

    assert g.number_of_nodes() == AS1755_NODES
    assert g.number_of_edges() == AS1755_EDGES
    assert nx.is_connected(g)
    assert min(d for _, d in g.degree) >= 2
    for u in g.nodes:
        g.nodes[u]["level"] = "transit" if u in {p[0] for p in pops} else "stub"
    return g


_AS1755_CACHE: Optional[nx.Graph] = None


def as1755() -> nx.Graph:
    """The deterministic AS1755-like backbone graph (87 nodes, 161 edges)."""
    global _AS1755_CACHE
    if _AS1755_CACHE is None:
        _AS1755_CACHE = _build_as1755()
    return _AS1755_CACHE.copy()


def as1755_mec_network(rng: RandomSource = None, **kwargs) -> MECNetwork:
    """AS1755 dressed as a two-tiered MEC network (Section IV.A parameters).

    Keyword arguments pass through to
    :func:`repro.network.generators.mec_network_from_graph`; only the
    capacities and costs are random (under ``rng``), the topology is fixed.
    """
    kwargs.setdefault("name", "as1755")
    return mec_network_from_graph(as1755(), as_rng(rng), **kwargs)


__all__ = ["AS1755_NODES", "AS1755_EDGES", "as1755", "as1755_mec_network"]

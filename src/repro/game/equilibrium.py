"""Nash-equilibrium verification for capacitated singleton games.

A profile is a (constrained, pure) Nash equilibrium of the movable players
when no movable player has a *feasible* unilateral deviation that lowers its
cost by more than ``eps``. Coordinated players are treated as part of the
environment (their strategies are pinned by the Stackelberg leader), which is
exactly the equilibrium notion of Theorem 1.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Optional, Set, Tuple

from repro.game.congestion import SingletonCongestionGame


def best_deviation(
    game: SingletonCongestionGame,
    player: Hashable,
    profile: Mapping[Hashable, Hashable],
) -> Tuple[Optional[Hashable], float]:
    """The player's best feasible deviation and its gain (> 0 = improves).

    Returns ``(None, 0.0)`` when staying put is weakly optimal.
    """
    occ = game.occupancy(profile)
    loads = game.loads(profile)
    current = profile[player]
    current_cost = game.cost(player, current, occ[current])
    best_r: Optional[Hashable] = None
    best_gain = 0.0
    for r in game.resources:
        if r == current:
            continue
        if not game.move_is_feasible(player, r, profile, loads):
            continue
        gain = current_cost - game.cost(player, r, occ.get(r, 0) + 1)
        if gain > best_gain:
            best_gain = gain
            best_r = r
    return best_r, best_gain


def is_nash_equilibrium(
    game: SingletonCongestionGame,
    profile: Mapping[Hashable, Hashable],
    movable: Optional[Iterable[Hashable]] = None,
    eps: float = 1e-7,
) -> bool:
    """Whether no movable player can feasibly improve by more than ``eps``."""
    movable_set: Set[Hashable] = set(movable) if movable is not None else set(game.players)
    for p in movable_set:
        _, gain = best_deviation(game, p, profile)
        if gain > eps:
            return False
    return True


__all__ = ["best_deviation", "is_nash_equilibrium"]

"""The incremental best-response engine.

The naive dynamics in :mod:`repro.game.best_response` re-evaluate the
player-facing cost function resource by resource on every scan and recompute
the Rosenthal potential from scratch once per round.  Both are Python-level
loops over callables, which dominates the wall clock of every
equilibrium-seeking path (LCF's ``information="full"`` mode, the PoA study,
the convergence experiments).

:class:`CompiledGame` evaluates the game's cost structure exactly once —
fixed costs, shared congestion costs at every occupancy, demands and
capacities all become numpy tables — and :func:`incremental_best_response`
runs the same round-robin dynamics on top of array state:

* per-resource occupancy and load vectors are maintained by applying the
  mover's delta (instead of re-aggregating the profile),
* the Rosenthal potential is maintained by a per-move accumulator
  (``Phi`` changes by exactly the mover's cost improvement — the exact
  potential property),
* each best-response scan is one vectorised ``argmin`` over the compiled
  cost row, with the same first-minimum tie-breaking as the naive scan.

The engine is move-for-move equivalent to the naive implementation: same
visiting order, same strict-improvement threshold, same tie-breaking, same
capacity tolerance.  ``tests/game/test_engine_equivalence.py`` pins this
down differentially on randomized markets.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, InfeasibleError
from repro.game.congestion import Profile, SingletonCongestionGame

if TYPE_CHECKING:  # pragma: no cover - cycle guard (market.compiled is upstream)
    from repro.market.compiled import CompiledMarket
from repro.utils.contracts import (
    check_potential_accumulator,
    invariant_capacity_feasible,
    invariant_potential_descends,
    invariants_active,
)
from repro.utils.validation import CAPACITY_EPS

#: Minimum strict cost improvement for a move (mirrors best_response.py).
IMPROVEMENT_EPS = 1e-9


class CompiledGame:
    """Dense-array view of a :class:`SingletonCongestionGame`.

    Tables
    ------
    ``fixed``
        ``(n_players, n_resources)`` — ``fixed_cost(p, r)``.
    ``shared``
        ``(n_resources, n_players + 1)`` — ``shared_cost(r, k)`` in column
        ``k`` (column 0 is unused and zero; occupancy never exceeds the
        player count in a singleton game).
    ``demand``
        ``(n_players, n_resources, dims)`` for capacitated games, else
        ``None``.
    ``capacity``
        ``(n_resources, dims)`` for capacitated games, else ``None``.

    All entries are produced by the exact same ``float(...)`` evaluations
    the naive engine performs, so compiled cost comparisons are bit-equal
    to the naive ones.
    """

    def __init__(self, game: SingletonCongestionGame) -> None:
        self.game = game
        self.players: List[Hashable] = list(game.players)
        self.resources: List[Hashable] = list(game.resources)
        self.player_index: Dict[Hashable, int] = {
            p: i for i, p in enumerate(self.players)
        }
        self.resource_index: Dict[Hashable, int] = {
            r: j for j, r in enumerate(self.resources)
        }
        n, m = len(self.players), len(self.resources)

        self.fixed = np.empty((n, m), dtype=float)
        for i, p in enumerate(self.players):
            for j, r in enumerate(self.resources):
                self.fixed[i, j] = game.fixed_cost(p, r)

        self.shared = np.zeros((m, n + 1), dtype=float)
        for j, r in enumerate(self.resources):
            for k in range(1, n + 1):
                self.shared[j, k] = game.shared_cost(r, k)

        if game.capacitated:
            self.capacity = np.stack(
                [game.capacity_of(r) for r in self.resources]
            ).astype(float)
            dims = self.capacity.shape[1]
            self.demand = np.empty((n, m, dims), dtype=float)
            for i, p in enumerate(self.players):
                for j, r in enumerate(self.resources):
                    self.demand[i, j] = game.demand_of(p, r)
        else:
            self.capacity = None
            self.demand = None

    @classmethod
    def from_market(
        cls, cm: "CompiledMarket", game: SingletonCongestionGame
    ) -> "CompiledGame":
        """Build the game's tables as slices of a :class:`CompiledMarket`.

        The market-bridged game (see :func:`repro.core.bridge.market_game`)
        uses provider ids as players and cloudlet node ids as resources, so
        its tables are row/column selections of the market-wide ones — no
        cost-model re-evaluation at all. Entries are bit-equal to what
        ``CompiledGame(game)`` would compute: the fixed table is the same
        memoised ``fixed_cost`` value, and the shared table is the same
        IEEE product ``(alpha_i + beta_i) * g(k)`` of the same two doubles.
        """
        try:
            rows = [cm.provider_index[p] for p in game.players]
            cols = [cm.cloudlet_index[r] for r in game.resources]
        except KeyError as exc:
            raise ConfigurationError(
                f"game player/resource {exc.args[0]!r} is not part of the compiled market"
            ) from None

        self = cls.__new__(cls)
        self.game = game
        self.players = list(game.players)
        self.resources = list(game.resources)
        self.player_index = {p: i for i, p in enumerate(self.players)}
        self.resource_index = {r: j for j, r in enumerate(self.resources)}
        n, m = len(rows), len(cols)

        self.fixed = cm.fixed[np.ix_(rows, cols)]
        self.shared = np.zeros((m, n + 1), dtype=float)
        self.shared[:, 1:] = cm.coeff[cols, None] * cm.g[None, 1 : n + 1]
        self.capacity = cm.capacity[cols].copy()
        self.demand = np.broadcast_to(
            cm.demand[rows][:, None, :], (n, m, cm.demand.shape[1])
        )
        return self

    # ------------------------------------------------------------------ #
    # State construction
    # ------------------------------------------------------------------ #
    @property
    def n_players(self) -> int:
        return len(self.players)

    @property
    def n_resources(self) -> int:
        return len(self.resources)

    def occupancy_vector(self, profile: Mapping[Hashable, Hashable]) -> np.ndarray:
        """Integer occupancy per resource index."""
        occ = np.zeros(self.n_resources, dtype=np.int64)
        for r in profile.values():
            occ[self.resource_index[r]] += 1
        return occ

    def load_matrix(self, profile: Mapping[Hashable, Hashable]) -> Optional[np.ndarray]:
        """Per-resource load vectors, accumulated in profile order (the
        same addition order as ``game.loads``, so values are bit-equal)."""
        if self.demand is None:
            return None
        loads = np.zeros_like(self.capacity)
        for p, r in profile.items():
            loads[self.resource_index[r]] += self.demand[
                self.player_index[p], self.resource_index[r]
            ]
        return loads

    # ------------------------------------------------------------------ #
    # Vectorised queries
    # ------------------------------------------------------------------ #
    def feasible_mask(self, player_idx: int, loads: Optional[np.ndarray]) -> np.ndarray:
        """Which resources admit the player's demand on top of ``loads``.

        Matches ``game.move_is_feasible`` for resources the player does not
        currently occupy (the best-response scan never queries the current
        one). Uncapacitated games admit everything.
        """
        if self.demand is None:
            return np.ones(self.n_resources, dtype=bool)
        new_load = loads + self.demand[player_idx]
        return np.all(new_load <= self.capacity + CAPACITY_EPS, axis=1)

    def entry_costs(
        self,
        player_idx: int,
        occ: np.ndarray,
        loads: Optional[np.ndarray],
        posted: bool = False,
    ) -> np.ndarray:
        """Cost of joining each resource (infeasible ones are ``+inf``).

        ``posted=True`` evaluates the congestion term at its face value of
        one occupant (the posted-price information model); otherwise the
        player faces the live occupancy plus itself.
        """
        if posted:
            shared = self.shared[:, 1]
        else:
            kcol = np.minimum(occ + 1, self.n_players)
            shared = self.shared[np.arange(self.n_resources), kcol]
        costs = shared + self.fixed[player_idx]
        costs[~self.feasible_mask(player_idx, loads)] = np.inf
        return costs

    def social_cost(self, profile: Mapping[Hashable, Hashable]) -> float:
        """Eq. (6) evaluated from the tables.

        One vectorised gather of the per-player terms, folded left-to-right
        in profile order — bit-equal to ``game.social_cost(profile)``.
        """
        if not profile:
            return 0.0
        rows = np.fromiter(
            (self.player_index[p] for p in profile), dtype=np.int64, count=len(profile)
        )
        cols = np.fromiter(
            (self.resource_index[r] for r in profile.values()),
            dtype=np.int64, count=len(profile),
        )
        occ = np.zeros(self.n_resources, dtype=np.int64)
        np.add.at(occ, cols, 1)
        terms = self.shared[cols, occ[cols]] + self.fixed[rows, cols]
        total = 0.0
        for t in terms.tolist():
            total += t
        return total


@invariant_capacity_feasible()
@invariant_potential_descends()
def incremental_best_response(
    game: SingletonCongestionGame,
    initial_profile: Mapping[Hashable, Hashable],
    movable: Optional[Iterable[Hashable]] = None,
    max_rounds: int = 1000,
    compiled: Optional[CompiledGame] = None,
    record_moves: bool = False,
) -> Tuple[Profile, bool, int, int, List[float], List[Tuple[Hashable, Hashable, Hashable, float]]]:
    """Round-robin best-response dynamics on compiled tables.

    Returns ``(profile, converged, rounds, moves, potential_trace,
    move_log)`` with the same semantics as the naive engine; the potential
    trace is maintained by the per-move accumulator. ``move_log`` holds
    ``(player, old_resource, new_resource, cost_delta)`` tuples when
    ``record_moves`` is set (each ``cost_delta`` is the mover's strict
    improvement, i.e. the exact potential decrease of that move).
    """
    game.validate_profile(initial_profile)
    profile: Profile = dict(initial_profile)
    movable_set = set(movable) if movable is not None else set(game.players)
    unknown = movable_set - set(game.players)
    if unknown:
        raise InfeasibleError(f"movable contains unknown players {sorted(unknown, key=str)}")
    move_order = [p for p in game.players if p in movable_set]

    phi = game.potential(profile)
    trace = [phi]
    moves = 0
    rounds = 0
    converged = not move_order
    move_log: List[Tuple[Hashable, Hashable, Hashable, float]] = []

    if move_order:
        c = compiled if compiled is not None else game.compile()
        occ = c.occupancy_vector(profile)
        loads = c.load_matrix(profile)
        strat = {p: c.resource_index[profile[p]] for p in move_order}
        mover_idx = [c.player_index[p] for p in move_order]
    else:
        c = None

    for rounds in range(1, max_rounds + 1):
        improved = False
        for p, pi in zip(move_order, mover_idx) if move_order else ():
            cur = strat[p]
            current_cost = c.shared[cur, occ[cur]] + c.fixed[pi, cur]
            costs = c.entry_costs(pi, occ, loads)
            costs[cur] = np.inf
            j = int(np.argmin(costs))
            best = costs[j]
            if not best < current_cost - IMPROVEMENT_EPS:
                continue
            # Apply the move delta. The mover's new cost is exactly the
            # selected entry cost, so the exact-potential property gives
            # the accumulator update for free.
            occ[cur] -= 1
            occ[j] += 1
            if loads is not None:
                loads[cur] -= c.demand[pi, cur]
                loads[j] += c.demand[pi, j]
            strat[p] = j
            profile[p] = c.resources[j]
            delta = float(best - current_cost)
            phi += delta
            if record_moves:
                move_log.append((p, c.resources[cur], c.resources[j], delta))
            moves += 1
            improved = True
        trace.append(phi)
        if not improved:
            converged = True
            break

    if invariants_active():
        # The delta updates are exact by the potential property; verify the
        # accumulator against a from-scratch Rosenthal recomputation.
        check_potential_accumulator(game, profile, phi)
    return profile, converged, rounds, moves, trace, move_log


def warm_started_best_response(
    game: SingletonCongestionGame,
    prior_profile: Mapping[Hashable, Hashable],
    scope: str = "queue",
    max_rounds: int = 1000,
    compiled: Optional[CompiledGame] = None,
    record_moves: bool = False,
    engine: str = "incremental",
) -> Tuple[Profile, bool, int, int, List[float], List[Tuple[Hashable, Hashable, Hashable, float]]]:
    """Carry an equilibrium across a market delta instead of restarting cold.

    ``prior_profile`` is the previous (pre-delta) equilibrium; ``game`` is
    the game on the *current* player population. Three phases:

    1. **Survivors keep their strategies** — the prior profile restricted
       to players and resources that still exist, in player order.
    2. **Evictions** — resources whose capacity no longer covers the
       surviving load shed members (largest demand first, the same rule as
       Appro's repair) until feasible; evictees join the entry queue
       behind the arrivals.
    3. **Queue entry + best response** — queued players enter greedily at
       the live occupancies, then round-robin best response runs with
       ``movable`` limited to the queue (``scope="queue"``, the default)
       or open to everyone (``scope="all"``). With ``scope="queue"`` the
       survivors are *pinned*: the dynamics only settle the players the
       delta actually disturbed, which is what makes warm epochs cheap.

    ``engine`` selects the dynamics kernel settling the queue:
    ``"incremental"`` (the per-turn serial engine above, the default) or
    ``"batch"`` (the batch-vectorized kernel of :mod:`repro.game.batch`
    — the same moves bit for bit, priced in bulk; the right choice when
    an epoch replan disturbs many players at once).

    Returns the same ``(profile, converged, rounds, moves, trace,
    move_log)`` tuple as :func:`incremental_best_response`.
    """
    if scope not in ("queue", "all"):
        raise InfeasibleError(
            f"scope must be 'queue' or 'all', got {scope!r}"
        )
    if engine not in ("incremental", "batch"):
        raise ConfigurationError(
            f"engine must be 'incremental' or 'batch', got {engine!r}"
        )
    c = compiled if compiled is not None else game.compile()
    resources = set(game.resources)
    profile: Profile = {
        p: prior_profile[p]
        for p in game.players
        if p in prior_profile and prior_profile[p] in resources
    }
    queue = [p for p in game.players if p not in profile]

    if c.capacity is not None:
        loads = c.load_matrix(profile)
        for j in range(c.n_resources):
            if np.all(loads[j] <= c.capacity[j] + CAPACITY_EPS):
                continue
            members = sorted(
                (p for p, r in profile.items() if c.resource_index[r] == j),
                key=lambda p: -float(np.max(c.demand[c.player_index[p], j])),
            )
            k = 0
            while (
                np.any(loads[j] > c.capacity[j] + CAPACITY_EPS)
                and k < len(members)
            ):
                p = members[k]
                k += 1
                loads[j] -= c.demand[c.player_index[p], j]
                del profile[p]
                queue.append(p)

    occ = c.occupancy_vector(profile)
    live_loads = c.load_matrix(profile)
    for p in queue:
        pi = c.player_index[p]
        costs = c.entry_costs(pi, occ, live_loads)
        j = int(np.argmin(costs))
        if not np.isfinite(costs[j]):
            raise InfeasibleError(
                f"warm start cannot place player {p!r}: no feasible resource"
            )
        profile[p] = c.resources[j]
        occ[j] += 1
        if live_loads is not None:
            live_loads[j] += c.demand[pi, j]

    movable = queue if scope == "queue" else None
    if engine == "batch":
        from repro.game.batch import batch_best_response  # cycle guard

        return batch_best_response(
            game,
            profile,
            movable=movable,
            max_rounds=max_rounds,
            compiled=c,
            record_moves=record_moves,
        )
    return incremental_best_response(
        game,
        profile,
        movable=movable,
        max_rounds=max_rounds,
        compiled=c,
        record_moves=record_moves,
    )


__all__ = [
    "CompiledGame",
    "IMPROVEMENT_EPS",
    "incremental_best_response",
    "warm_started_best_response",
]

"""The Stackelberg layer: pin the coordinated set, equilibrate the rest.

An *approximation-restricted* Stackelberg strategy (Section III.A) prescribes
to each coordinated player the strategy it holds in an approximate social
optimum; the selfish players then settle into a Nash equilibrium around the
pinned players. :func:`play_stackelberg` executes exactly that and reports
the cost split the paper's figures plot (total / coordinated / selfish).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Set

from repro.exceptions import ConfigurationError
from repro.game.best_response import (
    BestResponseResult,
    best_response_dynamics,
    greedy_feasible_profile,
)
from repro.game.congestion import Profile, SingletonCongestionGame
from repro.game.equilibrium import is_nash_equilibrium


@dataclass
class StackelbergOutcome:
    """Result of one Stackelberg play."""

    profile: Profile
    coordinated: Set[Hashable]
    social_cost: float
    coordinated_cost: float
    selfish_cost: float
    is_equilibrium: bool
    dynamics: BestResponseResult

    @property
    def selfish(self) -> Set[Hashable]:
        return set(self.profile) - self.coordinated


def play_stackelberg(
    game: SingletonCongestionGame,
    prescribed: Mapping[Hashable, Hashable],
    coordinated: Iterable[Hashable],
    initial_selfish: Optional[Mapping[Hashable, Hashable]] = None,
    max_rounds: int = 1000,
) -> StackelbergOutcome:
    """Pin ``coordinated`` players to their ``prescribed`` strategies and run
    best-response dynamics over the remaining players.

    Parameters
    ----------
    prescribed:
        Strategy per coordinated player (typically the Appro solution).
    initial_selfish:
        Optional starting strategies for the selfish players; when omitted
        they enter sequentially via cheapest-feasible placement, which
        models providers arriving at the market one by one.
    """
    coordinated_set = set(coordinated)
    missing = coordinated_set - set(prescribed)
    if missing:
        raise ConfigurationError(
            f"coordinated players {sorted(missing, key=str)} lack a prescribed strategy"
        )

    base: Profile = {p: prescribed[p] for p in coordinated_set}
    selfish_players = [p for p in game.players if p not in coordinated_set]

    if initial_selfish is None:
        profile = greedy_feasible_profile(game, players=selfish_players, base_profile=base)
    else:
        profile = dict(base)
        for p in selfish_players:
            if p not in initial_selfish:
                raise ConfigurationError(f"initial_selfish misses player {p!r}")
            profile[p] = initial_selfish[p]

    result = best_response_dynamics(
        game, profile, movable=selfish_players, max_rounds=max_rounds
    )
    final = result.profile
    occ = game.occupancy(final)
    coordinated_cost = sum(
        game.cost(p, final[p], occ[final[p]]) for p in coordinated_set
    )
    selfish_cost = sum(game.cost(p, final[p], occ[final[p]]) for p in selfish_players)
    return StackelbergOutcome(
        profile=final,
        coordinated=coordinated_set,
        social_cost=coordinated_cost + selfish_cost,
        coordinated_cost=coordinated_cost,
        selfish_cost=selfish_cost,
        is_equilibrium=is_nash_equilibrium(game, final, movable=selfish_players),
        dynamics=result,
    )


__all__ = ["StackelbergOutcome", "play_stackelberg"]

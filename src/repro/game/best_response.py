"""Best-response dynamics for capacitated singleton congestion games.

Movable players take turns (round-robin, deterministic order) switching to
their cheapest feasible resource; the dynamics stop when a full round passes
without an improving move. Because the game admits Rosenthal's exact
potential, every improving move strictly decreases the potential, so the
dynamics terminate at a (constrained) Nash equilibrium of the movable
players (Lemma 3).

Three engines implement the same dynamics:

* ``"incremental"`` (default) — the compiled-table engine of
  :mod:`repro.game.engine`: costs are precomputed into numpy arrays,
  loads/occupancy/potential are maintained by per-move deltas, and each
  scan is a vectorised argmin. Fast, and move-for-move equivalent.
* ``"batch"`` — the batch-vectorized kernel of :mod:`repro.game.batch`:
  every round prices **all** players' candidate moves as one
  (players x resources) delta-cost matrix with masked infeasibility, and
  commits proposals in deterministic priority order (Jacobi propose,
  Gauss-Seidel commit). Replays the serial move sequence bit for bit;
  the fastest path at 1000-node / 10^4-provider scale.
* ``"naive"`` — the reference implementation below: per-resource Python
  scans and a full Rosenthal-potential recomputation every round. Kept as
  the differential-testing oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, ConvergenceError, InfeasibleError
from repro.game.batch import batch_best_response
from repro.game.congestion import Profile, SingletonCongestionGame
from repro.game.engine import CompiledGame, incremental_best_response
from repro.utils.contracts import (
    invariant_capacity_feasible,
    invariant_potential_descends,
)

_IMPROVEMENT_EPS = 1e-9

ENGINES = ("incremental", "naive", "batch")

#: The engines backed by compiled tables (accept a prebuilt ``compiled=``).
_COMPILED_ENGINES = {
    "incremental": incremental_best_response,
    "batch": batch_best_response,
}


@dataclass
class BestResponseResult:
    """Outcome of a best-response run."""

    profile: Profile
    converged: bool
    rounds: int
    moves: int
    #: Rosenthal potential sampled after each round (index 0 = initial).
    potential_trace: List[float] = field(default_factory=list)
    #: Per-move records ``(player, old, new, cost_delta)``; filled only
    #: when the dynamics ran with ``record_moves=True``.
    move_log: List[Tuple[Hashable, Hashable, Hashable, float]] = field(
        default_factory=list
    )

    @property
    def final_potential(self) -> float:
        return self.potential_trace[-1] if self.potential_trace else float("nan")


def greedy_feasible_profile(
    game: SingletonCongestionGame,
    players: Optional[Sequence[Hashable]] = None,
    base_profile: Optional[Mapping[Hashable, Hashable]] = None,
    order: Optional[Sequence[Hashable]] = None,
) -> Profile:
    """Build a feasible profile by sequential cheapest-feasible placement.

    ``base_profile`` holds already-placed players (e.g. the coordinated set);
    the remaining ``players`` (default: all unplaced) are inserted one at a
    time onto the resource minimising their cost at the occupancy they would
    create. Raises :class:`InfeasibleError` when someone cannot be placed.
    """
    profile: Profile = dict(base_profile) if base_profile else {}
    todo = list(players) if players is not None else [
        p for p in game.players if p not in profile
    ]
    if order is not None:
        order_index = {p: k for k, p in enumerate(order)}
        todo.sort(key=lambda p: order_index.get(p, len(order_index)))

    loads = game.loads(profile)
    occ = game.occupancy(profile)
    for p in todo:
        best_r = None
        best_cost = np.inf
        for r in game.resources:
            if not game.move_is_feasible(p, r, profile, loads):
                continue
            c = game.cost(p, r, occ.get(r, 0) + 1)
            if c < best_cost:
                best_cost = c
                best_r = r
        if best_r is None:
            raise InfeasibleError(f"no feasible resource for player {p!r}")
        profile[p] = best_r
        occ[best_r] = occ.get(best_r, 0) + 1
        if game.capacitated:
            d = game.demand_of(p, best_r)
            loads[best_r] = loads.get(best_r, np.zeros_like(d)) + d
    return profile


def _best_feasible_response(
    game: SingletonCongestionGame,
    player: Hashable,
    profile: Profile,
    loads: Dict[Hashable, np.ndarray],
    occ: Dict[Hashable, int],
) -> Optional[Hashable]:
    """The player's cheapest feasible resource, or ``None`` when staying put
    is (weakly) best. Deviating to ``r`` faces occupancy ``occ[r] + 1``."""
    current = profile[player]
    current_cost = game.cost(player, current, occ[current])
    best_r = None
    best_cost = current_cost - _IMPROVEMENT_EPS
    for r in game.resources:
        if r == current:
            continue
        if not game.move_is_feasible(player, r, profile, loads):
            continue
        c = game.cost(player, r, occ.get(r, 0) + 1)
        if c < best_cost:
            best_cost = c
            best_r = r
    return best_r


@invariant_capacity_feasible()
@invariant_potential_descends()
def best_response_dynamics(
    game: SingletonCongestionGame,
    initial_profile: Mapping[Hashable, Hashable],
    movable: Optional[Iterable[Hashable]] = None,
    max_rounds: int = 1000,
    raise_on_nonconvergence: bool = False,
    engine: str = "incremental",
    compiled: Optional[CompiledGame] = None,
    record_moves: bool = False,
) -> BestResponseResult:
    """Run round-robin best-response dynamics from ``initial_profile``.

    Parameters
    ----------
    movable:
        The players allowed to deviate; defaults to all. Coordinated
        (Stackelberg-pinned) players are simply excluded from this set.
    max_rounds:
        Safety bound; the potential argument guarantees termination, the
        bound only protects against ill-formed cost functions.
    raise_on_nonconvergence:
        When ``True``, raises :class:`ConvergenceError` instead of returning
        ``converged=False``.
    engine:
        ``"incremental"`` (compiled tables, per-move deltas — the
        default), ``"batch"`` (one vectorised delta-cost matrix per round
        with Jacobi-propose/Gauss-Seidel-commit conflict resolution; see
        :mod:`repro.game.batch`) or ``"naive"`` (the reference
        full-recompute implementation). All three produce the same
        profiles, move counts and convergence flags; the potentials agree
        to floating-point accumulation accuracy — and the two compiled
        engines agree with each other bit for bit.
    compiled:
        An optional pre-built :class:`CompiledGame` for the incremental
        engine (lets callers amortise table construction across runs).
    record_moves:
        Fill :attr:`BestResponseResult.move_log` with one record per
        improving move.
    """
    if engine not in ENGINES:
        raise ConfigurationError(f"unknown engine {engine!r}; choose from {ENGINES}")
    if engine in _COMPILED_ENGINES:
        profile, converged, rounds, moves, trace, move_log = _COMPILED_ENGINES[engine](
            game,
            initial_profile,
            movable=movable,
            max_rounds=max_rounds,
            compiled=compiled,
            record_moves=record_moves,
        )
        if not converged and raise_on_nonconvergence:
            raise ConvergenceError(
                f"best-response dynamics did not converge in {max_rounds} rounds"
            )
        return BestResponseResult(
            profile=profile,
            converged=converged,
            rounds=rounds,
            moves=moves,
            potential_trace=trace,
            move_log=move_log,
        )

    game.validate_profile(initial_profile)
    profile: Profile = dict(initial_profile)
    movable_set: Set[Hashable] = set(movable) if movable is not None else set(game.players)
    unknown = movable_set - set(game.players)
    if unknown:
        raise InfeasibleError(f"movable contains unknown players {sorted(unknown, key=str)}")

    move_order = [p for p in game.players if p in movable_set]
    loads = game.loads(profile)
    occ = game.occupancy(profile)
    trace = [game.potential(profile)]
    moves = 0
    rounds = 0
    converged = not move_order  # nothing to move: trivially converged
    move_log: List[Tuple[Hashable, Hashable, Hashable, float]] = []

    for rounds in range(1, max_rounds + 1):
        improved = False
        for p in move_order:
            r_new = _best_feasible_response(game, p, profile, loads, occ)
            if r_new is None:
                continue
            r_old = profile[p]
            if record_moves:
                old_cost = game.cost(p, r_old, occ[r_old])
            profile[p] = r_new
            occ[r_old] -= 1
            if occ[r_old] == 0:
                del occ[r_old]
            occ[r_new] = occ.get(r_new, 0) + 1
            if game.capacitated:
                loads[r_old] = loads[r_old] - game.demand_of(p, r_old)
                d = game.demand_of(p, r_new)
                loads[r_new] = loads.get(r_new, np.zeros_like(d)) + d
            if record_moves:
                new_cost = game.cost(p, r_new, occ[r_new])
                move_log.append((p, r_old, r_new, new_cost - old_cost))
            moves += 1
            improved = True
        trace.append(game.potential(profile))
        if not improved:
            converged = True
            break

    if not converged and raise_on_nonconvergence:
        raise ConvergenceError(
            f"best-response dynamics did not converge in {max_rounds} rounds"
        )
    return BestResponseResult(
        profile=profile,
        converged=converged,
        rounds=rounds,
        moves=moves,
        potential_trace=trace,
        move_log=move_log,
    )


__all__ = [
    "ENGINES",
    "BestResponseResult",
    "best_response_dynamics",
    "greedy_feasible_profile",
]

"""Capacitated singleton congestion games.

The game ``Gamma(N, CL, (sigma_l), (c_i))`` of Section II.E: players are
providers, resources are cloudlets, a strategy is one resource, and player
``l``'s cost on resource ``i`` at occupancy ``k`` is

``cost(l, i, k) = shared(i, k) + fixed(l, i)``

with ``shared`` non-decreasing in ``k`` and identical for all players. Such
games are exact potential games: Rosenthal's potential

``Phi(sigma) = sum_i sum_{k=1}^{occ_i} shared(i, k) + sum_l fixed(l, sigma_l)``

decreases by exactly the mover's cost improvement under any unilateral move,
which is what makes best-response dynamics converge (Lemma 3 relies on the
affine special case; we keep the general statement).

Resources may carry multi-dimensional capacities and players
multi-dimensional demands (compute and bandwidth in the MEC instantiation);
a strategy is feasible when the residual capacity admits the demand.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
)

import numpy as np

from repro.exceptions import CapacityError, ConfigurationError
from repro.utils.validation import CAPACITY_EPS

if TYPE_CHECKING:  # pragma: no cover - cycle guard (engine imports us)
    from repro.game.engine import CompiledGame

#: A pure strategy profile: player id -> resource id.
Profile = Dict[Hashable, Hashable]


class SingletonCongestionGame:
    """A capacitated singleton congestion game.

    Parameters
    ----------
    players:
        Hashable player ids.
    resources:
        Hashable resource ids.
    shared_cost:
        ``shared(resource, occupancy) -> float`` — anonymous congestion cost,
        non-decreasing in occupancy (``occupancy >= 1``).
    fixed_cost:
        ``fixed(player, resource) -> float`` — player-specific standalone
        cost of the resource (may be ``inf`` to forbid the pair).
    demand:
        Optional ``demand(player, resource) -> np.ndarray`` of resource
        consumption. ``None`` disables capacity constraints.
    capacity:
        Optional ``capacity(resource) -> np.ndarray``; required iff
        ``demand`` is given.
    """

    def __init__(
        self,
        players: Sequence[Hashable],
        resources: Sequence[Hashable],
        shared_cost: Callable[[Hashable, int], float],
        fixed_cost: Callable[[Hashable, Hashable], float],
        demand: Optional[Callable[[Hashable, Hashable], np.ndarray]] = None,
        capacity: Optional[Callable[[Hashable], np.ndarray]] = None,
    ) -> None:
        if not players:
            raise ConfigurationError("game needs at least one player")
        if not resources:
            raise ConfigurationError("game needs at least one resource")
        if len(set(players)) != len(players):
            raise ConfigurationError("player ids must be unique")
        if len(set(resources)) != len(resources):
            raise ConfigurationError("resource ids must be unique")
        if (demand is None) != (capacity is None):
            raise ConfigurationError("demand and capacity must be given together")

        self.players = list(players)
        self.resources = list(resources)
        self._shared = shared_cost
        self._fixed = fixed_cost
        self._demand = demand
        self._capacity = capacity
        #: Optional hook replacing the generic table build in :meth:`compile`
        #: — the market bridge installs one that slices the market-wide
        #: :class:`~repro.market.compiled.CompiledMarket` instead of
        #: re-evaluating the cost callables pair by pair.
        self.compiled_factory: Optional[
            Callable[["SingletonCongestionGame"], "CompiledGame"]
        ] = None
        self._compiled_cache: Optional["CompiledGame"] = None

    # ------------------------------------------------------------------ #
    # Costs
    # ------------------------------------------------------------------ #
    def shared_cost(self, resource: Hashable, occupancy: int) -> float:
        if occupancy < 1:
            raise ValueError(f"occupancy must be >= 1, got {occupancy}")
        return float(self._shared(resource, occupancy))

    def fixed_cost(self, player: Hashable, resource: Hashable) -> float:
        return float(self._fixed(player, resource))

    def cost(self, player: Hashable, resource: Hashable, occupancy: int) -> float:
        """Player ``l``'s cost on ``resource`` at total occupancy ``k``
        (including the player itself)."""
        return self.shared_cost(resource, occupancy) + self.fixed_cost(player, resource)

    # ------------------------------------------------------------------ #
    # Profiles
    # ------------------------------------------------------------------ #
    def occupancy(self, profile: Mapping[Hashable, Hashable]) -> Dict[Hashable, int]:
        counts: Dict[Hashable, int] = {}
        for r in profile.values():
            counts[r] = counts.get(r, 0) + 1
        return counts

    def loads(self, profile: Mapping[Hashable, Hashable]) -> Dict[Hashable, np.ndarray]:
        """Per-resource accumulated demand vectors (capacitated games)."""
        if self._demand is None:
            return {}
        loads: Dict[Hashable, np.ndarray] = {}
        for p, r in profile.items():
            d = np.asarray(self._demand(p, r), dtype=float)
            if r in loads:
                loads[r] = loads[r] + d
            else:
                loads[r] = d.copy()
        return loads

    def player_cost(self, player: Hashable, profile: Mapping[Hashable, Hashable]) -> float:
        """``c_l(sigma)`` — the player's cost under a full profile."""
        resource = profile[player]
        return self.cost(player, resource, self.occupancy(profile)[resource])

    def social_cost(self, profile: Mapping[Hashable, Hashable]) -> float:
        """Eq. (6): the sum of all players' costs."""
        occ = self.occupancy(profile)
        return sum(self.cost(p, r, occ[r]) for p, r in profile.items())

    def potential(self, profile: Mapping[Hashable, Hashable]) -> float:
        """Rosenthal's exact potential ``Phi`` (see module docstring)."""
        occ = self.occupancy(profile)
        phi = 0.0
        for r, k in occ.items():
            phi += sum(self.shared_cost(r, j) for j in range(1, k + 1))
        for p, r in profile.items():
            phi += self.fixed_cost(p, r)
        return phi

    # ------------------------------------------------------------------ #
    # Feasibility
    # ------------------------------------------------------------------ #
    @property
    def capacitated(self) -> bool:
        return self._demand is not None

    def demand_of(self, player: Hashable, resource: Hashable) -> np.ndarray:
        if self._demand is None:
            raise ConfigurationError("game has no capacity constraints")
        return np.asarray(self._demand(player, resource), dtype=float)

    def capacity_of(self, resource: Hashable) -> np.ndarray:
        if self._capacity is None:
            raise ConfigurationError("game has no capacity constraints")
        return np.asarray(self._capacity(resource), dtype=float)

    def move_is_feasible(
        self,
        player: Hashable,
        resource: Hashable,
        profile: Mapping[Hashable, Hashable],
        loads: Optional[Dict[Hashable, np.ndarray]] = None,
    ) -> bool:
        """Whether ``player`` may deviate to ``resource`` given the others'
        current usage (the player's own demand is removed first)."""
        if np.isinf(self.fixed_cost(player, resource)):
            return False
        if self._demand is None:
            return True
        if loads is None:
            loads = self.loads(profile)
        current = profile.get(player)
        load = loads.get(resource, np.zeros_like(self.capacity_of(resource))).copy()
        if current == resource:
            load = load - self.demand_of(player, resource)
        new_load = load + self.demand_of(player, resource)
        return bool(np.all(new_load <= self.capacity_of(resource) + CAPACITY_EPS))

    def validate_profile(self, profile: Mapping[Hashable, Hashable]) -> None:
        """Check completeness and capacity feasibility of a profile."""
        missing = set(self.players) - set(profile)
        if missing:
            raise ConfigurationError(f"profile misses players {sorted(missing, key=str)}")
        unknown = set(profile) - set(self.players)
        if unknown:
            raise ConfigurationError(f"profile has unknown players {sorted(unknown, key=str)}")
        if self._demand is not None:
            for r, load in self.loads(profile).items():
                cap = self.capacity_of(r)
                if np.any(load > cap + CAPACITY_EPS):
                    raise CapacityError(
                        f"resource {r!r} overloaded: load {load} > capacity {cap}"
                    )

    # ------------------------------------------------------------------ #
    # Compilation
    # ------------------------------------------------------------------ #
    def compile(self) -> "CompiledGame":
        """Precompute the game's cost/demand/capacity tables.

        The returned :class:`~repro.game.engine.CompiledGame` backs the
        incremental best-response engine: all ``fixed_cost`` /
        ``shared_cost`` / ``demand`` / ``capacity`` evaluations are done
        once up front and later queries are vectorised array lookups.

        The result is cached on the game (the cost structure is immutable
        once constructed); a :attr:`compiled_factory`, when installed,
        supplies the tables instead of the generic per-pair build.
        """
        if self._compiled_cache is None:
            if self.compiled_factory is not None:
                self._compiled_cache = self.compiled_factory(self)
            else:
                from repro.game.engine import CompiledGame

                self._compiled_cache = CompiledGame(self)
        return self._compiled_cache


__all__ = ["Profile", "SingletonCongestionGame"]

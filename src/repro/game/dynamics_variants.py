"""Alternative improvement dynamics for congestion games.

:mod:`repro.game.best_response` runs deterministic round-robin best
responses. This module adds the two classic variants used to study
convergence speed in potential games:

* **better-response** — the mover takes the *first* improving resource
  (cheaper per move, possibly more moves overall);
* **random-order best response** — the player order is reshuffled every
  round (removes order artifacts; used for equilibrium-selection studies).

All variants share the Rosenthal-potential convergence argument, so they
terminate at (the same set of) pure Nash equilibria; the fixed points only
differ in *which* equilibrium is selected.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Set

import numpy as np

from repro.exceptions import InfeasibleError
from repro.game.best_response import BestResponseResult, _IMPROVEMENT_EPS
from repro.game.congestion import Profile, SingletonCongestionGame
from repro.utils.rng import RandomSource, as_rng


def _first_improving_response(
    game: SingletonCongestionGame,
    player: Hashable,
    profile: Profile,
    loads: Dict[Hashable, np.ndarray],
    occ: Dict[Hashable, int],
) -> Optional[Hashable]:
    """The first feasible resource strictly cheaper than the current one
    (deterministic resource order)."""
    current = profile[player]
    current_cost = game.cost(player, current, occ[current])
    for resource in game.resources:
        if resource == current:
            continue
        if not game.move_is_feasible(player, resource, profile, loads):
            continue
        if game.cost(player, resource, occ.get(resource, 0) + 1) < (
            current_cost - _IMPROVEMENT_EPS
        ):
            return resource
    return None


def _best_response(
    game: SingletonCongestionGame,
    player: Hashable,
    profile: Profile,
    loads: Dict[Hashable, np.ndarray],
    occ: Dict[Hashable, int],
) -> Optional[Hashable]:
    current = profile[player]
    best_cost = game.cost(player, current, occ[current]) - _IMPROVEMENT_EPS
    best_resource = None
    for resource in game.resources:
        if resource == current:
            continue
        if not game.move_is_feasible(player, resource, profile, loads):
            continue
        cost = game.cost(player, resource, occ.get(resource, 0) + 1)
        if cost < best_cost:
            best_cost = cost
            best_resource = resource
    return best_resource


def improvement_dynamics(
    game: SingletonCongestionGame,
    initial_profile: Mapping[Hashable, Hashable],
    variant: str = "better",
    movable: Optional[Iterable[Hashable]] = None,
    max_rounds: int = 1000,
    rng: RandomSource = None,
) -> BestResponseResult:
    """Run an improvement dynamic to a pure Nash equilibrium.

    ``variant``:

    * ``"better"`` — first improving move, round-robin order;
    * ``"best_random_order"`` — best responses, order reshuffled per round.
    """
    if variant not in ("better", "best_random_order"):
        raise InfeasibleError(f"unknown variant {variant!r}")
    game.validate_profile(initial_profile)
    profile: Profile = dict(initial_profile)
    movable_set: Set[Hashable] = (
        set(movable) if movable is not None else set(game.players)
    )
    unknown = movable_set - set(game.players)
    if unknown:
        raise InfeasibleError(f"movable contains unknown players {sorted(unknown, key=str)}")
    rng = as_rng(rng)
    responder = (
        _first_improving_response if variant == "better" else _best_response
    )

    base_order = [p for p in game.players if p in movable_set]
    loads = game.loads(profile)
    occ = game.occupancy(profile)
    trace = [game.potential(profile)]
    moves = 0
    rounds = 0
    converged = not base_order

    for rounds in range(1, max_rounds + 1):
        order = list(base_order)
        if variant == "best_random_order":
            rng.shuffle(order)
        improved = False
        for player in order:
            target = responder(game, player, profile, loads, occ)
            if target is None:
                continue
            old = profile[player]
            profile[player] = target
            occ[old] -= 1
            if occ[old] == 0:
                del occ[old]
            occ[target] = occ.get(target, 0) + 1
            if game.capacitated:
                loads[old] = loads[old] - game.demand_of(player, old)
                d = game.demand_of(player, target)
                loads[target] = loads.get(target, np.zeros_like(d)) + d
            moves += 1
            improved = True
        trace.append(game.potential(profile))
        if not improved:
            converged = True
            break

    return BestResponseResult(
        profile=profile,
        converged=converged,
        rounds=rounds,
        moves=moves,
        potential_trace=trace,
    )


__all__ = ["improvement_dynamics"]

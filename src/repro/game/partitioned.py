"""Partitioned best-response equilibria over region shards.

The driver consumes the sharding layer of :mod:`repro.market.shard` and
runs the paper's best-response dynamics as a two-level fixed point:

1. **Interior phase** — each shard settles its interior providers on its
   own :class:`~repro.market.compiled.CompiledMarket` sub-view with the
   batch kernel, boundary providers currently cached on the shard pinned
   in place. Congestion is per-cloudlet, so a shard's occupancies are
   *exact* — the only coupling across shards is boundary providers
   wanting to move between them. Shards are independent and run either
   serially (deterministic reference) or concurrently on a
   :class:`~repro.runtime.Runtime` — blob-published sub-views,
   persistent workers, bit-identical merge.
2. **Boundary phase** — one batch best-response pass over the *global*
   tables with only the boundary providers movable, re-pricing their
   cross-shard options against the frozen interiors.

The loop repeats until a full iteration commits no move (or the
``boundary_rounds`` cap is hit), then the result is *certified*: one
vectorised Jacobi propose over the movable population confirms that no
player can strictly improve — a certified profile is a global Nash
equilibrium of the market game, not merely a fixed point of the loop.

Tolerance semantics
-------------------
With one shard the loop degenerates to the global batch engine — same
tables (bit-equal sub-view), same player order, same column order, same
tie-breaking — so the result is **bit-identical**; the differential
lockdown in ``tests/game/test_partitioned.py`` pins this. With several
shards, the interleaving of commits differs from the global round-robin
schedule, so the dynamics may settle in a *different* Nash equilibrium
of the same potential game. Both endpoints are certified equilibria;
their social costs agree within :data:`BOUNDARY_TOLERANCE` on the test
topologies (documented in ``docs/sharding.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    Final,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    TYPE_CHECKING,
)

import numpy as np

from repro.exceptions import ConfigurationError
from repro.game.batch import _BatchState, batch_best_response
from repro.game.congestion import Profile, SingletonCongestionGame
from repro.game.engine import IMPROVEMENT_EPS, CompiledGame
from repro.market.compiled import CompiledMarket
from repro.market.shard import (
    MarketPartition,
    ShardClassification,
    classify_providers,
    partition_market,
    shard_view,
)
from repro.runtime.transport import BlobRef, fetch_blob
from repro.utils.contracts import (
    _second_arg,
    _third_arg,
    invariant_capacity_feasible,
    invariant_shard_ownership,
)

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.market.market import ServiceMarket
    from repro.runtime import Runtime

#: Documented relative tolerance between the sharded and the global
#: equilibrium's social cost on multi-shard topologies. Both are
#: *certified* Nash equilibria of the same exact-potential game; they may
#: sit in different basins, and on the test topologies their social costs
#: agree within this bound (single-shard runs are bit-identical instead).
BOUNDARY_TOLERANCE: Final[float] = 0.10


class _TableGame(SingletonCongestionGame):
    """A market game whose aggregate queries read compiled tables.

    The per-pair cost closures are the usual single-entry gathers of the
    :class:`CompiledMarket` tables (bit-equal to the market-bridged
    game's cost-model values — ``CompiledMarket.verify_against`` pins the
    tables). On top of that, the O(n) aggregate queries the batch kernel
    issues once per call — ``loads``, ``validate_profile``,
    ``potential`` — are overridden with vectorised table reads: the
    closure loops are what dominated the sharded wall clock (a
    partitioned run makes 10-20 kernel calls where the global engine
    makes one). ``loads`` accumulates with ``np.add.at``, which applies
    repeated indices in order of appearance — the same addition order,
    and hence the same floats, as the inherited profile-order loop.
    """

    def __init__(self, cm: CompiledMarket, players: Sequence[int]) -> None:
        g_top = len(cm.g) - 1

        def shared(node: int, occupancy: int) -> float:
            return float(
                cm.shared[cm.cloudlet_index[node], min(occupancy, g_top)]
            )

        def fixed(provider_id: int, node: int) -> float:
            return float(
                cm.fixed[cm.provider_index[provider_id], cm.cloudlet_index[node]]
            )

        def demand(provider_id: int, node: int) -> np.ndarray:
            return cm.demand[cm.provider_index[provider_id]].copy()

        def capacity(node: int) -> np.ndarray:
            return cm.capacity[cm.cloudlet_index[node]].copy()

        super().__init__(
            players=list(players),
            resources=list(cm.cloudlet_nodes),
            shared_cost=shared,
            fixed_cost=fixed,
            demand=demand,
            capacity=capacity,
        )
        self._cm = cm
        self.compiled_factory = lambda g: CompiledGame.from_market(cm, g)

    def _gather(self, profile: Mapping[int, int]) -> Tuple[np.ndarray, np.ndarray]:
        cm = self._cm
        rows = np.fromiter(
            (cm.provider_index[p] for p in profile),
            dtype=np.int64,
            count=len(profile),
        )
        cols = np.fromiter(
            (cm.cloudlet_index[r] for r in profile.values()),
            dtype=np.int64,
            count=len(profile),
        )
        return rows, cols

    def loads(self, profile: Mapping[int, int]) -> Dict[int, np.ndarray]:
        if not profile:
            return {}
        cm = self._cm
        rows, cols = self._gather(profile)
        acc = np.zeros_like(cm.capacity)
        np.add.at(acc, cols, cm.demand[rows])
        occupied = np.unique(cols)
        return {cm.cloudlet_nodes[j]: acc[j].copy() for j in occupied.tolist()}

    def potential(self, profile: Mapping[int, int]) -> float:
        cm = self._cm
        if not profile:
            return 0.0
        rows, cols = self._gather(profile)
        occ = np.bincount(cols, minlength=cm.n_cloudlets)
        phi = 0.0
        for j in np.flatnonzero(occ).tolist():
            phi += float(np.sum(cm.shared[j, 1 : occ[j] + 1]))
        phi += float(np.sum(cm.fixed[rows, cols]))
        return phi


def game_from_compiled(
    cm: CompiledMarket, players: Optional[Sequence[int]] = None
) -> SingletonCongestionGame:
    """The market congestion game read directly off compiled tables.

    Cost values are bit-equal to :func:`repro.core.bridge.market_game`'s
    (same memoised table floats), the installed ``compiled_factory``
    slices the tables wholesale, and the O(n) aggregate queries are
    vectorised (see :class:`_TableGame`). It is how a worker process
    turns a shipped shard sub-view back into a playable game without
    holding the :class:`ServiceMarket` (whose cost-model closures do not
    pickle).
    """
    if players is None:
        # ``provider_ids`` is the live id list (tombstoned rows removed).
        players = list(cm.provider_ids)
    return _TableGame(cm, players)


def certify_equilibrium(
    game: SingletonCongestionGame,
    profile: Mapping[int, int],
    movable: Optional[Iterable[int]] = None,
    compiled: Optional[CompiledGame] = None,
) -> bool:
    """One vectorised Jacobi propose: can any movable player strictly
    improve?  ``False`` means the profile is not a Nash equilibrium of
    ``game`` (restricted to the movable population)."""
    movable_set = set(movable) if movable is not None else set(game.players)
    move_order = [p for p in game.players if p in movable_set]
    if not move_order:
        return True
    c = compiled if compiled is not None else game.compile()
    state = _BatchState(c, dict(profile), move_order)
    _targets, best, cur_cost = state.propose(0)
    return not bool(np.any(best < cur_cost - IMPROVEMENT_EPS))


def _settle_shard(
    sub_cm: CompiledMarket,
    sub_profile: Profile,
    movable: Sequence[int],
    max_rounds: int,
) -> Tuple[Profile, int]:
    """Settle one shard's interior providers on its sub-view tables."""
    game = game_from_compiled(sub_cm, players=sorted(sub_profile))
    profile, _converged, _rounds, moves, _trace, _log = batch_best_response(
        game,
        sub_profile,
        movable=movable,
        max_rounds=max_rounds,
        compiled=game.compile(),
    )
    return profile, moves


def _shard_task(
    task: Tuple[BlobRef, int, Tuple[Tuple[int, int], ...], Tuple[int, ...], int],
) -> Tuple[int, Tuple[Tuple[int, int], ...], int]:
    """Worker body for one shard's interior settle.

    ``task`` is ``(blob ref, shard id, profile items, movable ids,
    max_rounds)`` — the heavy sub-view travels by reference (fetched and
    memoized per worker by :func:`repro.runtime.fetch_blob`), the task
    payload is a few tuples. Pure: reads the blob, returns the settled
    items; no module state is written besides the fetch memo.
    """
    ref, shard_id, items, movable, max_rounds = task
    sub_cm = fetch_blob(ref)
    profile, moves = _settle_shard(sub_cm, dict(items), list(movable), max_rounds)
    return shard_id, tuple(sorted(profile.items())), moves


@dataclass(frozen=True)
class PartitionedResult:
    """Outcome of one partitioned equilibrium computation."""

    #: The settled placement, provider id -> cloudlet node.
    profile: Dict[int, int]
    #: Did a full interior+boundary iteration commit zero moves before
    #: the ``boundary_rounds`` cap?
    converged: bool
    #: Boundary-loop iterations executed.
    rounds: int
    #: Moves committed inside shard interiors / by boundary providers.
    interior_moves: int
    boundary_moves: int
    #: Did the final Jacobi propose confirm a global Nash equilibrium?
    certified: bool
    #: Eq. (6) social cost of the settled placement (global tables).
    social_cost: float
    partition: MarketPartition
    classification: ShardClassification = field(repr=False)

    @property
    def moves(self) -> int:
        return self.interior_moves + self.boundary_moves


@invariant_capacity_feasible()
@invariant_shard_ownership(
    get_partition=_second_arg, get_classification=_third_arg
)
def _reconcile(
    market: "ServiceMarket",
    partition: MarketPartition,
    classification: ShardClassification,
    cm: CompiledMarket,
    profile: Profile,
    movable_set: set,
    max_rounds: int,
    boundary_rounds: int,
    runtime: Optional["Runtime"],
    blob_seq: int,
    cache: Optional[Dict[object, object]],
) -> PartitionedResult:
    """The bounded interior/boundary fixed-point loop (see module doc).

    Decorated with the capacity contract (market-form, against the first
    argument) and the shard-ownership contract (partition/classification
    from the second/third arguments) — both armed by
    ``REPRO_DEBUG_INVARIANTS=1``.
    """
    if not profile:
        return PartitionedResult(
            profile={},
            converged=True,
            rounds=0,
            interior_moves=0,
            boundary_moves=0,
            certified=True,
            social_cost=0.0,
            partition=partition,
            classification=classification,
        )

    if cache is None:
        cache = {}

    def view_of(s: int) -> CompiledMarket:
        key = ("view", s, blob_seq)
        if key not in cache:
            cache[key] = shard_view(cm, partition, s, classification)
        return cache[key]

    boundary_movable = sorted(set(classification.boundary) & movable_set)
    # The global boundary game is built once per (table state, placed
    # population): the population never changes inside the loop, only
    # positions do — and across calls at the same delta sequence number
    # (e.g. repeated settles of an undisturbed epoch window) the cached
    # game is the identical object.
    gkey = ("global", blob_seq, tuple(sorted(profile)))
    if gkey not in cache:
        game = game_from_compiled(cm, players=sorted(profile))
        cache[gkey] = (game, game.compile())
    global_game, global_compiled = cache[gkey]

    interior_moves = 0
    boundary_moves = 0
    converged = False
    rounds = 0
    shard_of_cl = partition.shard_of_cloudlet
    # Shards whose occupancies may have changed since their last interior
    # settle. Congestion is per-cloudlet, so only a boundary move into or
    # out of a shard can disturb an already-settled interior — iteration 1
    # settles everything, later iterations only the shards the boundary
    # phase's move log actually touched.
    dirty = set(partition.shard_ids)
    for rounds in range(1, boundary_rounds + 1):
        it_moves = 0

        # Interior phase: shards are disjoint, merge order is irrelevant;
        # shard-id order keeps the serial path deterministic anyway.
        tasks = []
        for s in sorted(dirty):
            in_view = set(classification.interior.get(s, ())) | set(
                classification.boundary
            )
            sub_profile = {
                pid: node
                for pid, node in profile.items()
                if pid in in_view and shard_of_cl.get(node) == s
            }
            mv = sorted(
                set(classification.interior.get(s, ()))
                & movable_set
                & set(sub_profile)
            )
            if not mv:
                continue
            tasks.append((s, sub_profile, mv))

        dispatch = runtime is not None and (
            runtime.workers > 1 or not runtime.transport.colocated
        )
        if dispatch and runtime is not None and len(tasks) > 1:
            payloads = [
                (
                    runtime.publish(("shard", s, blob_seq), view_of(s)),
                    s,
                    tuple(sorted(sub_profile.items())),
                    tuple(mv),
                    max_rounds,
                )
                for s, sub_profile, mv in tasks
            ]
            for _s, items, moves in runtime.map(_shard_task, payloads):
                profile.update(dict(items))
                interior_moves += moves
                it_moves += moves
        else:
            for s, sub_profile, mv in tasks:
                settled, moves = _settle_shard(
                    view_of(s), sub_profile, mv, max_rounds
                )
                profile.update(settled)
                interior_moves += moves
                it_moves += moves

        # Boundary phase: re-price cross-shard options on global tables
        # against the frozen interiors; its move log marks the shards to
        # re-settle next iteration.
        dirty = set()
        if boundary_movable:
            profile_b, _conv, _r, moves, _trace, blog = batch_best_response(
                global_game,
                profile,
                movable=boundary_movable,
                max_rounds=max_rounds,
                compiled=global_compiled,
                record_moves=True,
            )
            profile = profile_b
            boundary_moves += moves
            it_moves += moves
            for _p, old, new, _d in blog:
                dirty.add(shard_of_cl[old])
                dirty.add(shard_of_cl[new])

        if it_moves == 0:
            converged = True
            break

    certified = certify_equilibrium(
        global_game,
        profile,
        movable=sorted(movable_set & set(profile)),
        compiled=global_compiled,
    )
    return PartitionedResult(
        profile=dict(profile),
        converged=converged,
        rounds=rounds,
        interior_moves=interior_moves,
        boundary_moves=boundary_moves,
        certified=certified,
        social_cost=cm.social_cost(profile),
        partition=partition,
        classification=classification,
    )


def partitioned_best_response(
    market: "ServiceMarket",
    initial_profile: Mapping[int, int],
    *,
    partition: Optional[MarketPartition] = None,
    n_shards: Optional[int] = None,
    classification: Optional[ShardClassification] = None,
    movable: Optional[Iterable[int]] = None,
    max_rounds: int = 1000,
    boundary_rounds: int = 8,
    runtime: Optional["Runtime"] = None,
    executor: Optional["Runtime"] = None,
    compiled: Optional[CompiledMarket] = None,
    blob_seq: int = 0,
    cache: Optional[Dict[object, object]] = None,
) -> PartitionedResult:
    """Settle a placement to equilibrium shard by shard.

    Parameters
    ----------
    partition / n_shards:
        An existing :class:`MarketPartition`, or the target shard count
        for :func:`repro.market.shard.partition_market` (default: one
        shard per cloudlet-bearing region).
    movable:
        Providers allowed to move (default: every placed provider);
        intersected with the placed population.
    boundary_rounds:
        Cap on interior/boundary iterations. The loop usually exits
        earlier — at the first iteration committing zero moves.
    runtime:
        Optional :class:`~repro.runtime.Runtime` for concurrent
        interiors (sub-views published once per ``blob_seq``, shards
        settled via :meth:`~repro.runtime.Runtime.map`); ``None`` (or
        one worker) settles serially with bit-identical results.
    executor:
        Deprecated alias of ``runtime`` (the pre-``repro.runtime``
        parameter, which took a ``ShardExecutor``; any ``Runtime`` —
        including that shim — works).
    classification:
        A precomputed :class:`ShardClassification` for ``compiled`` at
        its current table state (recompute after every applied delta).
    compiled / blob_seq:
        The market's :class:`CompiledMarket` if the caller already holds
        it, and the delta-log sequence number identifying its table
        state — the blob-publication cache key, so an unchanged shard is
        pickled to the workers once per delta, not once per call.
    cache:
        Optional caller-owned dict reused across calls: shard sub-views
        are cached under ``("view", shard_id, blob_seq)`` and the global
        boundary game under ``("global", blob_seq, placed population)``,
        so repeated settles against unchanged tables skip the rebuild
        entirely. The caller is responsible for dropping entries when
        ``blob_seq`` advances (the keys make stale entries inert, but
        they hold memory).
    """
    if boundary_rounds < 1:
        raise ConfigurationError(
            f"boundary_rounds must be >= 1, got {boundary_rounds}"
        )
    if runtime is None:
        runtime = executor
    cm = compiled if compiled is not None else market.compile()
    if partition is None:
        partition = partition_market(market, n_shards)
    if classification is None:
        classification = classify_providers(cm, partition)
    profile: Profile = dict(initial_profile)
    movable_set = set(movable) if movable is not None else set(profile)
    movable_set &= set(profile)
    return _reconcile(
        market,
        partition,
        classification,
        cm,
        profile,
        movable_set,
        max_rounds,
        boundary_rounds,
        runtime,
        blob_seq,
        cache,
    )


__all__ = [
    "BOUNDARY_TOLERANCE",
    "PartitionedResult",
    "certify_equilibrium",
    "game_from_compiled",
    "partitioned_best_response",
]

"""Price-of-Anarchy measurement.

The PoA is the ratio between the *worst* Nash-equilibrium social cost and
the social optimum (Section II.E). For tiny games we enumerate all pure
profiles and filter equilibria exactly; for larger games we estimate the
worst equilibrium by running best-response dynamics from many random initial
profiles (a standard empirical lower bound on the true PoA).
"""

from __future__ import annotations

import itertools
from typing import Hashable, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, InfeasibleError, ReproError
from repro.game.best_response import best_response_dynamics, greedy_feasible_profile
from repro.game.congestion import Profile, SingletonCongestionGame
from repro.game.equilibrium import is_nash_equilibrium
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_positive

_ENUM_LIMIT = 2_000_000


def enumerate_equilibria(
    game: SingletonCongestionGame,
    movable: Optional[List[Hashable]] = None,
) -> Iterator[Profile]:
    """Yield every feasible pure Nash equilibrium (exhaustive; tiny games).

    Raises :class:`ConfigurationError` when the profile space exceeds an
    enumeration safety limit.
    """
    n_profiles = len(game.resources) ** len(game.players)
    if n_profiles > _ENUM_LIMIT:
        raise ConfigurationError(
            f"{n_profiles} profiles exceed the enumeration limit {_ENUM_LIMIT}"
        )
    for combo in itertools.product(game.resources, repeat=len(game.players)):
        profile: Profile = dict(zip(game.players, combo))
        try:
            game.validate_profile(profile)
        except ReproError:
            # Overloaded or malformed profiles are simply not equilibria
            # candidates; anything outside the library hierarchy is a bug
            # and must propagate.
            continue
        if is_nash_equilibrium(game, profile, movable=movable):
            yield profile


def worst_equilibrium_cost(
    game: SingletonCongestionGame,
    exact: bool = False,
    trials: int = 20,
    rng: RandomSource = None,
    movable: Optional[List[Hashable]] = None,
) -> Tuple[float, Profile]:
    """The (estimated) worst NE social cost and a witnessing profile.

    ``exact=True`` enumerates every equilibrium; otherwise the estimate runs
    best-response dynamics from ``trials`` random feasible starts and keeps
    the costliest converged equilibrium.
    """
    # One compilation serves every trial: the social-cost evaluations below
    # are table gathers (bit-equal to game.social_cost) and the dynamics
    # reuse the same tables instead of rebuilding them per start.
    compiled = game.compile()
    if exact:
        worst_cost = -np.inf
        worst_profile: Optional[Profile] = None
        for eq in enumerate_equilibria(game, movable=movable):
            c = compiled.social_cost(eq)
            if c > worst_cost:
                worst_cost = c
                worst_profile = eq
        if worst_profile is None:
            raise InfeasibleError("game has no feasible pure Nash equilibrium")
        return worst_cost, worst_profile

    rng = as_rng(rng)
    worst_cost = -np.inf
    worst_profile = None
    move_set = list(movable) if movable is not None else list(game.players)
    for _ in range(trials):
        order = list(game.players)
        rng.shuffle(order)
        try:
            start = greedy_feasible_profile(game, order=order, players=order)
        except InfeasibleError:
            continue
        result = best_response_dynamics(game, start, movable=move_set, compiled=compiled)
        if not result.converged:
            continue
        if not is_nash_equilibrium(game, result.profile, movable=move_set):
            continue
        c = compiled.social_cost(result.profile)
        if c > worst_cost:
            worst_cost = c
            worst_profile = result.profile
    if worst_profile is None:
        raise InfeasibleError("no equilibrium found from any random start")
    return worst_cost, worst_profile


def empirical_poa(
    game: SingletonCongestionGame,
    optimal_cost: float,
    exact: bool = False,
    trials: int = 20,
    rng: RandomSource = None,
    movable: Optional[List[Hashable]] = None,
) -> float:
    """Worst-NE social cost divided by the given optimal social cost."""
    check_positive(optimal_cost, "optimal_cost")
    worst, _ = worst_equilibrium_cost(
        game, exact=exact, trials=trials, rng=rng, movable=movable
    )
    return worst / optimal_cost


__all__ = ["enumerate_equilibria", "worst_equilibrium_cost", "empirical_poa"]

"""The batch-vectorized best-response kernel.

The incremental engine (:mod:`repro.game.engine`) made each best-response
*scan* a vectorised argmin, but still visits providers one Python turn at a
time — ~8 small numpy calls per player per round, which caps equilibria at
a few hundred nodes. This kernel computes **all** providers' candidate
moves at once as a (players x cloudlets) delta-cost matrix over the same
compiled tables, with masked infeasibility, and resolves conflicts with a
Jacobi-propose -> Gauss-Seidel-commit rule:

* **Jacobi propose** — one vectorised pass builds every pending player's
  entry-cost row (``shared[i, occ_i + 1] + fixed[l, i]``, capacity- and
  latency-infeasible cells masked to ``+inf``), takes the row argmin, and
  marks the players whose best candidate strictly improves on their
  current cost.
* **Gauss-Seidel commit** — proposals are committed in the deterministic
  round-robin priority order (the serial engines' visiting order), and a
  cached proposal is only trusted while no earlier commit has touched the
  state: the first firing player's move is applied (occupancy, loads and
  the Rosenthal potential updated incrementally, exactly the serial
  delta), after which the remaining players are re-evaluated at the live
  state — vectorised block re-proposals while firings are sparse, or a
  per-turn argmin over incrementally-patched cost columns when they are
  dense (only the two columns a commit touches are rewritten).

Every committed move is therefore evaluated at exactly the state the
serial scan would see at that player's turn, so the kernel reproduces the
incremental engine's move sequence — and its fixed point — **bit for
bit**: same placements, same move count, same potential trace floats.
``tests/game/test_batch_kernel_equivalence.py`` pins this differentially
against both serial engines across seeds, congestion functions and
instance representations; ``tests/game/test_batch_kernel_properties.py``
fuzzes the per-round invariants and the delta-churn path.
"""

from __future__ import annotations

from typing import Callable, Final, Hashable, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.exceptions import InfeasibleError
from repro.game.congestion import Profile, SingletonCongestionGame
from repro.game.engine import IMPROVEMENT_EPS, CompiledGame
from repro.utils.contracts import (
    check_potential_accumulator,
    invariant_capacity_feasible,
    invariant_no_conflicting_commits,
    invariant_potential_descends,
    invariants_active,
)
from repro.utils.validation import CAPACITY_EPS

#: One committed move: ``(player, old_resource, new_resource, cost_delta)``.
Commit = Tuple[Hashable, Hashable, Hashable, float]

#: Element budget for the sparse commit path: after a commit, the pending
#: block is re-proposed vectorised only while ``fired * n_resources`` stays
#: under this bound; denser rounds fall back to the per-turn column-patched
#: scan, whose cost does not scale with the number of commits. The switch
#: is a pure performance heuristic — both paths replay the identical
#: serial move sequence.
SPARSE_REPROPOSE_BUDGET: Final[int] = 2048


class _BatchState:
    """Live array state of one dynamics run (movers in priority order)."""

    def __init__(
        self,
        c: CompiledGame,
        profile: Profile,
        move_order: List[Hashable],
    ) -> None:
        self.c = c
        self.move_order = move_order
        rows = np.fromiter(
            (c.player_index[p] for p in move_order),
            dtype=np.int64,
            count=len(move_order),
        )
        #: Mover-major slices of the compiled tables (row ``t`` is the
        #: ``t``-th player in priority order).
        self.fixed = c.fixed[rows] if len(move_order) else np.empty((0, c.n_resources))
        self.demand = (
            c.demand[rows]
            if c.demand is not None and len(move_order)
            else (np.empty((0, c.n_resources, 1)) if c.demand is not None else None)
        )
        self.occ = c.occupancy_vector(profile)
        self.loads = c.load_matrix(profile)
        #: ``capacity + CAPACITY_EPS``, precomputed once — the same sum the
        #: serial feasibility mask forms on every query.
        self.cap_eps = (
            c.capacity + CAPACITY_EPS if c.capacity is not None else None
        )
        self.strat = np.fromiter(
            (c.resource_index[profile[p]] for p in move_order),
            dtype=np.int64,
            count=len(move_order),
        )
        self.n_players = c.n_players
        self.m = c.n_resources

    # ------------------------------------------------------------------ #
    # Vectorised queries
    # ------------------------------------------------------------------ #
    def join_costs(self) -> np.ndarray:
        """``shared(i, occ_i + 1)`` per resource — the congestion charge a
        joining player would face (occupancy clamped like the serial scan)."""
        kcol = np.minimum(self.occ + 1, self.n_players)
        return self.c.shared[np.arange(self.m), kcol]

    def feasible_block(self, lo: int) -> Optional[np.ndarray]:
        """Capacity feasibility of every (pending mover, resource) pair.

        The same ``loads + demand <= capacity + CAPACITY_EPS`` comparison
        as ``CompiledGame.feasible_mask``, batched over the mover block."""
        if self.demand is None or self.loads is None or self.cap_eps is None:
            return None
        new_load = self.loads[None, :, :] + self.demand[lo:]
        return np.all(new_load <= self.cap_eps[None, :, :], axis=2)

    def propose(self, lo: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Jacobi phase over pending movers ``[lo:]`` at the live state.

        Returns ``(targets, best, cur_cost)``: the row argmin of the masked
        entry-cost block, its value, and each mover's current cost. Every
        entry is the same IEEE sum of the same two table floats the serial
        scan computes, so the argmin tie-breaking is identical.
        """
        entry = self.join_costs()[None, :] + self.fixed[lo:]
        feas = self.feasible_block(lo)
        if feas is not None:
            entry[~feas] = np.inf
        block = np.arange(entry.shape[0])
        strat = self.strat[lo:]
        entry[block, strat] = np.inf
        cur_cost = (
            self.c.shared[strat, self.occ[strat]] + self.fixed[lo:][block, strat]
        )
        targets = np.argmin(entry, axis=1)
        best = entry[block, targets]
        return targets, best, cur_cost

    def commit(self, t: int, j: int) -> None:
        """Apply mover ``t``'s move to resource column ``j`` — the same
        in-place occupancy/load deltas, in the same order, as the serial
        engine's move application."""
        cur = int(self.strat[t])
        self.occ[cur] -= 1
        self.occ[j] += 1
        if self.loads is not None and self.demand is not None:
            self.loads[cur] -= self.demand[t, cur]
            self.loads[j] += self.demand[t, j]
        self.strat[t] = j


def _dense_scan(
    state: _BatchState,
    lo: int,
    on_commit: Callable[[int, int, int, float, float], None],
) -> int:
    """Gauss-Seidel commit scan over movers ``[lo:]`` with per-turn argmin.

    Maintains the masked entry-cost block incrementally: a commit rewrites
    only the two affected resource columns (congestion re-gathered at the
    new occupancy, feasibility re-checked at the new loads) for the movers
    still pending, so each turn costs one argmin instead of a full row
    rebuild. Returns the number of committed moves.
    """
    n_mov = len(state.move_order)
    if lo >= n_mov:
        return 0
    em = state.join_costs()[None, :] + state.fixed[lo:]
    feas = state.feasible_block(lo)
    if feas is not None:
        em[~feas] = np.inf
    committed = 0
    for t in range(lo, n_mov):
        row = em[t - lo]
        cur = int(state.strat[t])
        saved = row[cur]
        row[cur] = np.inf
        j = int(np.argmin(row))
        best = float(row[j])
        row[cur] = saved
        cur_cost = float(state.c.shared[cur, state.occ[cur]] + state.fixed[t, cur])
        if not best < cur_cost - IMPROVEMENT_EPS:
            continue
        state.commit(t, j)
        on_commit(t, cur, j, best, cur_cost)
        committed += 1
        rel = t + 1 - lo
        if rel < em.shape[0]:
            for col in (cur, j):
                kcol = min(int(state.occ[col]) + 1, state.n_players)
                colvals = state.c.shared[col, kcol] + state.fixed[t + 1 :, col]
                if (
                    state.loads is not None
                    and state.demand is not None
                    and state.cap_eps is not None
                ):
                    fits = np.all(
                        state.loads[col][None, :] + state.demand[t + 1 :, col, :]
                        <= state.cap_eps[col][None, :],
                        axis=1,
                    )
                    colvals = np.where(fits, colvals, np.inf)
                em[rel:, col] = colvals
    return committed


@invariant_no_conflicting_commits()
def _batch_rounds(
    game: SingletonCongestionGame,
    initial_profile: Mapping[Hashable, Hashable],
    c: Optional[CompiledGame],
    move_order: List[Hashable],
    max_rounds: int,
    record_moves: bool,
) -> Tuple[Profile, bool, int, int, List[float], List[Commit], List[List[Commit]]]:
    """The round loop; returns the engine tuple plus per-round commit lists
    (consumed by the no-conflicting-commits contract when armed)."""
    profile: Profile = dict(initial_profile)
    phi = game.potential(profile)
    trace = [phi]
    moves = 0
    rounds = 0
    converged = not move_order
    move_log: List[Commit] = []
    commit_rounds: List[List[Commit]] = []

    state = _BatchState(c, profile, move_order) if c is not None else None

    for rounds in range(1, max_rounds + 1):
        round_commits: List[Commit] = []

        def on_commit(t: int, cur: int, j: int, best: float, cur_cost: float) -> None:
            nonlocal phi, moves  # reprolint: ok[R8] per-call accumulators of this invocation's own locals; nothing outlives the call or is shared across workers
            p = move_order[t]
            profile[p] = state.c.resources[j]
            delta = float(best - cur_cost)
            phi += delta
            moves += 1
            record = (p, state.c.resources[cur], state.c.resources[j], delta)
            round_commits.append(record)
            if record_moves:
                move_log.append(record)

        lo = 0
        n_mov = len(move_order)
        while state is not None and lo < n_mov:
            targets, best, cur_cost = state.propose(lo)
            fire = best < cur_cost - IMPROVEMENT_EPS
            fired = np.flatnonzero(fire)
            if fired.size == 0:
                break
            if fired.size * state.m > SPARSE_REPROPOSE_BUDGET:
                # Dense round: per-turn scan with patched columns — its
                # cost is independent of how many players end up moving.
                _dense_scan(state, lo, on_commit)
                break
            # Sparse round: every cached proposal before the first firing
            # player is still live-fresh (no commit has touched the state
            # since the propose), so those players are skipped outright;
            # the firing move is committed and the rest re-proposed.
            k = int(fired[0])
            t = lo + k
            cur = int(state.strat[t])
            j = int(targets[k])
            state.commit(t, j)
            on_commit(t, cur, j, float(best[k]), float(cur_cost[k]))
            lo = t + 1

        trace.append(phi)
        commit_rounds.append(round_commits)
        if not round_commits:
            converged = True
            break

    if invariants_active():
        check_potential_accumulator(game, profile, phi)
    return profile, converged, rounds, moves, trace, move_log, commit_rounds


@invariant_capacity_feasible()
@invariant_potential_descends()
def batch_best_response(
    game: SingletonCongestionGame,
    initial_profile: Mapping[Hashable, Hashable],
    movable: Optional[Iterable[Hashable]] = None,
    max_rounds: int = 1000,
    compiled: Optional[CompiledGame] = None,
    record_moves: bool = False,
) -> Tuple[Profile, bool, int, int, List[float], List[Commit]]:
    """Batch-vectorized round-robin best-response dynamics.

    Same signature and return contract as
    :func:`repro.game.engine.incremental_best_response` — ``(profile,
    converged, rounds, moves, potential_trace, move_log)`` — and the same
    results bit for bit: the Jacobi/Gauss-Seidel schedule commits exactly
    the serial engine's move sequence (see the module docstring), it just
    prices the candidates in bulk.
    """
    game.validate_profile(initial_profile)
    movable_set = set(movable) if movable is not None else set(game.players)
    unknown = movable_set - set(game.players)
    if unknown:
        raise InfeasibleError(
            f"movable contains unknown players {sorted(unknown, key=str)}"
        )
    move_order = [p for p in game.players if p in movable_set]
    c = (
        (compiled if compiled is not None else game.compile())
        if move_order
        else None
    )
    profile, converged, rounds, moves, trace, move_log, _ = _batch_rounds(
        game, initial_profile, c, move_order, max_rounds, record_moves
    )
    return profile, converged, rounds, moves, trace, move_log


__all__ = ["SPARSE_REPROPOSE_BUDGET", "batch_best_response"]

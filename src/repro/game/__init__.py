"""Congestion-game machinery (Section II.E).

The selfish providers play a *capacitated singleton congestion game*: each
player picks one resource (cloudlet); the cost is a shared non-decreasing
congestion term plus a player-and-resource-specific fixed term. This package
provides the game model, Rosenthal's exact potential, best-response dynamics,
Nash-equilibrium verification, the Stackelberg wrapper used by algorithm
``LCF``, and empirical Price-of-Anarchy measurement.
"""

from repro.game.congestion import Profile, SingletonCongestionGame
from repro.game.batch import batch_best_response
from repro.game.best_response import BestResponseResult, best_response_dynamics, greedy_feasible_profile
from repro.game.equilibrium import best_deviation, is_nash_equilibrium
from repro.game.stackelberg import StackelbergOutcome, play_stackelberg
from repro.game.poa import empirical_poa, enumerate_equilibria, worst_equilibrium_cost
from repro.game.dynamics_variants import improvement_dynamics
from repro.game.partitioned import (
    BOUNDARY_TOLERANCE,
    PartitionedResult,
    certify_equilibrium,
    game_from_compiled,
    partitioned_best_response,
)

__all__ = [
    "Profile",
    "SingletonCongestionGame",
    "BestResponseResult",
    "batch_best_response",
    "best_response_dynamics",
    "greedy_feasible_profile",
    "best_deviation",
    "is_nash_equilibrium",
    "StackelbergOutcome",
    "play_stackelberg",
    "empirical_poa",
    "enumerate_equilibria",
    "worst_equilibrium_cost",
    "improvement_dynamics",
    "BOUNDARY_TOLERANCE",
    "PartitionedResult",
    "certify_equilibrium",
    "game_from_compiled",
    "partitioned_best_response",
]

"""repro — stable service caching in two-tiered mobile edge-clouds.

A complete, from-scratch reproduction of

    Xu et al., "To Cache or Not to Cache: Stable Service Caching in Mobile
    Edge-Clouds of a Service Market", IEEE ICDCS 2020.

Public API highlights
---------------------
* :func:`repro.network.random_mec_network` / :func:`repro.network.as1755_mec_network`
  — build two-tiered MEC networks (GT-ITM-style or AS1755).
* :func:`repro.market.generate_market` — draw a service market with the
  paper's Section IV.A parameter distributions.
* :func:`repro.core.appro` — Algorithm 1 (the ``2*delta*kappa``
  approximation for non-selfish players).
* :func:`repro.core.lcf` — Algorithm 2 (the LCF approximation-restricted
  Stackelberg strategy).
* :func:`repro.core.jo_offload_cache` / :func:`repro.core.offload_cache`
  — the paper's baselines.
* :mod:`repro.experiments` — drivers regenerating every evaluation figure.
* :mod:`repro.testbed` — the discrete-event emulator standing in for the
  paper's hardware/OVS testbed.

Quickstart
----------
>>> from repro.network import random_mec_network
>>> from repro.market import generate_market
>>> from repro.core import lcf
>>> net = random_mec_network(100, rng=1)
>>> market = generate_market(net, n_providers=40, rng=2)
>>> result = lcf(market, xi=0.7)
>>> result.assignment.social_cost  # doctest: +SKIP
"""

from repro.exceptions import (
    CapacityError,
    ConfigurationError,
    ConvergenceError,
    EmulationError,
    InfeasibleError,
    ReproError,
    SolverError,
    TopologyError,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ConfigurationError",
    "CapacityError",
    "InfeasibleError",
    "SolverError",
    "ConvergenceError",
    "TopologyError",
    "EmulationError",
    "__version__",
]

"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at API boundaries while still being able to discriminate
the failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An input object (network, market, instance) is malformed."""


class CapacityError(ReproError):
    """A placement or assignment would violate a resource capacity."""


class InfeasibleError(ReproError):
    """No feasible solution exists for the given instance."""


class SolverError(ReproError):
    """An underlying numerical solver failed unexpectedly."""


class SolverTimeout(SolverError):
    """A numerical solver exceeded its time budget.  The degradation
    ladder (see :mod:`repro.gap.ladder`) catches this and falls back to a
    cheaper method, surfacing a ``DegradationEvent`` on the result."""


class TaskTimeout(ReproError):
    """A supervised sweep task exceeded its per-task time budget (see
    :mod:`repro.runtime.supervisor`)."""


class ConvergenceError(ReproError):
    """An iterative procedure (e.g. best-response dynamics) did not converge
    within its iteration budget."""


class InvariantViolation(ReproError):
    """A debug-mode runtime contract failed: an algorithm produced a state
    that breaks one of the paper's invariants (capacity feasibility,
    Rosenthal potential descent).  Only raised when the
    ``REPRO_DEBUG_INVARIANTS=1`` environment flag is set."""


class TopologyError(ReproError):
    """A topology generator or network query received invalid parameters."""


class EmulationError(ReproError):
    """The discrete-event testbed emulator reached an inconsistent state."""

"""The hierarchical service market (Section II.B–II.D).

A :class:`~repro.market.market.ServiceMarket` ties together a two-tiered MEC
network, a set of network service providers (each with one service to cache),
a resource pricing policy, and the congestion-dependent cost model of
Eq. (1)–(5).
"""

from repro.market.service import Service, ServiceProvider
from repro.market.pricing import Pricing
from repro.market.costs import (
    CongestionFunction,
    CostModel,
    LinearCongestion,
    MM1Congestion,
    QuadraticCongestion,
)
from repro.market.market import ServiceMarket
from repro.market.delta import MarketDelta
from repro.market.compiled import REPRESENTATIONS, CompiledMarket, resolve_compiled
from repro.market.shard import (
    MarketPartition,
    ShardClassification,
    ShardDelta,
    ShardLog,
    classify_providers,
    partition_market,
    route_delta,
    shard_view,
)
from repro.market.workload import WorkloadParams, generate_providers, generate_market

__all__ = [
    "Service",
    "ServiceProvider",
    "Pricing",
    "CongestionFunction",
    "CostModel",
    "LinearCongestion",
    "QuadraticCongestion",
    "MM1Congestion",
    "ServiceMarket",
    "MarketDelta",
    "CompiledMarket",
    "REPRESENTATIONS",
    "resolve_compiled",
    "MarketPartition",
    "ShardClassification",
    "ShardDelta",
    "ShardLog",
    "classify_providers",
    "partition_market",
    "route_delta",
    "shard_view",
    "WorkloadParams",
    "generate_providers",
    "generate_market",
]

"""Quality-of-service reporting: the latency the users actually get.

The paper's motivation is latency ("interactive AR/VR services have very
stringent requirements on the motion-to-photon latency ... central clouds
often lead to unacceptable delay, e.g. hundreds of milliseconds [11]"), yet
its objective is monetary. This module closes the loop: given an
assignment, it reports each provider's achieved *access delay* (users to
the serving instance over the delay-weighted shortest path, plus a
congestion-dependent processing delay at the cloudlet) and checks it
against a per-service budget.

Good mechanisms should win on latency too — the QoS benches verify LCF's
delay distribution dominates the baselines'.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.core.assignment import CachingAssignment
from repro.exceptions import ConfigurationError
from repro.utils.validation import CAPACITY_EPS, check_non_negative, check_positive

#: Default motion-to-photon style budget, ms (interactive AR/VR).
DEFAULT_BUDGET_MS = 50.0

#: Delay of serving from the remote cloud on top of the path: WAN transit,
#: queueing, and the extra RTTs of an uncached protocol handshake.
REMOTE_PENALTY_MS = 80.0

#: Base processing delay of a cached instance, ms.
PROCESSING_BASE_MS = 2.0

#: Extra processing delay per co-located instance (multiplexing), ms.
PROCESSING_PER_TENANT_MS = 1.5


@dataclass(frozen=True)
class ProviderLatency:
    """Achieved latency of one provider's users."""

    provider_id: int
    served_from: Optional[int]  # cloudlet node, None = remote cloud
    network_ms: float
    processing_ms: float
    budget_ms: float

    @property
    def total_ms(self) -> float:
        return self.network_ms + self.processing_ms

    @property
    def within_budget(self) -> bool:
        return self.total_ms <= self.budget_ms + CAPACITY_EPS


@dataclass
class LatencyReport:
    """Latency of every provider plus distribution summaries."""

    entries: List[ProviderLatency]

    @property
    def mean_ms(self) -> float:
        return float(np.mean([e.total_ms for e in self.entries]))

    @property
    def p95_ms(self) -> float:
        return float(np.percentile([e.total_ms for e in self.entries], 95))

    @property
    def worst_ms(self) -> float:
        return max(e.total_ms for e in self.entries)

    @property
    def violations(self) -> List[ProviderLatency]:
        return [e for e in self.entries if not e.within_budget]

    @property
    def violation_rate(self) -> float:
        return len(self.violations) / len(self.entries)

    def entry(self, provider_id: int) -> ProviderLatency:
        for e in self.entries:
            if e.provider_id == provider_id:
                return e
        raise ConfigurationError(f"no latency entry for provider {provider_id}")


def latency_report(
    assignment: CachingAssignment,
    budgets_ms: Optional[Mapping[int, float]] = None,
    default_budget_ms: float = DEFAULT_BUDGET_MS,
    remote_penalty_ms: float = REMOTE_PENALTY_MS,
) -> LatencyReport:
    """Compute each provider's achieved user latency under an assignment.

    Network delay: the weighted mean over the provider's user clusters of
    the delay-weighted shortest path to the serving location. Processing
    delay: base plus a per-co-tenant multiplexing term (congestion hurts
    latency, not only cost). Remote-served providers additionally pay
    ``remote_penalty_ms``.
    """
    check_positive(default_budget_ms, "default_budget_ms")
    check_non_negative(remote_penalty_ms, "remote_penalty_ms")
    budgets = dict(budgets_ms) if budgets_ms else {}
    market = assignment.market
    net = market.network
    occupancy = assignment.occupancy()

    entries: List[ProviderLatency] = []
    for provider in market.providers:
        pid = provider.provider_id
        svc = provider.service
        budget = budgets.get(pid, default_budget_ms)
        if pid in assignment.placement:
            node = assignment.placement[pid]
            network_ms = sum(
                weight * net.path_delay(cluster, node)
                for cluster, weight in svc.clusters
            )
            processing_ms = (
                PROCESSING_BASE_MS
                + PROCESSING_PER_TENANT_MS * (occupancy[node] - 1)
            )
            served_from: Optional[int] = node
        else:
            network_ms = (
                sum(
                    weight * net.path_delay(cluster, svc.home_dc)
                    for cluster, weight in svc.clusters
                )
                + remote_penalty_ms
            )
            processing_ms = PROCESSING_BASE_MS
            served_from = None
        entries.append(
            ProviderLatency(
                provider_id=pid,
                served_from=served_from,
                network_ms=network_ms,
                processing_ms=processing_ms,
                budget_ms=budget,
            )
        )
    return LatencyReport(entries=entries)


__all__ = [
    "DEFAULT_BUDGET_MS",
    "REMOTE_PENALTY_MS",
    "PROCESSING_BASE_MS",
    "PROCESSING_PER_TENANT_MS",
    "ProviderLatency",
    "LatencyReport",
    "latency_report",
]

"""The congestion-dependent cost model of Section II.C.

The cost of caching service ``SV_l`` in cloudlet ``CL_i`` when ``|sigma_i|``
providers (including ``sp_l``) are cached there is

``c_{l,i} = alpha_i*g(|sigma_i|) + c_l_ins + beta_i*g(|sigma_i|) + c_i_bdw``

with ``g`` the congestion function — the identity in the paper's proportional
model (Eq. 1–3). The paper notes its derivations only require ``g`` to be
non-decreasing, so :class:`CostModel` accepts any
:class:`CongestionFunction`; :class:`QuadraticCongestion` and
:class:`MM1Congestion` support the ablation study.

The *fixed* (congestion-free) components are grounded in the Section IV.A
economics:

* ``c_l_ins``  = instantiation base + processing price × request traffic GB;
* ``c_i_bdw(l)`` = cloudlet unit cost + transmit price × update volume ×
  hop-scaled distance from ``CL_i`` to the service's home data center (the
  consistency-update traffic of Section II.C).
"""

from __future__ import annotations

import abc
from typing import Dict, Mapping, Optional

from repro.exceptions import ConfigurationError
from repro.market.pricing import Pricing
from repro.market.service import ServiceProvider
from repro.network.elements import Cloudlet
from repro.network.topology import MECNetwork
from repro.utils.validation import check_non_negative


class CongestionFunction(abc.ABC):
    """A non-decreasing map from occupancy ``|sigma_i|`` to a load factor."""

    @abc.abstractmethod
    def __call__(self, occupancy: int) -> float:
        """Load factor at integer occupancy >= 0."""

    def validate_monotone(self, up_to: int = 64) -> None:
        """Assert non-decreasingness on [0, up_to] (used by tests)."""
        values = [self(k) for k in range(up_to + 1)]
        for a, b in zip(values, values[1:]):
            if b < a - 1e-12:
                raise ConfigurationError(
                    f"{type(self).__name__} is not non-decreasing: "
                    f"f({values.index(b)}) < f({values.index(b) - 1})"
                )


class LinearCongestion(CongestionFunction):
    """The paper's proportional model: ``g(k) = k`` (Eq. 1–2)."""

    def __call__(self, occupancy: int) -> float:
        if occupancy < 0:
            raise ValueError(f"occupancy must be >= 0, got {occupancy}")
        return float(occupancy)

    def __repr__(self) -> str:
        return "LinearCongestion()"


class QuadraticCongestion(CongestionFunction):
    """``g(k) = k^2 / scale`` — super-linear congestion penalty."""

    def __init__(self, scale: float = 1.0) -> None:
        if scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale}")
        self.scale = scale

    def __call__(self, occupancy: int) -> float:
        if occupancy < 0:
            raise ValueError(f"occupancy must be >= 0, got {occupancy}")
        return occupancy * occupancy / self.scale

    def __repr__(self) -> str:
        return f"QuadraticCongestion(scale={self.scale})"


class MM1Congestion(CongestionFunction):
    """M/M/1-style delay curve ``g(k) = k / (1 - k/capacity)``.

    Saturates towards ``capacity``; occupancies at or above capacity get a
    large finite penalty so best-response dynamics remain well-defined.
    """

    def __init__(self, capacity: int = 32, saturation_penalty: float = 1e6) -> None:
        if capacity < 2:
            raise ConfigurationError(f"capacity must be >= 2, got {capacity}")
        self.capacity = capacity
        self.saturation_penalty = saturation_penalty

    def __call__(self, occupancy: int) -> float:
        if occupancy < 0:
            raise ValueError(f"occupancy must be >= 0, got {occupancy}")
        if occupancy >= self.capacity:  # reprolint: ok[R2] integer occupants vs integer M/M/1 slots
            return self.saturation_penalty + occupancy
        return occupancy / (1.0 - occupancy / self.capacity)

    def __repr__(self) -> str:
        return f"MM1Congestion(capacity={self.capacity})"


class CostModel:
    """Evaluates Eq. (3)–(6) over a concrete network and pricing policy.

    The expensive, congestion-independent part of ``c_{l,i}`` (instantiation,
    request processing, update transmission) is memoised per
    (provider, cloudlet) pair since algorithms query it many times.
    """

    def __init__(
        self,
        network: MECNetwork,
        pricing: Optional[Pricing] = None,
        congestion: Optional[CongestionFunction] = None,
        remote_premium: float = 20.0,
        latency_budget_ms: Optional[float] = None,
    ) -> None:
        self.network = network
        self.pricing = pricing if pricing is not None else Pricing()
        self.congestion = congestion if congestion is not None else LinearCongestion()
        self.remote_premium = check_non_negative(remote_premium, "remote_premium")
        #: Optional hard QoS constraint: a cloudlet whose (cluster-weighted)
        #: network delay from the users exceeds this budget is infeasible
        #: for the provider — its fixed cost becomes +inf, which every
        #: solver in the library treats as "forbidden pair". None disables.
        if latency_budget_ms is not None:
            check_non_negative(latency_budget_ms, "latency_budget_ms")
        self.latency_budget_ms = latency_budget_ms
        self._fixed_cache: Dict[tuple, float] = {}

    # ------------------------------------------------------------------ #
    # Cost components
    # ------------------------------------------------------------------ #
    def instantiation_cost(self, provider: ServiceProvider) -> float:
        """``c_l^ins``: VM/software setup plus request-processing charges."""
        svc = provider.service
        return svc.instantiation_cost + self.pricing.processing_cost(svc.request_traffic_gb)

    def access_cost(self, provider: ServiceProvider, cloudlet: Cloudlet) -> float:
        """Offloading cost: shipping the users' request traffic from their
        aggregation point(s) to the cached instance at ``CL_i``.

        With a single user cluster this is the request traffic over the
        ``user_node -> CL_i`` path; with several clusters each ships its
        weighted share. This is the term the ``OffloadCache`` baseline
        optimises in isolation; it is part of the full ``c_{l,i}`` for
        every algorithm.
        """
        svc = provider.service
        total = 0.0
        for node, weight in svc.clusters:
            hops = self.network.hop_count(node, cloudlet.node_id)
            total += self.pricing.transmission_cost(
                svc.request_traffic_gb * weight, hops
            )
        return total

    def update_cost(self, provider: ServiceProvider, cloudlet: Cloudlet) -> float:
        """``c_i^bdw``: consistency-update bandwidth cost at ``CL_i``.

        Update traffic flows from the cloudlet back to the service's home
        data center, so the charge scales with both the synchronised volume
        and the network distance (Section II.C).
        """
        svc = provider.service
        hops = self.network.hop_count(cloudlet.node_id, svc.home_dc)
        transit = self.pricing.transmission_cost(svc.update_volume_gb, hops)
        return cloudlet.bdw_unit_cost * svc.update_volume_gb + transit

    def fixed_cost(self, provider: ServiceProvider, cloudlet: Cloudlet) -> float:
        """Congestion-free part of ``c_{l,i}``: ``c_l^ins + c_i^bdw``.

        ``c_l^ins`` covers instantiation, request processing and offloading
        the request traffic to the instance; ``c_i^bdw`` the consistency
        updates. This is exactly the flat GAP cost of Eq. (9) minus the
        ``alpha_i + beta_i`` term, which :meth:`gap_cost` adds back.
        """
        key = (provider.provider_id, cloudlet.node_id)
        if key not in self._fixed_cache:
            if (
                self.latency_budget_ms is not None
                and self.access_delay_ms(provider, cloudlet) > self.latency_budget_ms
            ):
                self._fixed_cache[key] = float("inf")
            else:
                self._fixed_cache[key] = (
                    self.instantiation_cost(provider)
                    + self.access_cost(provider, cloudlet)
                    + self.update_cost(provider, cloudlet)
                )
        return self._fixed_cache[key]

    def access_delay_ms(self, provider: ServiceProvider, cloudlet: Cloudlet) -> float:
        """Cluster-weighted network delay from the users to ``CL_i``."""
        svc = provider.service
        return sum(
            weight * self.network.path_delay(node, cloudlet.node_id)
            for node, weight in svc.clusters
        )

    def congestion_cost(self, cloudlet: Cloudlet, occupancy: int) -> float:
        """``(alpha_i + beta_i) * g(|sigma_i|)`` — shared congestion charge."""
        return (cloudlet.alpha + cloudlet.beta) * self.congestion(occupancy)

    def cost(self, provider: ServiceProvider, cloudlet: Cloudlet, occupancy: int) -> float:
        """``c_{l,i}`` (Eq. 3) at the given occupancy ``|sigma_i|``.

        ``occupancy`` must already count ``sp_l`` itself when it is cached
        at ``CL_i`` (the paper's ``|sigma_i|`` includes the provider).
        """
        if occupancy < 1:
            raise ValueError(
                f"occupancy must count the provider itself (>= 1), got {occupancy}"
            )
        return self.congestion_cost(cloudlet, occupancy) + self.fixed_cost(provider, cloudlet)

    def gap_cost(self, provider: ServiceProvider, cloudlet: Cloudlet) -> float:
        """The congestion-free GAP cost of Eq. (9):
        ``alpha_i + beta_i + c_l^ins + c_i^bdw``."""
        return cloudlet.alpha + cloudlet.beta + self.fixed_cost(provider, cloudlet)

    def remote_cost(self, provider: ServiceProvider) -> float:
        """Cost of *not* caching: serving all requests from the original
        instance in the home data center.

        All request traffic crosses the backhaul from the users to the
        remote cloud, charged at :attr:`remote_premium` times the normal
        transmission rate, plus processing at the data center. The premium
        models the paper's premise that hauling delay-sensitive traffic to
        central clouds is expensive (WAN egress pricing plus the revenue
        lost to "hundreds of milliseconds" latency [11]); it is what makes
        "to cache" the default answer and "not to cache" a last resort.
        """
        svc = provider.service
        key = ("remote", provider.provider_id)
        if key not in self._fixed_cache:
            dc = self.network.data_center_at(svc.home_dc)
            processing = svc.request_traffic_gb * dc.processing_unit_cost
            transit = 0.0
            for node, weight in svc.clusters:
                hops = self.network.hop_count(node, svc.home_dc)
                transit += self.remote_premium * self.pricing.transmission_cost(
                    svc.request_traffic_gb * weight, hops
                )
            self._fixed_cache[key] = svc.instantiation_cost + processing + transit
        return self._fixed_cache[key]

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    def occupancy(self, placement: Mapping[int, int]) -> Dict[int, int]:
        """Per-cloudlet provider counts ``|sigma_i|`` for a placement
        (mapping ``provider_id -> cloudlet node_id``)."""
        counts: Dict[int, int] = {}
        for node in placement.values():
            counts[node] = counts.get(node, 0) + 1
        return counts

    def provider_cost(
        self,
        provider: ServiceProvider,
        placement: Mapping[int, int],
    ) -> float:
        """``c_l(sigma_l)`` (Eq. 5) for ``sp_l`` under a full placement."""
        node = placement.get(provider.provider_id)
        if node is None:
            raise ConfigurationError(
                f"provider {provider.provider_id} is unplaced in the given placement"
            )
        cloudlet = self.network.cloudlet_at(node)
        occ = self.occupancy(placement)[node]
        return self.cost(provider, cloudlet, occ)

    def social_cost(
        self,
        providers: Mapping[int, ServiceProvider],
        placement: Mapping[int, int],
    ) -> float:
        """Total cost of all placed providers (Eq. 6)."""
        occ = self.occupancy(placement)
        total = 0.0
        for pid, node in placement.items():
            provider = providers[pid]
            cloudlet = self.network.cloudlet_at(node)
            total += self.cost(provider, cloudlet, occ[node])
        return total


__all__ = [
    "CongestionFunction",
    "LinearCongestion",
    "QuadraticCongestion",
    "MM1Congestion",
    "CostModel",
]

"""Resource pricing (Section IV.A).

The infrastructure provider charges per GB: transmission $0.05–0.12/GB and
processing $0.15–0.22/GB, mirroring public-cloud price lists [1], [8]. A
:class:`Pricing` instance holds one concrete draw; :meth:`Pricing.random`
draws per-experiment prices from those ranges.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.rng import RandomSource, as_rng, uniform
from repro.utils.validation import check_non_negative

TRANSMIT_PRICE_RANGE = (0.05, 0.12)  # $/GB
PROCESS_PRICE_RANGE = (0.15, 0.22)  # $/GB


@dataclass(frozen=True)
class Pricing:
    """Per-GB prices for bandwidth (transmission) and computing (processing)."""

    transmit_per_gb: float = 0.08
    process_per_gb: float = 0.18
    #: Extra transmission charge per hop traversed, as a fraction of the
    #: base price — this is what makes distant cloudlets more expensive and
    #: produces Fig. 6(c)'s cost-vs-network-size shape.
    hop_surcharge: float = 0.25

    def __post_init__(self) -> None:
        check_non_negative(self.transmit_per_gb, "transmit_per_gb")
        check_non_negative(self.process_per_gb, "process_per_gb")
        check_non_negative(self.hop_surcharge, "hop_surcharge")

    @classmethod
    def random(cls, rng: RandomSource = None, hop_surcharge: float = 0.25) -> "Pricing":
        """Draw prices uniformly from the Section IV.A ranges."""
        rng = as_rng(rng)
        return cls(
            transmit_per_gb=uniform(rng, *TRANSMIT_PRICE_RANGE),
            process_per_gb=uniform(rng, *PROCESS_PRICE_RANGE),
            hop_surcharge=hop_surcharge,
        )

    def transmission_cost(self, volume_gb: float, hops: int) -> float:
        """Cost of moving ``volume_gb`` across ``hops`` network hops."""
        check_non_negative(volume_gb, "volume_gb")
        if hops < 0:
            raise ValueError(f"hops must be non-negative, got {hops}")
        return volume_gb * self.transmit_per_gb * (1.0 + self.hop_surcharge * hops)

    def processing_cost(self, volume_gb: float) -> float:
        """Cost of processing ``volume_gb`` of request data."""
        check_non_negative(volume_gb, "volume_gb")
        return volume_gb * self.process_per_gb


__all__ = ["Pricing", "TRANSMIT_PRICE_RANGE", "PROCESS_PRICE_RANGE"]

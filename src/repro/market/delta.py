"""The market mutation protocol: :class:`MarketDelta`.

A market changes in exactly four ways — providers arrive, providers depart,
cloudlet capacities change, and cloudlet congestion prices change.
Historically every mutation site poked the object graph directly and (at
best) called ``ServiceMarket.invalidate_compiled()``, turning each epoch of
a dynamic run into a full recompilation.  :class:`MarketDelta` makes the
mutation itself a value: call :meth:`ServiceMarket.apply
<repro.market.market.ServiceMarket.apply>` with a delta and both the object
graph and the cached :class:`~repro.market.compiled.CompiledMarket` are
patched in O(changed rows) instead of being rebuilt from scratch.

Deltas are immutable and self-validating; they deliberately cover only the
mutations the compiled tables capture.  Anything else (pricing policy,
congestion function, latency budget) still requires building a new market —
those are different *economies*, not the same market a moment later.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Tuple

from repro.exceptions import ConfigurationError
from repro.market.service import ServiceProvider


@dataclass(frozen=True)
class MarketDelta:
    """One batch of market mutations, applied atomically.

    Parameters
    ----------
    arrivals:
        New :class:`~repro.market.service.ServiceProvider` objects entering
        the market.  Ids must be unique within the delta (and, at apply
        time, not already present).
    departures:
        Provider ids leaving the market.
    capacity_changes:
        ``cloudlet node_id -> (compute_capacity, bandwidth_capacity)`` —
        the cloudlet's *new* capacities (absolute values, not increments).
    price_changes:
        ``cloudlet node_id -> (alpha, beta)`` — the cloudlet's new
        congestion price coefficients (Eq. 1–2).
    """

    arrivals: Tuple[ServiceProvider, ...] = ()
    departures: Tuple[int, ...] = ()
    capacity_changes: Mapping[int, Tuple[float, float]] = field(default_factory=dict)
    price_changes: Mapping[int, Tuple[float, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "arrivals", tuple(self.arrivals))
        object.__setattr__(
            self, "departures", tuple(sorted(int(pid) for pid in self.departures))
        )
        object.__setattr__(
            self,
            "capacity_changes",
            {
                int(node): (float(cpu), float(bw))
                for node, (cpu, bw) in dict(self.capacity_changes).items()
            },
        )
        object.__setattr__(
            self,
            "price_changes",
            {
                int(node): (float(alpha), float(beta))
                for node, (alpha, beta) in dict(self.price_changes).items()
            },
        )

        arriving = [p.provider_id for p in self.arrivals]
        if len(set(arriving)) != len(arriving):
            raise ConfigurationError("delta arrivals carry duplicate provider ids")
        both = set(arriving) & set(self.departures)
        if both:
            raise ConfigurationError(
                f"providers {sorted(both)} both arrive and depart in one delta"
            )
        if len(set(self.departures)) != len(self.departures):
            raise ConfigurationError("delta departures carry duplicate provider ids")
        for node, (cpu, bw) in self.capacity_changes.items():
            if cpu < 0 or bw < 0:
                raise ConfigurationError(
                    f"capacity change for cloudlet {node} must be non-negative, "
                    f"got {(cpu, bw)}"
                )
        for node, (alpha, beta) in self.price_changes.items():
            if alpha < 0 or beta < 0:
                raise ConfigurationError(
                    f"price change for cloudlet {node} must be non-negative, "
                    f"got {(alpha, beta)}"
                )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def is_empty(self) -> bool:
        """True when applying this delta would change nothing."""
        return not (
            self.arrivals
            or self.departures
            or self.capacity_changes
            or self.price_changes
        )

    def __bool__(self) -> bool:
        return not self.is_empty

    @property
    def churn(self) -> int:
        """Provider arrivals plus departures."""
        return len(self.arrivals) + len(self.departures)

    @property
    def arriving_ids(self) -> Tuple[int, ...]:
        """Ids of the arriving providers, in id order."""
        return tuple(sorted(p.provider_id for p in self.arrivals))

    def __repr__(self) -> str:
        return (
            f"MarketDelta(arrivals={len(self.arrivals)}, "
            f"departures={len(self.departures)}, "
            f"capacity_changes={len(self.capacity_changes)}, "
            f"price_changes={len(self.price_changes)})"
        )


__all__ = ["MarketDelta"]

"""The market mutation protocol: :class:`MarketDelta`.

A market changes in exactly six ways — providers arrive, providers depart,
cloudlet capacities change, cloudlet congestion prices change, cloudlets
*fail*, and failed cloudlets *recover*.  Historically every mutation site
poked the object graph directly and (at best) called
``ServiceMarket.invalidate_compiled()``, turning each epoch of a dynamic
run into a full recompilation.  :class:`MarketDelta` makes the mutation
itself a value: call :meth:`ServiceMarket.apply
<repro.market.market.ServiceMarket.apply>` with a delta and both the object
graph and the cached :class:`~repro.market.compiled.CompiledMarket` are
patched in O(changed rows) instead of being rebuilt from scratch.

Outages and recoveries are distinct from capacity changes because they are
*reversible* without the caller remembering anything: an outage zeroes the
cloudlet's effective capacity while the market records its nominal
capacity, and the matching recovery restores it exactly.  That keeps outage
traces (see :mod:`repro.dynamics.outages`) expressible as pure event
streams — the testbed's "still transmitting if one switch is down"
redundancy story (Section IV.C), exercised rather than assumed.

Deltas are immutable and self-validating; they deliberately cover only the
mutations the compiled tables capture.  Anything else (pricing policy,
congestion function, latency budget) still requires building a new market —
those are different *economies*, not the same market a moment later.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Tuple

from repro.exceptions import ConfigurationError
from repro.market.service import ServiceProvider


@dataclass(frozen=True)
class MarketDelta:
    """One batch of market mutations, applied atomically.

    Parameters
    ----------
    arrivals:
        New :class:`~repro.market.service.ServiceProvider` objects entering
        the market.  Ids must be unique within the delta (and, at apply
        time, not already present).
    departures:
        Provider ids leaving the market.
    capacity_changes:
        ``cloudlet node_id -> (compute_capacity, bandwidth_capacity)`` —
        the cloudlet's *new* capacities (absolute values, not increments).
    price_changes:
        ``cloudlet node_id -> (alpha, beta)`` — the cloudlet's new
        congestion price coefficients (Eq. 1–2).
    outages:
        Cloudlet node ids going *down* this delta.  The market zeroes
        their effective capacity and remembers the nominal values; at
        apply time the node must be up, and at least one cloudlet must
        survive the delta (the testbed's redundancy assumption).
    recoveries:
        Cloudlet node ids coming *back up*; their nominal capacities are
        restored.  At apply time the node must currently be failed.
    """

    arrivals: Tuple[ServiceProvider, ...] = ()
    departures: Tuple[int, ...] = ()
    capacity_changes: Mapping[int, Tuple[float, float]] = field(default_factory=dict)
    price_changes: Mapping[int, Tuple[float, float]] = field(default_factory=dict)
    outages: Tuple[int, ...] = ()
    recoveries: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "arrivals", tuple(self.arrivals))
        object.__setattr__(
            self, "departures", tuple(sorted(int(pid) for pid in self.departures))
        )
        object.__setattr__(
            self,
            "capacity_changes",
            {
                int(node): (float(cpu), float(bw))
                for node, (cpu, bw) in dict(self.capacity_changes).items()
            },
        )
        object.__setattr__(
            self,
            "price_changes",
            {
                int(node): (float(alpha), float(beta))
                for node, (alpha, beta) in dict(self.price_changes).items()
            },
        )
        object.__setattr__(
            self, "outages", tuple(sorted(int(node) for node in self.outages))
        )
        object.__setattr__(
            self, "recoveries", tuple(sorted(int(node) for node in self.recoveries))
        )

        arriving = [p.provider_id for p in self.arrivals]
        if len(set(arriving)) != len(arriving):
            raise ConfigurationError("delta arrivals carry duplicate provider ids")
        both = set(arriving) & set(self.departures)
        if both:
            raise ConfigurationError(
                f"providers {sorted(both)} both arrive and depart in one delta"
            )
        if len(set(self.departures)) != len(self.departures):
            raise ConfigurationError("delta departures carry duplicate provider ids")
        for node, (cpu, bw) in self.capacity_changes.items():
            if cpu < 0 or bw < 0:
                raise ConfigurationError(
                    f"capacity change for cloudlet {node} must be non-negative, "
                    f"got {(cpu, bw)}"
                )
        for node, (alpha, beta) in self.price_changes.items():
            if alpha < 0 or beta < 0:
                raise ConfigurationError(
                    f"price change for cloudlet {node} must be non-negative, "
                    f"got {(alpha, beta)}"
                )
        if len(set(self.outages)) != len(self.outages):
            raise ConfigurationError("delta outages carry duplicate cloudlets")
        if len(set(self.recoveries)) != len(self.recoveries):
            raise ConfigurationError("delta recoveries carry duplicate cloudlets")
        flapping = set(self.outages) & set(self.recoveries)
        if flapping:
            raise ConfigurationError(
                f"cloudlets {sorted(flapping)} both fail and recover in one delta"
            )
        ambiguous = (set(self.outages) | set(self.recoveries)) & set(
            self.capacity_changes
        )
        if ambiguous:
            raise ConfigurationError(
                f"cloudlets {sorted(ambiguous)} carry both an outage/recovery "
                f"and a capacity change in one delta; order is ambiguous — "
                f"split them across two deltas"
            )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def is_empty(self) -> bool:
        """True when applying this delta would change nothing."""
        return not (
            self.arrivals
            or self.departures
            or self.capacity_changes
            or self.price_changes
            or self.outages
            or self.recoveries
        )

    def __bool__(self) -> bool:
        return not self.is_empty

    @property
    def churn(self) -> int:
        """Provider arrivals plus departures."""
        return len(self.arrivals) + len(self.departures)

    @property
    def arriving_ids(self) -> Tuple[int, ...]:
        """Ids of the arriving providers, in id order."""
        return tuple(sorted(p.provider_id for p in self.arrivals))

    def __repr__(self) -> str:
        return (
            f"MarketDelta(arrivals={len(self.arrivals)}, "
            f"departures={len(self.departures)}, "
            f"capacity_changes={len(self.capacity_changes)}, "
            f"price_changes={len(self.price_changes)}, "
            f"outages={len(self.outages)}, "
            f"recoveries={len(self.recoveries)})"
        )


__all__ = ["MarketDelta"]

"""Workload generation with the Section IV.A parameter distributions.

One :class:`WorkloadParams` instance pins down every random range the paper
names: request counts, per-request traffic (10–200 MB), service data volume
(1–5 GB), consistency-update ratio (10%), and the per-request compute /
bandwidth intensities that the ``a_max`` / ``b_max`` sweeps of Fig. 7 scale.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.market.market import ServiceMarket
from repro.market.pricing import Pricing
from repro.market.service import Service, ServiceProvider
from repro.market.costs import CongestionFunction
from repro.network.topology import MECNetwork
from repro.utils.rng import RandomSource, as_rng, uniform, uniform_int

MB_PER_GB = 1024.0


@dataclass(frozen=True)
class WorkloadParams:
    """Random ranges for provider/service generation.

    Defaults follow Section IV.A; the demand-intensity ranges are chosen so
    that a 100-provider market loads a 25-cloudlet network to a realistic
    60–90% and every service fits in every cloudlet (Lemma 1's standing
    assumption that capacities far exceed the maximum single demand).
    """

    requests_range: Tuple[int, int] = (80, 160)
    #: a_l — compute units per request; demand a_l*r_l lands in ~[0.5, 1.9]
    #: VM-units. The paper treats a_max/a_min as a small given constant
    #: (Section III.B), so the range is deliberately tight.
    compute_per_request_range: Tuple[float, float] = (0.006, 0.012)
    #: b_l — Mbps per request; demand b_l*r_l lands in ~[12, 48] Mbps.
    bandwidth_per_request_range: Tuple[float, float] = (0.15, 0.3)
    #: Per-request payload, MB (Section IV.A: [10, 200] MB).
    traffic_mb_range: Tuple[float, float] = (10.0, 200.0)
    #: Service data volume, GB (Section IV.A: [1, 5] GB).
    data_volume_gb_range: Tuple[float, float] = (1.0, 5.0)
    #: Update/synchronisation ratio (Section IV.A: 10%).
    update_ratio: float = 0.10
    #: Consistency sync rounds per decision epoch (see Service.sync_frequency).
    sync_frequency: float = 10.0
    #: Number of user aggregation points per service. (1, 1) keeps the
    #: paper's single-cluster model; wider ranges feed the multi-replica
    #: extension (repro.core.multicache), where dispersed users make extra
    #: replicas worthwhile.
    user_clusters_range: Tuple[int, int] = (1, 1)
    #: Base VM instantiation cost, $.
    instantiation_cost_range: Tuple[float, float] = (0.05, 0.25)
    #: Multipliers applied to the compute / bandwidth intensity draws —
    #: the knobs of the Fig. 7 a_max / b_max sweeps.
    compute_scale: float = 1.0
    bandwidth_scale: float = 1.0

    def scaled(self, compute_scale: float = 1.0, bandwidth_scale: float = 1.0) -> "WorkloadParams":
        """A copy with demand intensities multiplied (Fig. 7 sweeps)."""
        return replace(
            self,
            compute_scale=self.compute_scale * compute_scale,
            bandwidth_scale=self.bandwidth_scale * bandwidth_scale,
        )


def generate_providers(
    network: MECNetwork,
    n_providers: int,
    params: Optional[WorkloadParams] = None,
    rng: RandomSource = None,
) -> List[ServiceProvider]:
    """Draw ``n_providers`` providers, homing each service at a random DC."""
    if n_providers < 1:
        raise ConfigurationError(f"n_providers must be >= 1, got {n_providers}")
    params = params if params is not None else WorkloadParams()
    rng = as_rng(rng)
    dcs = network.data_centers
    if not dcs:
        raise ConfigurationError("network has no data centers to home services")

    nodes = sorted(network.graph.nodes)
    single_cluster = params.user_clusters_range == (1, 1)
    providers: List[ServiceProvider] = []
    for pid in range(n_providers):
        requests = uniform_int(rng, *params.requests_range)
        a_l = uniform(rng, *params.compute_per_request_range) * params.compute_scale
        b_l = uniform(rng, *params.bandwidth_per_request_range) * params.bandwidth_scale
        traffic_gb = requests * uniform(rng, *params.traffic_mb_range) / MB_PER_GB
        service = Service(
            service_id=pid,
            requests=requests,
            compute_per_request=a_l,
            bandwidth_per_request=b_l,
            data_volume_gb=uniform(rng, *params.data_volume_gb_range),
            update_ratio=params.update_ratio,
            sync_frequency=params.sync_frequency,
            request_traffic_gb=traffic_gb,
            instantiation_cost=uniform(rng, *params.instantiation_cost_range),
            home_dc=dcs[int(rng.integers(0, len(dcs)))].node_id,
            # The single-cluster default consumes exactly one node draw
            # here, keeping seeded experiments bit-identical to the
            # pre-extension workload model.
            user_node=nodes[int(rng.integers(0, len(nodes)))],
        )
        if not single_cluster:
            n_clusters = uniform_int(rng, *params.user_clusters_range)
            if n_clusters > 1:
                cluster_nodes = [service.user_node] + [
                    nodes[int(rng.integers(0, len(nodes)))]
                    for _ in range(n_clusters - 1)
                ]
                raw = rng.dirichlet([2.0] * n_clusters)
                service.user_clusters = tuple(
                    (node, float(w)) for node, w in zip(cluster_nodes, raw)
                )
        providers.append(ServiceProvider(provider_id=pid, service=service))
    return providers


def generate_market(
    network: MECNetwork,
    n_providers: int,
    params: Optional[WorkloadParams] = None,
    rng: RandomSource = None,
    pricing: Optional[Pricing] = None,
    congestion: Optional[CongestionFunction] = None,
    latency_budget_ms: Optional[float] = None,
    remote_premium: float = 20.0,
) -> ServiceMarket:
    """Generate a full market: providers + pricing over a given network."""
    rng = as_rng(rng)
    providers = generate_providers(network, n_providers, params=params, rng=rng)
    if pricing is None:
        pricing = Pricing.random(rng)
    return ServiceMarket(
        network,
        providers,
        pricing=pricing,
        congestion=congestion,
        latency_budget_ms=latency_budget_ms,
        remote_premium=remote_premium,
    )


__all__ = ["WorkloadParams", "generate_providers", "generate_market", "MB_PER_GB"]

"""The compiled (array-backed) instance representation of a market.

Every algorithm layer in the library consumes the same instance data —
fixed caching costs (Eq. 3's ``c_l^ins + c_i^bdw``), per-cloudlet
congestion charges ``(alpha_i + beta_i) * g(k)``, provider demand vectors
and cloudlet capacity vectors — but historically each layer re-derived it
from the :class:`~repro.market.market.ServiceMarket` object graph on every
call: Appro rebuilt its GAP instance (Eq. 9) pair by pair, the baselines
re-queried the cost model per candidate cloudlet, ``optimal`` re-tabulated
fixed costs, and the game engine compiled its own private tables.

:class:`CompiledMarket` is the one structure-of-arrays all of them share.
It is built exactly once per market (``ServiceMarket.compile()`` caches it
on the instance) by evaluating the cost model's own methods, so every table
entry is **bit-equal** to the object-graph evaluation it replaces — the
compiled and object paths must agree on placements and social costs
exactly, which ``tests/integration/test_compiled_equivalence.py`` pins
differentially.

It is also a *live* structure: when the market changes — providers arrive
or depart, capacities or congestion prices move — a
:class:`~repro.market.delta.MarketDelta` applied through
``ServiceMarket.apply()`` patches only the affected rows via
:meth:`CompiledMarket.apply_delta` (tombstoned rows are recycled and the
tables periodically compacted), so a churning population never pays a full
recompile. Consumers therefore must address rows through ``provider_index``
or :attr:`CompiledMarket.active_rows` rather than assume row ``i`` is the
``i``-th provider in id order; after any delta the gathered view is
per-entry equal to a from-scratch ``compile()``, which
``tests/dynamics/test_delta_equivalence.py`` pins over long churn traces.

The blob is deliberately self-contained (plain numpy arrays, id↔index
dicts, and a picklable :class:`~repro.market.costs.CongestionFunction`):
it carries no reference back to the market, network, or cost model, so it
pickles cheaply and can cross a process-pool boundary — the parallel sweep
harness ships precompiled markets to workers instead of rebuilding them
per task (see :mod:`repro.experiments.parallel`).

Summation order matters for bit-equality: :meth:`social_cost` gathers the
per-provider terms with one vectorised table lookup but folds them
left-to-right in placement order, exactly like
:meth:`~repro.market.costs.CostModel.social_cost` does, so the two paths
return the same float, not merely the same value within tolerance.
"""

from __future__ import annotations

import bisect
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, NamedTuple, Optional, TYPE_CHECKING

import numpy as np

from repro.exceptions import ConfigurationError
from repro.market.costs import CongestionFunction
from repro.utils.contracts import invariants_active, sanitize_active
from repro.utils.validation import CAPACITY_EPS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (market imports us)
    from repro.market.delta import MarketDelta
    from repro.market.market import ServiceMarket
    from repro.market.service import ServiceProvider

#: Tombstoned rows tolerated before :meth:`CompiledMarket.compact` fires
#: (beyond one full active population's worth).
COMPACTION_SLACK = 16

#: Instance representations an algorithm can run on: ``"compiled"`` (the
#: array-backed :class:`CompiledMarket`, the default) or ``"object"`` (the
#: reference object-graph path, kept as the differential-testing oracle —
#: the same role the ``"naive"`` engine plays for best-response dynamics).
REPRESENTATIONS = ("compiled", "object")


class _ProviderRow(NamedTuple):
    """One provider's worth of compiled table entries."""

    instantiation: float
    remote: float
    demand: np.ndarray  # (2,)
    access: np.ndarray  # (m,)
    update: np.ndarray  # (m,)
    user_delay: np.ndarray  # (m,)
    access_delay: Optional[np.ndarray]  # (m,) or None without a budget


class _ProviderRowBuilder:
    """Evaluates one provider's table rows from the market's cost model.

    Shared by :meth:`CompiledMarket.from_market` (all rows at build time)
    and :meth:`CompiledMarket.apply_delta` (arrival rows only), so a
    delta-patched row is bit-equal to the row a fresh compile would have
    produced — same operand order, same memoised routing rows.
    """

    def __init__(self, market: "ServiceMarket") -> None:
        model = market.cost_model
        net = market.network
        self.model = model
        self.routing = net.routing
        self.cl_nodes = [cl.node_id for cl in net.cloudlets]
        self.transmit = model.pricing.transmit_per_gb
        self.surcharge = model.pricing.hop_surcharge
        self.budget = model.latency_budget_ms
        self.bdw_units = np.array(
            [cl.bdw_unit_cost for cl in net.cloudlets], dtype=float
        )
        # One single-source row per distinct endpoint (user nodes, home
        # DCs), gathered over the cloudlet columns. Values are the same
        # memoised BFS/Dijkstra results the per-pair queries return.
        self._hop_cache: Dict[int, np.ndarray] = {}
        self._delay_cache: Dict[int, np.ndarray] = {}

    def hops_to_cloudlets(self, u: int) -> np.ndarray:
        arr = self._hop_cache.get(u)
        if arr is None:
            row = self.routing.hop_row(u)
            arr = np.array([row[v] for v in self.cl_nodes], dtype=float)
            self._hop_cache[u] = arr
        return arr

    def delays_to_cloudlets(self, u: int) -> np.ndarray:
        arr = self._delay_cache.get(u)
        if arr is None:
            row = self.routing.delay_row(u)
            arr = np.array([row[v] for v in self.cl_nodes], dtype=float)
            self._delay_cache[u] = arr
        return arr

    def build(self, p: "ServiceProvider") -> _ProviderRow:
        svc = p.service
        m = len(self.cl_nodes)
        # access_cost: per-cluster transmission charges, folded in
        # cluster order — volume * price * (1 + surcharge * hops).
        acc = np.zeros(m, dtype=float)
        for node, weight in svc.clusters:
            volume_price = (svc.request_traffic_gb * weight) * self.transmit
            acc = acc + volume_price * (
                1.0 + self.surcharge * self.hops_to_cloudlets(node)
            )
        # update_cost: cloudlet bandwidth charge plus the hop-scaled
        # consistency-update transit back to the home data center.
        vol = svc.update_volume_gb
        upd = self.bdw_units * vol + (vol * self.transmit) * (
            1.0 + self.surcharge * self.hops_to_cloudlets(svc.home_dc)
        )
        access_delay: Optional[np.ndarray] = None
        if self.budget is not None:
            dly = np.zeros(m, dtype=float)
            for node, weight in svc.clusters:
                dly = dly + weight * self.delays_to_cloudlets(node)
            access_delay = dly
        return _ProviderRow(
            instantiation=self.model.instantiation_cost(p),
            remote=self.model.remote_cost(p),
            demand=np.array([p.compute_demand, p.bandwidth_demand], dtype=float),
            access=acc,
            update=upd,
            user_delay=self.delays_to_cloudlets(svc.user_node),
            access_delay=access_delay,
        )

    def fixed_row(self, row: _ProviderRow) -> np.ndarray:
        """Eq. (3)'s congestion-free cost with the latency-budget mask —
        elementwise the same ``inst + access + update`` fold (and the same
        ``np.where`` mask) as the 2-D build in :meth:`from_market`."""
        fixed = row.instantiation + row.access + row.update
        if row.access_delay is not None:
            fixed = np.where(row.access_delay > self.budget, np.inf, fixed)
        return fixed


class CompiledMarket:
    """Dense-array view of a :class:`~repro.market.market.ServiceMarket`.

    Tables (``n`` providers in id order, ``m`` cloudlets in network order)
    ----------------------------------------------------------------------
    ``fixed``
        ``(n, m)`` — the congestion-free part of Eq. (3),
        ``c_l^ins + c_i^bdw`` including the hop-scaled update distance;
        ``+inf`` marks forbidden pairs (latency-budget violations).
    ``instantiation`` / ``access`` / ``update``
        The components of ``fixed``: ``c_l^ins`` per provider ``(n,)``,
        request-offloading cost ``(n, m)``, and consistency-update cost
        ``(n, m)`` (Section II.C). The baselines price subsets of these.
    ``coeff``
        ``(m,)`` — ``alpha_i + beta_i`` per cloudlet (Eq. 1–2).
    ``g``
        ``(n + 1,)`` — the congestion function at occupancies ``0..n``.
    ``shared``
        ``(m, n + 1)`` — ``shared[i, k] = coeff[i] * g[k]``, the anonymous
        congestion charge of Eq. (3) at every occupancy any profile can
        reach; works for any :class:`CongestionFunction`.
    ``demand``
        ``(n, 2)`` — ``(a_l * r_l, b_l * r_l)`` per provider.
    ``capacity``
        ``(m, 2)`` — ``(C(CL_i), B(CL_i))`` per cloudlet (Eq. 7's inputs).
    ``remote``
        ``(n,)`` — the "do not cache" remote-serving cost per provider.
    ``user_delay``
        ``(n, m)`` — end-to-end delay from each provider's user node to
        each cloudlet (the ``OffloadCache`` baseline's objective).
    """

    def __init__(
        self,
        provider_ids: List[int],
        cloudlet_nodes: List[int],
        fixed: np.ndarray,
        instantiation: np.ndarray,
        access: np.ndarray,
        update: np.ndarray,
        coeff: np.ndarray,
        g: np.ndarray,
        demand: np.ndarray,
        capacity: np.ndarray,
        remote: np.ndarray,
        user_delay: np.ndarray,
        congestion: CongestionFunction,
    ) -> None:
        self.provider_ids = provider_ids
        self.cloudlet_nodes = cloudlet_nodes
        self.provider_index: Dict[int, int] = {
            pid: i for i, pid in enumerate(provider_ids)
        }
        self.cloudlet_index: Dict[int, int] = {
            node: j for j, node in enumerate(cloudlet_nodes)
        }
        self.fixed = fixed
        self.instantiation = instantiation
        self.access = access
        self.update = update
        self.coeff = coeff
        self.g = g
        self.shared = coeff[:, None] * g[None, :]
        self.demand = demand
        self.capacity = capacity
        self.remote = remote
        self.user_delay = user_delay
        self.congestion = congestion
        # Delta bookkeeping: tombstoned physical rows available for reuse,
        # and the cached active-row gather (see :meth:`apply_delta`).
        self._free_rows: List[int] = []
        self._active_rows: Optional[np.ndarray] = None
        # Write sanitizer (REPRO_SANITIZE=1): freeze the tables outside the
        # internal writable context the build/patch paths run under, so a
        # stray in-place write raises at the write site (reprolint R9's
        # runtime witness). Latched at construction; per-instance.
        self._sanitize = sanitize_active()
        self._writable_depth = 0
        self._freeze_tables()

    # ------------------------------------------------------------------ #
    # Write sanitizer
    # ------------------------------------------------------------------ #
    #: The numpy tables the sanitizer freezes/thaws as one unit.
    _TABLE_FIELDS = (
        "fixed",
        "instantiation",
        "access",
        "update",
        "coeff",
        "g",
        "shared",
        "demand",
        "capacity",
        "remote",
        "user_delay",
    )

    def _set_tables_writeable(self, writeable: bool) -> None:
        for name in self._TABLE_FIELDS:
            getattr(self, name).flags.writeable = writeable

    def _freeze_tables(self) -> None:
        if self._sanitize and self._writable_depth == 0:
            self._set_tables_writeable(False)

    @contextmanager
    def _writable_tables(self) -> Iterator[None]:
        """Temporarily thaw the tables for a sanctioned patch path.

        Reentrant (``apply_delta`` calls ``_grow_rows``/``compact`` inside
        its own context): a depth counter thaws on first entry and
        re-freezes on last exit. The exit freeze iterates the *current*
        attribute values, so paths that rebind a table (``np.vstack``
        growth, compaction gathers) leave the new arrays frozen too.
        """
        if not self._sanitize:
            yield
            return
        if self._writable_depth == 0:
            self._set_tables_writeable(True)
        self._writable_depth += 1
        try:
            yield
        finally:
            self._writable_depth -= 1
            if self._writable_depth == 0:
                self._set_tables_writeable(False)

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        # Pickles cross process boundaries (the sweep harness ships
        # compiled blobs to workers) and may predate the sanitizer fields:
        # re-evaluate the flag in the receiving process and normalise the
        # writeable flags, which numpy does not reliably round-trip.
        self._sanitize = sanitize_active()
        self._writable_depth = 0
        self._set_tables_writeable(not self._sanitize)
        if self._active_rows is not None:
            self._active_rows.flags.writeable = False

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_market(cls, market: "ServiceMarket") -> "CompiledMarket":
        """Evaluate the market's cost model once into dense tables.

        The per-pair tables are assembled row-wise from the routing
        table's single-source distance rows, applying the cost model's
        arithmetic (Section II.C / IV.A pricing) in the exact operand and
        association order of the scalar methods — every entry is bit-equal
        to the per-pair ``CostModel`` evaluation, which
        :meth:`verify_against` re-checks whenever runtime invariants are
        armed.
        """
        model = market.cost_model
        net = market.network
        providers = market.providers
        cloudlets = net.cloudlets
        n, m = len(providers), len(cloudlets)
        if m == 0:
            raise ConfigurationError("market network has no cloudlets to compile")

        builder = _ProviderRowBuilder(market)
        budget = model.latency_budget_ms

        instantiation = np.empty(n, dtype=float)
        access = np.empty((n, m), dtype=float)
        update = np.empty((n, m), dtype=float)
        user_delay = np.empty((n, m), dtype=float)
        access_delay = np.empty((n, m), dtype=float) if budget is not None else None
        remote = np.empty(n, dtype=float)
        demand = np.empty((n, 2), dtype=float)
        for i, p in enumerate(providers):
            row = builder.build(p)
            instantiation[i] = row.instantiation
            remote[i] = row.remote
            demand[i] = row.demand
            access[i] = row.access
            update[i] = row.update
            user_delay[i] = row.user_delay
            if access_delay is not None:
                access_delay[i] = row.access_delay

        fixed = instantiation[:, None] + access + update
        if access_delay is not None:
            fixed = np.where(access_delay > budget, np.inf, fixed)

        coeff = np.array([cl.alpha + cl.beta for cl in cloudlets], dtype=float)
        g = np.array([model.congestion(k) for k in range(n + 1)], dtype=float)
        capacity = np.array(
            [[cl.compute_capacity, cl.bandwidth_capacity] for cl in cloudlets],
            dtype=float,
        )

        compiled = cls(
            provider_ids=[p.provider_id for p in providers],
            cloudlet_nodes=[cl.node_id for cl in cloudlets],
            fixed=fixed,
            instantiation=instantiation,
            access=access,
            update=update,
            coeff=coeff,
            g=g,
            demand=demand,
            capacity=capacity,
            remote=remote,
            user_delay=user_delay,
            congestion=model.congestion,
        )
        if invariants_active():
            compiled.verify_against(market)
        return compiled

    # ------------------------------------------------------------------ #
    # Delta recompilation (the mutation protocol's compiled half)
    # ------------------------------------------------------------------ #
    def apply_delta(self, delta: "MarketDelta", market: "ServiceMarket") -> None:
        """Patch the tables in place for one :class:`MarketDelta`.

        O(changed rows) instead of a full recompile:

        * price changes rewrite one ``coeff`` entry and one ``shared`` row
          (the same ``coeff * g`` products a fresh compile computes);
        * capacity changes store into the ``(m, 2)`` capacity vector;
        * departures *tombstone* their physical row (``fixed``/``remote``
          scrubbed to ``+inf`` so a stale gather can never look feasible)
          and recycle it through a free list;
        * arrivals reuse tombstoned rows — appending fresh ones only when
          the free list runs dry — with rows built by the same
          :class:`_ProviderRowBuilder` as :meth:`from_market`, so every
          entry is bit-equal to a from-scratch compile;
        * the congestion prefix ``g`` (and the ``shared`` table) grow to
          the new maximum occupancy when the population expands.

        ``market`` must already reflect the delta (call through
        :meth:`ServiceMarket.apply`, which orders the two). After
        :data:`COMPACTION_SLACK` plus one population's worth of tombstones
        accumulate, :meth:`compact` rewrites the tables dense.

        Physical row order is *not* id order after a delta — consumers
        must gather through ``provider_index`` / :attr:`active_rows`
        rather than assume ``row i == i-th provider``.
        """
        # Validate against current state before mutating anything.
        for node in (
            *delta.price_changes,
            *delta.capacity_changes,
            *delta.outages,
            *delta.recoveries,
        ):
            self.cloudlet_col(node)
        missing = [pid for pid in delta.departures if pid not in self.provider_index]
        if missing:
            raise ConfigurationError(
                f"cannot depart unknown provider ids {missing}"
            )
        departing = set(delta.departures)
        dup = [
            p.provider_id
            for p in delta.arrivals
            if p.provider_id in self.provider_index
            and p.provider_id not in departing
        ]
        if dup:
            raise ConfigurationError(f"arriving provider ids {dup} already present")

        with self._writable_tables():
            for node, (alpha, beta) in delta.price_changes.items():
                j = self.cloudlet_index[node]
                self.coeff[j] = alpha + beta
                self.shared[j, :] = self.coeff[j] * self.g
            for node, (cpu, bw) in delta.capacity_changes.items():
                j = self.cloudlet_index[node]
                self.capacity[j, 0] = cpu
                self.capacity[j, 1] = bw
            # Outages/recoveries are capacity patches too: ``market``
            # already reflects the delta (zeroed on outage, nominal
            # restored on recovery), so the cloudlet's live capacities are
            # the new truth.
            for node in (*delta.outages, *delta.recoveries):
                j = self.cloudlet_index[node]
                cl = market.network.cloudlet_at(node)
                self.capacity[j, 0] = cl.compute_capacity
                self.capacity[j, 1] = cl.bandwidth_capacity

            for pid in delta.departures:
                row = self.provider_index.pop(pid)
                self.provider_ids.remove(pid)
                self._free_rows.append(row)
                self.fixed[row, :] = np.inf
                self.remote[row] = np.inf
                self.demand[row, :] = 0.0

            arrivals = sorted(delta.arrivals, key=lambda p: p.provider_id)
            if arrivals:
                grow = len(arrivals) - len(self._free_rows)
                if grow > 0:
                    self._grow_rows(grow)
                builder = _ProviderRowBuilder(market)
                for p in arrivals:
                    row = self._free_rows.pop()
                    built = builder.build(p)
                    self.instantiation[row] = built.instantiation
                    self.remote[row] = built.remote
                    self.demand[row] = built.demand
                    self.access[row] = built.access
                    self.update[row] = built.update
                    self.user_delay[row] = built.user_delay
                    self.fixed[row] = builder.fixed_row(built)
                    bisect.insort(self.provider_ids, p.provider_id)
                    self.provider_index[p.provider_id] = row

            self._active_rows = None

            n = len(self.provider_ids)
            if n + 1 > len(self.g):
                new_g = np.array(
                    [self.congestion(k) for k in range(len(self.g), n + 1)],
                    dtype=float,
                )
                self.g = np.concatenate([self.g, new_g])
                self.shared = np.concatenate(
                    [self.shared, self.coeff[:, None] * new_g[None, :]], axis=1
                )

        if len(self._free_rows) > max(COMPACTION_SLACK, n):
            self.compact()
        if invariants_active():
            self.verify_against(market)

    def _grow_rows(self, k: int) -> None:
        """Append ``k`` blank physical rows (pushed onto the free list)."""
        with self._writable_tables():
            old = self.fixed.shape[0]
            m = self.n_cloudlets
            self.fixed = np.vstack([self.fixed, np.full((k, m), np.inf)])
            self.access = np.vstack([self.access, np.zeros((k, m))])
            self.update = np.vstack([self.update, np.zeros((k, m))])
            self.user_delay = np.vstack([self.user_delay, np.zeros((k, m))])
            self.instantiation = np.concatenate([self.instantiation, np.zeros(k)])
            self.remote = np.concatenate([self.remote, np.full(k, np.inf)])
            self.demand = np.vstack([self.demand, np.zeros((k, 2))])
            self._free_rows.extend(range(old, old + k))

    def compact(self) -> None:
        """Rewrite the tables dense — row ``i`` is again the ``i``-th
        provider in id order — dropping tombstoned rows and trimming the
        congestion prefix back to the active occupancy range."""
        with self._writable_tables():
            rows = self.active_rows
            self.fixed = self.fixed[rows]
            self.access = self.access[rows]
            self.update = self.update[rows]
            self.user_delay = self.user_delay[rows]
            self.instantiation = self.instantiation[rows]
            self.remote = self.remote[rows]
            self.demand = self.demand[rows]
            self.provider_index = {pid: i for i, pid in enumerate(self.provider_ids)}
            self._free_rows = []
            self._active_rows = None
            n = len(self.provider_ids)
            if len(self.g) > n + 1:
                self.g = self.g[: n + 1].copy()
                self.shared = np.ascontiguousarray(self.shared[:, : n + 1])

    # ------------------------------------------------------------------ #
    # Shapes and id↔index maps
    # ------------------------------------------------------------------ #
    @property
    def n_providers(self) -> int:
        return len(self.provider_ids)

    @property
    def n_rows(self) -> int:
        """Physical table rows (active providers plus tombstones)."""
        return int(self.fixed.shape[0])

    @property
    def active_rows(self) -> np.ndarray:
        """Physical row of every active provider, in provider-id order.

        The gather consumers must use instead of assuming dense rows: after
        :meth:`apply_delta`, ``fixed[active_rows]`` (etc.) is the same
        table a fresh compile would produce, whatever the physical layout.
        """
        if self._active_rows is None:
            self._active_rows = np.fromiter(
                (self.provider_index[pid] for pid in self.provider_ids),
                dtype=np.int64,
                count=len(self.provider_ids),
            )
            # Handed out by reference on every call: freeze the cache so no
            # caller can scramble the gather order under every other holder.
            self._active_rows.flags.writeable = False
        return self._active_rows

    @property
    def n_cloudlets(self) -> int:
        return len(self.cloudlet_nodes)

    def provider_row(self, provider_id: int) -> int:
        try:
            return self.provider_index[provider_id]
        except KeyError:
            raise ConfigurationError(f"unknown provider id {provider_id}") from None

    def cloudlet_col(self, node: int) -> int:
        try:
            return self.cloudlet_index[node]
        except KeyError:
            raise ConfigurationError(f"node {node} hosts no cloudlet") from None

    # ------------------------------------------------------------------ #
    # Cost queries (all bit-equal to the CostModel evaluations)
    # ------------------------------------------------------------------ #
    def g_at(self, occupancy: int) -> float:
        """``g(k)``, falling back to the congestion function beyond the
        precomputed range (the GAP split can price slots past ``n``)."""
        if occupancy < len(self.g):
            return float(self.g[occupancy])
        return float(self.congestion(occupancy))

    def gap_costs(self) -> np.ndarray:
        """Eq. (9) flat GAP costs ``alpha_i + beta_i + c_l^ins + c_i^bdw``
        as an ``(n, m)`` table (``CostModel.gap_cost`` vectorised)."""
        return self.coeff[None, :] + self.fixed

    def remote_cost(self, provider_id: int) -> float:
        return float(self.remote[self.provider_row(provider_id)])

    # ------------------------------------------------------------------ #
    # Placement state
    # ------------------------------------------------------------------ #
    def occupancy_vector(self, placement: Mapping[int, int]) -> np.ndarray:
        """``|sigma_i|`` per cloudlet column for a placement
        (``provider_id -> cloudlet node_id``)."""
        occ = np.zeros(self.n_cloudlets, dtype=np.int64)
        for node in placement.values():
            occ[self.cloudlet_index[node]] += 1
        return occ

    def load_matrix(self, placement: Mapping[int, int]) -> np.ndarray:
        """Per-cloudlet ``(compute, bandwidth)`` loads, accumulated in
        placement order (the same addition order as the object-graph
        aggregators, so values are bit-equal)."""
        loads = np.zeros((self.n_cloudlets, 2), dtype=float)
        for pid, node in placement.items():
            loads[self.cloudlet_index[node]] += self.demand[self.provider_index[pid]]
        return loads

    def fits_mask(self, provider_row: int, loads: np.ndarray) -> np.ndarray:
        """Which cloudlets admit the provider's demand on top of ``loads``
        (capacity only; pair admissibility is ``isfinite(fixed)``)."""
        new_load = loads + self.demand[provider_row]
        return np.all(new_load <= self.capacity + CAPACITY_EPS, axis=1)

    # ------------------------------------------------------------------ #
    # Aggregate costs (Eq. 5–6)
    # ------------------------------------------------------------------ #
    def provider_cost(self, provider_id: int, placement: Mapping[int, int]) -> float:
        """``c_l(sigma_l)`` (Eq. 5) for a placed provider."""
        node = placement.get(provider_id)
        if node is None:
            raise ConfigurationError(
                f"provider {provider_id} is unplaced in the given placement"
            )
        j = self.cloudlet_col(node)
        occ = self.occupancy_vector(placement)
        return float(
            self.shared[j, occ[j]] + self.fixed[self.provider_row(provider_id), j]
        )

    def social_cost(self, placement: Mapping[int, int]) -> float:
        """Eq. (6) over the placed providers.

        The congestion and fixed terms come from one vectorised gather;
        the fold runs left-to-right in placement order so the result is
        bit-equal to ``CostModel.social_cost``.
        """
        if not placement:
            return 0.0
        rows = np.fromiter(
            (self.provider_index[pid] for pid in placement), dtype=np.int64,
            count=len(placement),
        )
        cols = np.fromiter(
            (self.cloudlet_index[node] for node in placement.values()),
            dtype=np.int64, count=len(placement),
        )
        occ = np.zeros(self.n_cloudlets, dtype=np.int64)
        np.add.at(occ, cols, 1)
        terms = self.shared[cols, occ[cols]] + self.fixed[rows, cols]
        total = 0.0
        for t in terms.tolist():
            total += t
        return total

    # ------------------------------------------------------------------ #
    # Debug cross-check (armed by REPRO_DEBUG_INVARIANTS=1)
    # ------------------------------------------------------------------ #
    def verify_against(self, market: "ServiceMarket") -> None:
        """Assert every table entry equals its object-graph evaluation.

        Runs at build time when runtime invariants are armed; a mismatch
        means a compiled consumer would silently diverge from the object
        path, so it raises immediately instead.
        """
        from repro.exceptions import InvariantViolation

        model = market.cost_model
        market_ids = [p.provider_id for p in market.providers]
        if market_ids != list(self.provider_ids):
            raise InvariantViolation(
                f"compiled provider ids {self.provider_ids} out of sync with "
                f"market {market_ids}"
            )
        for p in market.providers:
            i = self.provider_index[p.provider_id]
            for j, cl in enumerate(market.network.cloudlets):
                want = model.fixed_cost(p, cl)
                got = float(self.fixed[i, j])
                if got != want and not (np.isinf(got) and np.isinf(want)):
                    raise InvariantViolation(
                        f"compiled fixed[{i},{j}] = {got!r} != object-graph {want!r}"
                    )
            if float(self.remote[i]) != model.remote_cost(p):
                raise InvariantViolation(
                    f"compiled remote[{i}] = {self.remote[i]!r} "
                    f"!= object-graph {model.remote_cost(p)!r}"
                )
            if (
                float(self.demand[i, 0]) != p.compute_demand
                or float(self.demand[i, 1]) != p.bandwidth_demand
            ):
                raise InvariantViolation(
                    f"compiled demand[{i}] = {self.demand[i]!r} out of sync "
                    f"with provider {p.provider_id}"
                )
        for j, cl in enumerate(market.network.cloudlets):
            for k in range(1, self.n_providers + 1):
                want = model.congestion_cost(cl, k)
                if float(self.shared[j, k]) != want:
                    raise InvariantViolation(
                        f"compiled shared[{j},{k}] = {self.shared[j, k]!r} "
                        f"!= object-graph {want!r}"
                    )
            if (
                float(self.capacity[j, 0]) != cl.compute_capacity
                or float(self.capacity[j, 1]) != cl.bandwidth_capacity
            ):
                raise InvariantViolation(
                    f"compiled capacity[{j}] = {self.capacity[j]!r} out of "
                    f"sync with cloudlet {cl.node_id}"
                )

    def __repr__(self) -> str:
        return (
            f"CompiledMarket(providers={self.n_providers}, "
            f"cloudlets={self.n_cloudlets}, congestion={self.congestion!r})"
        )


def resolve_compiled(
    market: "ServiceMarket",
    representation: str = "compiled",
    compiled: Optional[CompiledMarket] = None,
) -> Optional[CompiledMarket]:
    """Normalise an algorithm's ``(representation, compiled)`` arguments.

    Returns the :class:`CompiledMarket` to run on (compiling on demand and
    caching on the market instance), or ``None`` for the object-graph
    reference path. Passing an explicit blob with ``representation="object"``
    is contradictory and rejected.
    """
    if representation not in REPRESENTATIONS:
        raise ConfigurationError(
            f"unknown representation {representation!r}; choose from {REPRESENTATIONS}"
        )
    if representation == "object":
        if compiled is not None:
            raise ConfigurationError(
                "representation='object' cannot take a precompiled market"
            )
        return None
    return compiled if compiled is not None else market.compile()


__all__ = ["COMPACTION_SLACK", "REPRESENTATIONS", "CompiledMarket", "resolve_compiled"]

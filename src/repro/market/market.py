"""The hierarchical service market (Section II.D).

:class:`ServiceMarket` aggregates the network, the provider population, the
pricing policy and the cost model, and owns the leader's bookkeeping of which
providers are coordinated (set ``S``) versus selfish (``N \\ S``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.market.costs import CongestionFunction, CostModel
from repro.market.pricing import Pricing
from repro.market.service import ServiceProvider
from repro.network.topology import MECNetwork
from repro.utils.validation import check_fraction

if TYPE_CHECKING:  # pragma: no cover - avoids a cycle (compiled imports market)
    from repro.market.compiled import CompiledMarket
    from repro.market.delta import MarketDelta


class ServiceMarket:
    """A two-tiered MEC service market with one infrastructure provider.

    Parameters
    ----------
    network:
        The two-tiered MEC network ``G``.
    providers:
        The provider population ``N`` (each owns one service).
    pricing:
        Per-GB resource prices; defaults to the midpoint of Section IV.A.
    congestion:
        Congestion function ``g``; defaults to the paper's linear model.
    remote_premium:
        Multiplier on backhaul transmission for remote ("do not cache")
        serving; passed through to the :class:`~repro.market.costs.CostModel`.
    """

    def __init__(
        self,
        network: MECNetwork,
        providers: Sequence[ServiceProvider],
        pricing: Optional[Pricing] = None,
        congestion: Optional[CongestionFunction] = None,
        latency_budget_ms: Optional[float] = None,
        remote_premium: float = 20.0,
    ) -> None:
        if not providers:
            raise ConfigurationError("a market needs at least one provider")
        ids = [p.provider_id for p in providers]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("provider ids must be unique")
        network.validate()

        self.network = network
        self.providers: List[ServiceProvider] = sorted(
            providers, key=lambda p: p.provider_id
        )
        self.cost_model = CostModel(
            network,
            pricing=pricing,
            congestion=congestion,
            remote_premium=remote_premium,
            latency_budget_ms=latency_budget_ms,
        )
        self._by_id: Dict[int, ServiceProvider] = {
            p.provider_id: p for p in self.providers
        }
        self._compiled: Optional["CompiledMarket"] = None
        #: node -> nominal (compute, bandwidth) capacity saved at outage
        #: time; a node is "failed" exactly while it has an entry here.
        self._failed: Dict[int, Tuple[float, float]] = {}

    # ------------------------------------------------------------------ #
    # Compiled (array-backed) representation
    # ------------------------------------------------------------------ #
    def compile(self) -> "CompiledMarket":
        """The array-backed :class:`~repro.market.compiled.CompiledMarket`
        view of this market, built once and cached on the instance.

        Anything that mutates instance data the tables capture (cloudlet
        capacities, pricing, the congestion function) must call
        :meth:`invalidate_compiled` afterwards.
        """
        if self._compiled is None:
            from repro.market.compiled import CompiledMarket

            self._compiled = CompiledMarket.from_market(self)
        return self._compiled

    def invalidate_compiled(self) -> None:
        """Drop the cached compiled view (after mutating costs/capacities).

        This is the blunt instrument: the next :meth:`compile` pays a full
        rebuild. For the mutations a :class:`~repro.market.delta.MarketDelta`
        expresses — churn, capacity and price changes — use :meth:`apply`,
        which patches the cached view in place instead.
        """
        self._compiled = None
        self.cost_model._fixed_cache.clear()

    # ------------------------------------------------------------------ #
    # Mutation protocol
    # ------------------------------------------------------------------ #
    def apply(self, delta: "MarketDelta") -> None:
        """Apply one :class:`~repro.market.delta.MarketDelta` atomically.

        The one sanctioned way to mutate a live market (reprolint rule R6
        flags direct attribute writes outside ``market/``): the object
        graph — provider population, cloudlet capacities and prices, the
        cost model's memoised fixed costs — and the cached
        :class:`~repro.market.compiled.CompiledMarket` (when one exists)
        are updated together, so the compiled view never goes stale and
        never pays a full recompile.

        Unlike construction, applying a delta may leave the market empty —
        a dynamic population can die out for an epoch and return.
        """
        departing = set(delta.departures)
        missing = departing - set(self._by_id)
        if missing:
            raise ConfigurationError(
                f"cannot depart unknown provider ids {sorted(missing)}"
            )
        dup = {
            p.provider_id for p in delta.arrivals
        } & (set(self._by_id) - departing)
        if dup:
            raise ConfigurationError(
                f"arriving provider ids {sorted(dup)} already present"
            )
        for node in (
            *delta.capacity_changes,
            *delta.price_changes,
            *delta.outages,
            *delta.recoveries,
        ):
            self.network.cloudlet_at(node)
        already_down = [node for node in delta.outages if node in self._failed]
        if already_down:
            raise ConfigurationError(
                f"cloudlets {already_down} are already failed"
            )
        not_down = [node for node in delta.recoveries if node not in self._failed]
        if not_down:
            raise ConfigurationError(
                f"cloudlets {not_down} are not failed and cannot recover"
            )
        failed_cap = [
            node for node in delta.capacity_changes if node in self._failed
        ]
        if failed_cap:
            raise ConfigurationError(
                f"cloudlets {failed_cap} are failed; recover them before "
                f"changing capacities"
            )
        down_after = (set(self._failed) | set(delta.outages)) - set(delta.recoveries)
        if len(down_after) >= len(self.network.cloudlets):
            raise ConfigurationError(
                "delta would fail every cloudlet; the testbed guarantees at "
                "least one survivor (Section IV.C)"
            )

        for pid in delta.departures:
            del self._by_id[pid]
        for p in delta.arrivals:
            self._by_id[p.provider_id] = p
        self.providers = sorted(self._by_id.values(), key=lambda p: p.provider_id)

        if departing:
            cache = self.cost_model._fixed_cache
            for key in list(cache):
                pid = key[1] if key[0] == "remote" else key[0]
                if pid in departing:
                    del cache[key]

        for node, (cpu, bw) in delta.capacity_changes.items():
            cl = self.network.cloudlet_at(node)
            cl.compute_capacity = cpu
            cl.bandwidth_capacity = bw
        for node, (alpha, beta) in delta.price_changes.items():
            cl = self.network.cloudlet_at(node)
            cl.alpha = alpha
            cl.beta = beta
        for node in delta.outages:
            cl = self.network.cloudlet_at(node)
            self._failed[node] = (cl.compute_capacity, cl.bandwidth_capacity)
            cl.compute_capacity = 0.0
            cl.bandwidth_capacity = 0.0
        for node in delta.recoveries:
            cpu, bw = self._failed.pop(node)
            cl = self.network.cloudlet_at(node)
            cl.compute_capacity = cpu
            cl.bandwidth_capacity = bw

        if self._compiled is not None:
            self._compiled.apply_delta(delta, self)

    @property
    def failed_cloudlets(self) -> Tuple[int, ...]:
        """Node ids of currently-failed cloudlets, in id order."""
        return tuple(sorted(self._failed))

    def nominal_capacity(self, node: int) -> Tuple[float, float]:
        """The cloudlet's nominal ``(compute, bandwidth)`` capacity — the
        saved pre-outage values while it is failed, the live ones otherwise."""
        saved = self._failed.get(node)
        if saved is not None:
            return saved
        cl = self.network.cloudlet_at(node)
        return (cl.compute_capacity, cl.bandwidth_capacity)

    # ------------------------------------------------------------------ #
    # Provider access
    # ------------------------------------------------------------------ #
    def provider(self, provider_id: int) -> ServiceProvider:
        try:
            return self._by_id[provider_id]
        except KeyError:
            raise ConfigurationError(f"unknown provider id {provider_id}") from None

    def providers_by_id(self) -> Mapping[int, ServiceProvider]:
        return dict(self._by_id)

    @property
    def num_providers(self) -> int:
        return len(self.providers)

    @property
    def coordinated(self) -> List[ServiceProvider]:
        """The leader-coordinated set ``S``."""
        return [p for p in self.providers if p.coordinated]

    @property
    def selfish(self) -> List[ServiceProvider]:
        """The selfish set ``N \\ S``."""
        return [p for p in self.providers if not p.coordinated]

    def set_coordinated(self, provider_ids: Iterable[int]) -> None:
        """Mark exactly the given providers as coordinated."""
        wanted = set(provider_ids)
        unknown = wanted - set(self._by_id)
        if unknown:
            raise ConfigurationError(f"unknown provider ids {sorted(unknown)}")
        for p in self.providers:
            p.coordinated = p.provider_id in wanted

    def coordination_budget(self, xi: float) -> int:
        """``floor(xi * |N|)`` — how many providers the leader coordinates."""
        check_fraction(xi, "xi")
        return int(xi * self.num_providers)

    # ------------------------------------------------------------------ #
    # Demand statistics (feed the virtual-cloudlet split, Eq. 7–8)
    # ------------------------------------------------------------------ #
    def max_compute_demand(self) -> float:
        """``a_max`` — the largest total computing demand ``a_l * r_l``."""
        return max(p.compute_demand for p in self.providers)

    def min_compute_demand(self) -> float:
        return min(p.compute_demand for p in self.providers)

    def max_bandwidth_demand(self) -> float:
        """``b_max`` — the largest total bandwidth demand ``b_l * r_l``."""
        return max(p.bandwidth_demand for p in self.providers)

    def min_bandwidth_demand(self) -> float:
        return min(p.bandwidth_demand for p in self.providers)

    def total_compute_demand(self) -> float:
        return sum(p.compute_demand for p in self.providers)

    def total_bandwidth_demand(self) -> float:
        return sum(p.bandwidth_demand for p in self.providers)

    def __repr__(self) -> str:
        return (
            f"ServiceMarket(providers={self.num_providers}, "
            f"cloudlets={len(self.network.cloudlets)}, "
            f"coordinated={len(self.coordinated)})"
        )


__all__ = ["ServiceMarket"]

"""The hierarchical service market (Section II.D).

:class:`ServiceMarket` aggregates the network, the provider population, the
pricing policy and the cost model, and owns the leader's bookkeeping of which
providers are coordinated (set ``S``) versus selfish (``N \\ S``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.market.costs import CongestionFunction, CostModel
from repro.market.pricing import Pricing
from repro.market.service import ServiceProvider
from repro.network.topology import MECNetwork
from repro.utils.validation import check_fraction

if TYPE_CHECKING:  # pragma: no cover - avoids a cycle (compiled imports market)
    from repro.market.compiled import CompiledMarket


class ServiceMarket:
    """A two-tiered MEC service market with one infrastructure provider.

    Parameters
    ----------
    network:
        The two-tiered MEC network ``G``.
    providers:
        The provider population ``N`` (each owns one service).
    pricing:
        Per-GB resource prices; defaults to the midpoint of Section IV.A.
    congestion:
        Congestion function ``g``; defaults to the paper's linear model.
    """

    def __init__(
        self,
        network: MECNetwork,
        providers: Sequence[ServiceProvider],
        pricing: Optional[Pricing] = None,
        congestion: Optional[CongestionFunction] = None,
        latency_budget_ms: Optional[float] = None,
    ) -> None:
        if not providers:
            raise ConfigurationError("a market needs at least one provider")
        ids = [p.provider_id for p in providers]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("provider ids must be unique")
        network.validate()

        self.network = network
        self.providers: List[ServiceProvider] = sorted(
            providers, key=lambda p: p.provider_id
        )
        self.cost_model = CostModel(
            network,
            pricing=pricing,
            congestion=congestion,
            latency_budget_ms=latency_budget_ms,
        )
        self._by_id: Dict[int, ServiceProvider] = {
            p.provider_id: p for p in self.providers
        }
        self._compiled: Optional["CompiledMarket"] = None

    # ------------------------------------------------------------------ #
    # Compiled (array-backed) representation
    # ------------------------------------------------------------------ #
    def compile(self) -> "CompiledMarket":
        """The array-backed :class:`~repro.market.compiled.CompiledMarket`
        view of this market, built once and cached on the instance.

        Anything that mutates instance data the tables capture (cloudlet
        capacities, pricing, the congestion function) must call
        :meth:`invalidate_compiled` afterwards.
        """
        if self._compiled is None:
            from repro.market.compiled import CompiledMarket

            self._compiled = CompiledMarket.from_market(self)
        return self._compiled

    def invalidate_compiled(self) -> None:
        """Drop the cached compiled view (after mutating costs/capacities)."""
        self._compiled = None
        self.cost_model._fixed_cache.clear()

    # ------------------------------------------------------------------ #
    # Provider access
    # ------------------------------------------------------------------ #
    def provider(self, provider_id: int) -> ServiceProvider:
        try:
            return self._by_id[provider_id]
        except KeyError:
            raise ConfigurationError(f"unknown provider id {provider_id}") from None

    def providers_by_id(self) -> Mapping[int, ServiceProvider]:
        return dict(self._by_id)

    @property
    def num_providers(self) -> int:
        return len(self.providers)

    @property
    def coordinated(self) -> List[ServiceProvider]:
        """The leader-coordinated set ``S``."""
        return [p for p in self.providers if p.coordinated]

    @property
    def selfish(self) -> List[ServiceProvider]:
        """The selfish set ``N \\ S``."""
        return [p for p in self.providers if not p.coordinated]

    def set_coordinated(self, provider_ids: Iterable[int]) -> None:
        """Mark exactly the given providers as coordinated."""
        wanted = set(provider_ids)
        unknown = wanted - set(self._by_id)
        if unknown:
            raise ConfigurationError(f"unknown provider ids {sorted(unknown)}")
        for p in self.providers:
            p.coordinated = p.provider_id in wanted

    def coordination_budget(self, xi: float) -> int:
        """``floor(xi * |N|)`` — how many providers the leader coordinates."""
        check_fraction(xi, "xi")
        return int(xi * self.num_providers)

    # ------------------------------------------------------------------ #
    # Demand statistics (feed the virtual-cloudlet split, Eq. 7–8)
    # ------------------------------------------------------------------ #
    def max_compute_demand(self) -> float:
        """``a_max`` — the largest total computing demand ``a_l * r_l``."""
        return max(p.compute_demand for p in self.providers)

    def min_compute_demand(self) -> float:
        return min(p.compute_demand for p in self.providers)

    def max_bandwidth_demand(self) -> float:
        """``b_max`` — the largest total bandwidth demand ``b_l * r_l``."""
        return max(p.bandwidth_demand for p in self.providers)

    def min_bandwidth_demand(self) -> float:
        return min(p.bandwidth_demand for p in self.providers)

    def total_compute_demand(self) -> float:
        return sum(p.compute_demand for p in self.providers)

    def total_bandwidth_demand(self) -> float:
        return sum(p.bandwidth_demand for p in self.providers)

    def __repr__(self) -> str:
        return (
            f"ServiceMarket(providers={self.num_providers}, "
            f"cloudlets={len(self.network.cloudlets)}, "
            f"coordinated={len(self.coordinated)})"
        )


__all__ = ["ServiceMarket"]

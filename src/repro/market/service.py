"""Services and network service providers.

Per Section II.B, each network service provider ``sp_l`` offers exactly one
delay-sensitive service ``SV_l`` whose *original instance* lives in a remote
data center; the provider wants to cache one instance into a cloudlet. A
service aggregates ``r_l`` user requests of uniform workload: its computing
demand is ``a_l * r_l`` and its bandwidth demand ``b_l * r_l``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.utils.validation import check_int_at_least, check_non_negative, check_positive


@dataclass
class Service:
    """A network service and its resource/traffic profile.

    Parameters
    ----------
    service_id:
        Unique id (equals the owning provider's id; one service per provider).
    requests:
        ``r_l`` — number of user requests the service must serve.
    compute_per_request:
        ``a_l`` — computing units consumed per request.
    bandwidth_per_request:
        ``b_l`` — Mbps assigned to each request (Section II.B).
    data_volume_gb:
        Size of the service's data/state, 1–5 GB in Section IV.A.
    update_ratio:
        Fraction of ``data_volume_gb`` synchronised back to the original
        instance (10% in Section IV.A).
    request_traffic_gb:
        Total request payload shipped to the instance per decision epoch
        (drawn from [10, 200] MB per request in Section IV.A).
    home_dc:
        Node id of the data center hosting the original instance.
    user_node:
        Switch node where the service's users aggregate; request traffic is
        offloaded from there to the cached instance. ``None`` falls back to
        ``home_dc`` (users co-located with the original instance).
    user_clusters:
        Optional tuple of ``(node, weight)`` pairs splitting the user base
        across several aggregation points (weights must sum to 1). Used by
        the multi-replica extension (:mod:`repro.core.multicache`), where
        each cluster offloads to its nearest replica; single-instance
        algorithms read the weighted mix through the cost model. ``None``
        means one cluster at ``user_node``.
    instantiation_cost:
        ``c_l^ins`` base cost of spinning up the VM and software for a
        cached instance (Eq. 1); request processing charges are added by
        the cost model on top.
    """

    service_id: int
    requests: int
    compute_per_request: float
    bandwidth_per_request: float
    data_volume_gb: float
    home_dc: int
    user_node: int = None
    user_clusters: tuple = None
    update_ratio: float = 0.10
    #: Synchronisation rounds per decision epoch. The paper reserves
    #: ``b_l * r_l`` of bandwidth continuously for consistency updates
    #: (Section II.C); we discretise that into recurring sync rounds, each
    #: shipping ``update_ratio * data_volume_gb`` back to the original
    #: instance.
    sync_frequency: float = 10.0
    request_traffic_gb: float = 0.0
    instantiation_cost: float = 0.0

    def __post_init__(self) -> None:
        check_int_at_least(self.requests, 1, "requests")
        check_positive(self.compute_per_request, "compute_per_request")
        check_positive(self.bandwidth_per_request, "bandwidth_per_request")
        check_positive(self.data_volume_gb, "data_volume_gb")
        check_non_negative(self.update_ratio, "update_ratio")
        check_non_negative(self.sync_frequency, "sync_frequency")
        check_non_negative(self.request_traffic_gb, "request_traffic_gb")
        check_non_negative(self.instantiation_cost, "instantiation_cost")
        if self.user_node is None:
            self.user_node = self.home_dc
        if self.user_clusters is not None:
            clusters = tuple((int(n), float(w)) for n, w in self.user_clusters)
            if not clusters:
                raise ConfigurationError("user_clusters must not be empty")
            total = sum(w for _, w in clusters)
            if abs(total - 1.0) > 1e-6:
                raise ConfigurationError(
                    f"user_clusters weights must sum to 1, got {total}"
                )
            if any(w <= 0 for _, w in clusters):
                raise ConfigurationError("user_clusters weights must be positive")
            self.user_clusters = clusters

    @property
    def clusters(self) -> tuple:
        """The user clusters, normalised: ``((node, weight), ...)``."""
        if self.user_clusters is not None:
            return self.user_clusters
        return ((self.user_node, 1.0),)

    @property
    def compute_demand(self) -> float:
        """``a_l * r_l`` — total computing units if cached."""
        return self.compute_per_request * self.requests

    @property
    def bandwidth_demand(self) -> float:
        """``b_l * r_l`` — total Mbps if cached."""
        return self.bandwidth_per_request * self.requests

    @property
    def update_volume_gb(self) -> float:
        """GB synchronised from the cached to the original instance per
        decision epoch (all sync rounds combined)."""
        return self.update_ratio * self.data_volume_gb * self.sync_frequency


@dataclass
class ServiceProvider:
    """A network service provider ``sp_l`` owning one service.

    ``coordinated`` is set by the Stackelberg leader (the infrastructure
    provider): coordinated providers follow the prescribed Appro strategy;
    the rest play selfishly (Section II.D).
    """

    provider_id: int
    service: Service
    name: str = ""
    coordinated: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.provider_id != self.service.service_id:
            raise ValueError(
                f"provider {self.provider_id} must own service with the same id, "
                f"got service {self.service.service_id}"
            )
        if not self.name:
            self.name = f"sp{self.provider_id}"

    @property
    def compute_demand(self) -> float:
        return self.service.compute_demand

    @property
    def bandwidth_demand(self) -> float:
        return self.service.bandwidth_demand


__all__ = ["Service", "ServiceProvider"]

"""Region sharding of a service market: partition, routing, and the log.

The market's network model is naturally regional — GT-ITM transit-stub
graphs group stub domains under transit homes (``region_map`` in
:mod:`repro.network.generators`) — and most caching interaction is local:
with a latency budget armed, a provider's feasible cloudlets (the finite
entries of its compiled ``fixed`` row) usually sit inside one region.
This module turns that locality into an explicit sharded architecture:

* :func:`partition_market` groups the cloudlets by region into shards
  (optionally coalescing small regions into ``n_shards`` contiguous
  blocks) and assigns every network node an *owning* shard.
* :func:`classify_providers` splits the population into **interior**
  providers (latency-budget mask touches exactly one shard — they can be
  settled entirely inside it), **boundary** providers (mask spans shards —
  they couple shard equilibria and are reconciled globally), and
  **unreachable** ones (no feasible cloudlet at all).
* :func:`shard_view` builds one self-contained
  :class:`~repro.market.compiled.CompiledMarket` per shard — a
  fancy-indexed copy of the global tables over the shard's cloudlet
  columns and its interior-plus-boundary provider rows, bit-equal entry
  by entry, cheap to pickle to a worker process.
* :class:`ShardDelta` + :class:`ShardLog` extend the
  :class:`~repro.market.delta.MarketDelta` protocol into a
  sequence-numbered replication log: every global delta is routed into
  per-shard sub-deltas (arrivals by the owner of the service's user node,
  departures by the recorded owner, cloudlet events by the cloudlet's
  shard). Routed sub-deltas of one sequence number touch disjoint state,
  so *any* interleaving that respects per-shard sequence order replays to
  the same gathered tables as the original global stream —
  ``tests/market/test_shard.py`` pins this property, and an optional
  :class:`~repro.runtime.CheckpointJournal` makes the log
  crash-consistent (fsynced before the shard equilibria run).

The partitioned equilibrium driver that consumes all of this lives in
:mod:`repro.game.partitioned`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

from repro.exceptions import ConfigurationError
from repro.market.compiled import CompiledMarket
from repro.market.delta import MarketDelta
from repro.market.service import Service, ServiceProvider
from repro.network.generators import region_map

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.market.market import ServiceMarket
    from repro.runtime import CheckpointJournal


@dataclass(frozen=True)
class MarketPartition:
    """A static partition of a market's cloudlets into region shards.

    Shards are numbered ``0 .. n_shards-1`` in ascending region-id order;
    every network node is owned by exactly one shard (nodes in regions
    without any cloudlet fall back to shard 0 — their providers are
    routed somewhere deterministic, and classification, not ownership,
    decides where they may actually cache).
    """

    n_shards: int
    #: shard id -> cloudlet node ids, in network (compile-column) order.
    cloudlets: Mapping[int, Tuple[int, ...]]
    #: cloudlet node id -> owning shard.
    shard_of_cloudlet: Mapping[int, int]
    #: every network node id -> owning shard (delta-routing key).
    owner: Mapping[int, int]
    #: shard id -> the region ids it covers (diagnostics / reports).
    regions: Mapping[int, Tuple[int, ...]] = field(default_factory=dict)

    @property
    def shard_ids(self) -> Tuple[int, ...]:
        return tuple(range(self.n_shards))

    def __repr__(self) -> str:
        sizes = ",".join(
            str(len(self.cloudlets[s])) for s in self.shard_ids
        )
        return f"MarketPartition(shards={self.n_shards}, cloudlets=[{sizes}])"


@dataclass(frozen=True)
class ShardClassification:
    """Interior/boundary split of the current population (see module doc)."""

    #: shard id -> interior provider ids, ascending.
    interior: Mapping[int, Tuple[int, ...]]
    #: providers whose feasible mask spans more than one shard, ascending.
    boundary: Tuple[int, ...]
    #: providers with no feasible cloudlet at all, ascending.
    unreachable: Tuple[int, ...]
    #: interior provider id -> its single feasible shard.
    interior_shard: Mapping[int, int]


def partition_market(
    market: "ServiceMarket", n_shards: Optional[int] = None
) -> MarketPartition:
    """Partition the market's cloudlets by transit-stub region.

    Each region that hosts at least one cloudlet becomes a shard; with
    ``n_shards`` given, the (sorted) region list is coalesced into that
    many contiguous blocks, keeping neighbouring region ids together.
    """
    regions = region_map(market.network)
    cl_nodes = [cl.node_id for cl in market.network.cloudlets]
    if not cl_nodes:
        raise ConfigurationError("cannot partition a market with no cloudlets")
    by_region: Dict[int, List[int]] = {}
    for node in cl_nodes:  # network order within each region
        by_region.setdefault(regions[node], []).append(node)
    region_ids = sorted(by_region)
    k = len(region_ids)
    if n_shards is not None:
        if n_shards < 1:
            raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
        k = min(n_shards, len(region_ids))
    # Coalescing order is a BFS over the region *adjacency* graph, not the
    # region-id sequence: contiguous blocks of the BFS order group regions
    # that are topologically close, so a provider whose latency-budget mask
    # spans two neighbouring regions usually lands interior to one shard
    # instead of on the boundary (fewer boundary providers = cheaper
    # reconciliation). Deterministic: BFS seeds and neighbour visits are in
    # ascending region-id order.
    order = _region_bfs_order(market.network, regions, region_ids)
    shard_of_region = {
        r: (i * k) // len(region_ids) for i, r in enumerate(order)
    }
    # Shard column order preserves the *global* compile-column order (not
    # region-major concatenation): the batch kernel breaks argmin ties by
    # first minimum, so a sub-view with permuted columns could settle exact
    # ties differently from the global engine and break the single-shard
    # bit-identical lockdown.
    col_order = {node: j for j, node in enumerate(cl_nodes)}
    cloudlets: Dict[int, Tuple[int, ...]] = {s: () for s in range(k)}
    shard_regions: Dict[int, Tuple[int, ...]] = {s: () for s in range(k)}
    grouped: Dict[int, List[int]] = {s: [] for s in range(k)}
    for r in region_ids:
        s = shard_of_region[r]
        grouped[s].extend(by_region[r])
        shard_regions[s] = shard_regions[s] + (r,)
    for s in range(k):
        cloudlets[s] = tuple(sorted(grouped[s], key=col_order.__getitem__))
    shard_of_cloudlet = {
        node: s for s, nodes in cloudlets.items() for node in nodes
    }
    #: Regions without cloudlets fall back to shard 0 (documented above).
    owner = {
        node: shard_of_region.get(regions[node], 0)
        for node in market.network.graph.nodes
    }
    return MarketPartition(
        n_shards=k,
        cloudlets=cloudlets,
        shard_of_cloudlet=shard_of_cloudlet,
        owner=owner,
        regions=shard_regions,
    )


def _region_bfs_order(
    network: object, regions: Mapping[int, int], region_ids: Sequence[int]
) -> List[int]:
    """``region_ids`` re-ordered by a BFS over the region adjacency graph.

    Two regions are adjacent when any network edge crosses between them;
    the BFS runs over *all* regions (cloudlet-less ones still transmit
    proximity) and the result filters to ``region_ids`` in visit order.
    Seeds and neighbour visits ascend by region id, so the order is a
    pure function of the topology.
    """
    g = getattr(network, "graph", network)
    adjacency: Dict[int, set] = {r: set() for r in set(regions.values())}
    for u, v in g.edges:
        ru, rv = regions[u], regions[v]
        if ru != rv:
            adjacency[ru].add(rv)
            adjacency[rv].add(ru)
    visited: List[int] = []
    seen = set()
    for seed in sorted(adjacency):
        if seed in seen:
            continue
        queue = [seed]
        seen.add(seed)
        while queue:
            r = queue.pop(0)
            visited.append(r)
            for nb in sorted(adjacency[r]):
                if nb not in seen:
                    seen.add(nb)
                    queue.append(nb)
    wanted = set(region_ids)
    return [r for r in visited if r in wanted]


def classify_providers(
    compiled: CompiledMarket, partition: MarketPartition
) -> ShardClassification:
    """Interior/boundary/unreachable split from the compiled ``fixed`` mask.

    A provider is interior to shard ``s`` when every finite entry of its
    ``fixed`` row (the latency-budget-masked congestion-free costs) lies
    in ``s``'s cloudlet columns. The mask is read through
    ``active_rows``, so the split is delta-safe.
    """
    shard_of_col = np.fromiter(
        (partition.shard_of_cloudlet[node] for node in compiled.cloudlet_nodes),
        dtype=np.int64,
        count=len(compiled.cloudlet_nodes),
    )
    rows = compiled.active_rows
    feasible = np.isfinite(compiled.fixed[rows]) if len(rows) else np.zeros(
        (0, compiled.n_cloudlets), dtype=bool
    )
    # (n, n_shards) touch matrix: does provider i reach any cloudlet of s?
    touched = np.zeros((len(rows), partition.n_shards), dtype=bool)
    for s in range(partition.n_shards):
        cols = np.flatnonzero(shard_of_col == s)
        if cols.size:
            touched[:, s] = feasible[:, cols].any(axis=1)
    counts = touched.sum(axis=1)

    interior: Dict[int, List[int]] = {s: [] for s in partition.shard_ids}
    interior_shard: Dict[int, int] = {}
    boundary: List[int] = []
    unreachable: List[int] = []
    for i, pid in enumerate(compiled.provider_ids):  # ascending id order
        if counts[i] == 0:
            unreachable.append(pid)
        elif counts[i] == 1:
            s = int(np.flatnonzero(touched[i])[0])
            interior[s].append(pid)
            interior_shard[pid] = s
        else:
            boundary.append(pid)
    return ShardClassification(
        interior={s: tuple(pids) for s, pids in interior.items()},
        boundary=tuple(boundary),
        unreachable=tuple(unreachable),
        interior_shard=interior_shard,
    )


def shard_view(
    compiled: CompiledMarket,
    partition: MarketPartition,
    shard_id: int,
    classification: ShardClassification,
) -> CompiledMarket:
    """One shard's self-contained :class:`CompiledMarket` sub-view.

    Rows: the shard's interior providers plus *all* boundary providers
    (whatever shard a boundary provider currently caches on, its
    occupancy must be priceable here), ascending id order. Columns: the
    shard's cloudlets in global column order. Every table entry is a
    fancy-indexed *copy* of the global entry — bit-equal, and safely
    picklable to a worker without aliasing the parent arrays. The
    congestion prefix ``g`` is carried at global length, so the sub-view
    shares the exact ``coeff * g`` products of the global ``shared``
    table. The view depends only on ``(shard_id, partition,
    classification)`` and the current tables — i.e. on the shard id and
    the delta sequence number — which is what makes worker-side blob
    caching sound.
    """
    if shard_id not in partition.cloudlets:
        raise ConfigurationError(f"unknown shard id {shard_id}")
    pids = sorted(
        set(classification.interior.get(shard_id, ()))
        | set(classification.boundary)
    )
    col_nodes = list(partition.cloudlets[shard_id])
    if not col_nodes:
        raise ConfigurationError(f"shard {shard_id} has no cloudlets")
    rows = [compiled.provider_index[pid] for pid in pids]
    cols = [compiled.cloudlet_index[node] for node in col_nodes]
    if rows:
        sub = np.ix_(rows, cols)
        fixed = compiled.fixed[sub]
        access = compiled.access[sub]
        update = compiled.update[sub]
        user_delay = compiled.user_delay[sub]
        instantiation = compiled.instantiation[rows]
        remote = compiled.remote[rows]
        demand = compiled.demand[rows]
    else:
        m = len(cols)
        fixed = np.empty((0, m))
        access = np.empty((0, m))
        update = np.empty((0, m))
        user_delay = np.empty((0, m))
        instantiation = np.empty(0)
        remote = np.empty(0)
        demand = np.empty((0, 2))
    return CompiledMarket(
        provider_ids=list(pids),
        cloudlet_nodes=col_nodes,
        fixed=fixed,
        instantiation=instantiation,
        access=access,
        update=update,
        coeff=compiled.coeff[cols],
        g=compiled.g.copy(),
        demand=demand,
        capacity=compiled.capacity[cols],
        remote=remote,
        user_delay=user_delay,
        congestion=compiled.congestion,
    )


# --------------------------------------------------------------------- #
# The replication log
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ShardDelta:
    """One shard's slice of a global delta, stamped with its sequence
    number. Replay rule: ascending ``(seq, shard_id)``; deltas sharing a
    ``seq`` touch disjoint state and commute."""

    shard_id: int
    seq: int
    delta: MarketDelta

    def to_payload(self) -> dict:
        """A JSON-serialisable record (journal line)."""
        d = self.delta
        return {
            "shard_id": self.shard_id,
            "seq": self.seq,
            "arrivals": [_provider_payload(p) for p in d.arrivals],
            "departures": list(d.departures),
            "capacity_changes": {
                str(node): list(v) for node, v in d.capacity_changes.items()
            },
            "price_changes": {
                str(node): list(v) for node, v in d.price_changes.items()
            },
            "outages": list(d.outages),
            "recoveries": list(d.recoveries),
        }

    @staticmethod
    def from_payload(payload: Mapping) -> "ShardDelta":
        delta = MarketDelta(
            arrivals=tuple(
                _provider_from_payload(p) for p in payload["arrivals"]
            ),
            departures=tuple(payload["departures"]),
            capacity_changes={
                int(node): tuple(v)
                for node, v in payload["capacity_changes"].items()
            },
            price_changes={
                int(node): tuple(v)
                for node, v in payload["price_changes"].items()
            },
            outages=tuple(payload["outages"]),
            recoveries=tuple(payload["recoveries"]),
        )
        return ShardDelta(
            shard_id=int(payload["shard_id"]),
            seq=int(payload["seq"]),
            delta=delta,
        )


def _provider_payload(p: ServiceProvider) -> dict:
    svc = p.service
    return {
        "provider_id": p.provider_id,
        "name": p.name,
        "coordinated": p.coordinated,
        "service": {
            "service_id": svc.service_id,
            "requests": svc.requests,
            "compute_per_request": svc.compute_per_request,
            "bandwidth_per_request": svc.bandwidth_per_request,
            "data_volume_gb": svc.data_volume_gb,
            "home_dc": svc.home_dc,
            "user_node": svc.user_node,
            "user_clusters": (
                [list(c) for c in svc.user_clusters]
                if svc.user_clusters is not None
                else None
            ),
            "update_ratio": svc.update_ratio,
            "sync_frequency": svc.sync_frequency,
            "request_traffic_gb": svc.request_traffic_gb,
            "instantiation_cost": svc.instantiation_cost,
        },
    }


def _provider_from_payload(payload: Mapping) -> ServiceProvider:
    svc = dict(payload["service"])
    if svc.get("user_clusters") is not None:
        svc["user_clusters"] = tuple(tuple(c) for c in svc["user_clusters"])
    return ServiceProvider(
        provider_id=int(payload["provider_id"]),
        service=Service(**svc),
        name=payload.get("name", ""),
        coordinated=bool(payload.get("coordinated", False)),
    )


def route_delta(
    delta: MarketDelta,
    partition: MarketPartition,
    seq: int,
    owners: Mapping[int, int],
) -> Tuple[ShardDelta, ...]:
    """Split one global delta into per-shard sub-deltas.

    Arrivals route to the shard owning the service's user node;
    departures to the recorded owner of the departing provider
    (``owners``, maintained by :class:`ShardLog`); capacity/price/outage
    events to the affected cloudlet's shard. Only non-empty sub-deltas
    are returned, in ascending shard-id order.
    """
    arrivals: Dict[int, List[ServiceProvider]] = {}
    departures: Dict[int, List[int]] = {}
    cap: Dict[int, Dict[int, Tuple[float, float]]] = {}
    price: Dict[int, Dict[int, Tuple[float, float]]] = {}
    out: Dict[int, List[int]] = {}
    rec: Dict[int, List[int]] = {}
    for p in delta.arrivals:
        s = partition.owner[p.service.user_node]
        arrivals.setdefault(s, []).append(p)
    for pid in delta.departures:
        try:
            s = owners[pid]
        except KeyError:
            raise ConfigurationError(
                f"departing provider {pid} has no recorded shard owner"
            ) from None
        departures.setdefault(s, []).append(pid)
    for node, v in delta.capacity_changes.items():
        cap.setdefault(partition.shard_of_cloudlet[node], {})[node] = v
    for node, v in delta.price_changes.items():
        price.setdefault(partition.shard_of_cloudlet[node], {})[node] = v
    for node in delta.outages:
        out.setdefault(partition.shard_of_cloudlet[node], []).append(node)
    for node in delta.recoveries:
        rec.setdefault(partition.shard_of_cloudlet[node], []).append(node)

    routed: List[ShardDelta] = []
    touched = sorted(
        set(arrivals) | set(departures) | set(cap) | set(price)
        | set(out) | set(rec)
    )
    for s in touched:
        routed.append(
            ShardDelta(
                shard_id=s,
                seq=seq,
                delta=MarketDelta(
                    arrivals=tuple(arrivals.get(s, ())),
                    departures=tuple(departures.get(s, ())),
                    capacity_changes=cap.get(s, {}),
                    price_changes=price.get(s, {}),
                    outages=tuple(out.get(s, ())),
                    recoveries=tuple(rec.get(s, ())),
                ),
            )
        )
    return tuple(routed)


class ShardLog:
    """The sequence-numbered per-shard replication log.

    Owns the provider -> shard ownership map (seeded from the initial
    population, updated on every arrival/departure so departures route to
    the shard that received the matching arrival) and the monotone
    sequence counter. With a journal attached, every routed sub-delta is
    durably appended (flushed + fsynced) *before* :meth:`append` returns
    — the shard equilibria that consume the delta only ever run after the
    log entry is on disk, which is what makes a crashed run resumable by
    :meth:`replay`.
    """

    def __init__(
        self,
        partition: MarketPartition,
        providers: Sequence[ServiceProvider] = (),
        journal: Optional["CheckpointJournal"] = None,
    ) -> None:
        self.partition = partition
        self.journal = journal
        self._owners: Dict[int, int] = {
            p.provider_id: partition.owner[p.service.user_node]
            for p in providers
        }
        self._seq = 0
        self.entries: List[ShardDelta] = []

    @property
    def seq(self) -> int:
        """The sequence number of the last appended global delta."""
        return self._seq

    def owner_of(self, provider_id: int) -> int:
        return self._owners[provider_id]

    def append(self, delta: MarketDelta) -> Tuple[ShardDelta, ...]:
        """Route one global delta, journal it, and advance the sequence."""
        self._seq += 1
        routed = route_delta(delta, self.partition, self._seq, self._owners)
        for p in delta.arrivals:
            self._owners[p.provider_id] = self.partition.owner[
                p.service.user_node
            ]
        for pid in delta.departures:
            self._owners.pop(pid, None)
        if self.journal is not None:
            for sd in routed:
                self.journal.record((sd.seq, sd.shard_id), sd.to_payload())
        self.entries.extend(routed)
        return routed

    @staticmethod
    def replay(journal: "CheckpointJournal") -> List[ShardDelta]:
        """All journaled sub-deltas in replay order (``(seq, shard_id)``
        ascending) — the crash-consistent resume stream."""
        records = journal.load()
        return [
            ShardDelta.from_payload(records[key])
            for key in sorted(records, key=lambda k: (int(k[0]), int(k[1])))
        ]


__all__ = [
    "MarketPartition",
    "ShardClassification",
    "ShardDelta",
    "ShardLog",
    "classify_providers",
    "partition_market",
    "route_delta",
    "shard_view",
]

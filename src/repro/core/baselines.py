"""The paper's comparison baselines (Section IV.A).

``JoOffloadCache`` — modelled on the joint service caching + task offloading
algorithm of Xu, Chen & Zhou, INFOCOM'18 [23], run *independently* by each
provider "without communicating with each other" (the paper's adaptation to
the multi-provider market). Each provider picks the cloudlet minimising its
joint offloading + caching cost under the *static* price sheet — published
congestion coefficients ``alpha_i + beta_i``, instantiation, processing and
request-traffic offloading — but it can observe neither the other providers'
choices (no congestion anticipation: the herding LCF's coordination fixes)
nor the consistency-update cost, which [23] does not model.

``OffloadCache`` — the greedy separation of offloading from caching [20]:
each provider first routes its requests to the offloading-optimal cloudlet
(minimum end-to-end delay from its users, the natural offloading objective),
then instantiates the service "with its requests". It ignores prices,
congestion and updates alike, making it the worst of the three, as in
Figs. 2–3.

Both run sequential admission: when the preferred cloudlet lacks capacity
the provider takes its next-best feasible choice, and is rejected (service
stays remote) only when no cloudlet fits it.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.assignment import CachingAssignment, Stopwatch
from repro.market.compiled import CompiledMarket, resolve_compiled
from repro.market.market import ServiceMarket
from repro.market.service import ServiceProvider
from repro.network.elements import Cloudlet
from repro.utils.validation import CAPACITY_EPS


def _sequential_admission(
    market: ServiceMarket,
    preference_cost: Callable[[ServiceProvider, Cloudlet, int], float],
) -> Tuple[Dict[int, int], Set[int]]:
    """Admit providers in id order; each takes its cheapest feasible cloudlet
    under ``preference_cost(provider, cloudlet, occupancy_if_joining)``."""
    loads: Dict[int, List[float]] = {
        cl.node_id: [0.0, 0.0] for cl in market.network.cloudlets
    }
    occupancy: Dict[int, int] = {cl.node_id: 0 for cl in market.network.cloudlets}
    placement: Dict[int, int] = {}
    rejected: Set[int] = set()

    for provider in market.providers:
        best_node: Optional[int] = None
        best_cost = float("inf")
        for cl in market.network.cloudlets:
            node = cl.node_id
            if (
                loads[node][0] + provider.compute_demand > cl.compute_capacity + CAPACITY_EPS
                or loads[node][1] + provider.bandwidth_demand
                > cl.bandwidth_capacity + CAPACITY_EPS
            ):
                continue
            # Infrastructure-level admission: forbidden (infinite fixed
            # cost) pairs — e.g. latency-budget violations — are rejected
            # for the baselines too.
            if not math.isfinite(market.cost_model.fixed_cost(provider, cl)):
                continue
            cost = preference_cost(provider, cl, occupancy[node] + 1)
            if cost < best_cost:
                best_cost = cost
                best_node = node
        if best_node is None:
            rejected.add(provider.provider_id)
            continue
        placement[provider.provider_id] = best_node
        loads[best_node][0] += provider.compute_demand
        loads[best_node][1] += provider.bandwidth_demand
        occupancy[best_node] += 1
    return placement, rejected


def _sequential_admission_compiled(
    cm: CompiledMarket, preference: np.ndarray
) -> Tuple[Dict[int, int], Set[int]]:
    """Array-state twin of :func:`_sequential_admission`.

    ``preference`` is a precomputed ``(n, m)`` cost table — both baselines'
    preferences are occupancy-independent, which is what makes them
    tabulable up front. Admission order, the capacity/admissibility
    filters and the strict first-minimum pick match the object path.
    """
    loads = np.zeros((cm.n_cloudlets, 2))
    placement: Dict[int, int] = {}
    rejected: Set[int] = set()

    # `preference` is indexed by *physical* row: admission walks providers
    # in id order but gathers each one's row through the active-row map,
    # so delta-patched (non-dense) tables admit identically.
    for i, pid in zip(cm.active_rows, cm.provider_ids):
        mask = cm.fits_mask(i, loads) & np.isfinite(cm.fixed[i])
        candidates = np.flatnonzero(mask)
        if candidates.size == 0:
            rejected.add(pid)
            continue
        # np.argmin returns the first minimum — the same cloudlet the
        # object path's strict `cost < best_cost` scan settles on.
        best = int(candidates[np.argmin(preference[i, candidates])])
        if not preference[i, best] < np.inf:
            rejected.add(pid)
            continue
        placement[pid] = cm.cloudlet_nodes[best]
        loads[best] += cm.demand[i]
    return placement, rejected


def jo_offload_cache(
    market: ServiceMarket,
    representation: str = "compiled",
    compiled: Optional[CompiledMarket] = None,
) -> CachingAssignment:
    """The ``JoOffloadCache`` baseline (see module docstring).

    ``representation="object"`` selects the cost-model reference path used
    as the differential-testing oracle; both produce identical assignments.
    """
    model = market.cost_model
    cm = resolve_compiled(market, representation, compiled)

    def myopic_cost(provider: ServiceProvider, cloudlet: Cloudlet, occupancy: int) -> float:
        # Joint offloading + caching under static prices: the provider sees
        # the published per-unit congestion prices (occupancy 1, i.e.
        # itself) but not the other providers' simultaneous choices, and
        # the update/synchronisation cost is invisible to [23].
        return (
            model.congestion_cost(cloudlet, 1)
            + model.instantiation_cost(provider)
            + model.access_cost(provider, cloudlet)
        )

    with Stopwatch() as watch:
        if cm is not None:
            # The same three terms, tabulated: published congestion price
            # (occupancy 1) + instantiation + access, added in the same
            # order as `myopic_cost` so the entries are bit-equal.
            preference = (
                (cm.coeff * cm.g[1])[None, :] + cm.instantiation[:, None]
            ) + cm.access
            placement, rejected = _sequential_admission_compiled(cm, preference)
        else:
            placement, rejected = _sequential_admission(market, myopic_cost)
    return CachingAssignment(
        market=market,
        placement=placement,
        rejected=frozenset(rejected),
        algorithm="JoOffloadCache",
        runtime_s=watch.elapsed,
    )


def offload_cache(
    market: ServiceMarket,
    representation: str = "compiled",
    compiled: Optional[CompiledMarket] = None,
) -> CachingAssignment:
    """The ``OffloadCache`` baseline (see module docstring).

    ``representation="object"`` selects the network-query reference path
    used as the differential-testing oracle.
    """
    network = market.network
    cm = resolve_compiled(market, representation, compiled)

    def offload_only_cost(provider: ServiceProvider, cloudlet: Cloudlet, occupancy: int) -> float:
        # Pure offloading optimum: minimum end-to-end delay from the users
        # to the cloudlet; caching (prices, congestion, updates) is decided
        # "later" by simply instantiating where the requests went.
        return network.path_delay(provider.service.user_node, cloudlet.node_id)

    with Stopwatch() as watch:
        if cm is not None:
            placement, rejected = _sequential_admission_compiled(cm, cm.user_delay)
        else:
            placement, rejected = _sequential_admission(market, offload_only_cost)
    return CachingAssignment(
        market=market,
        placement=placement,
        rejected=frozenset(rejected),
        algorithm="OffloadCache",
        runtime_s=watch.elapsed,
    )


__all__ = ["jo_offload_cache", "offload_cache"]

"""Congestion tolls: steering the posted-price market without coordination.

LCF contains selfish damage by *pinning* a coordinated subset. A classic
alternative from the congestion-pricing literature is for the leader to
publish **tolls** on top of each cloudlet's price sheet: selfish providers
then minimise ``posted cost + toll`` when choosing, but tolls are transfers
back to the infrastructure provider — they steer behaviour without being a
social cost (Eq. 6 is evaluated without them).

With the paper's linear congestion model the marginal externality of one
more instance at ``CL_i`` with ``k`` residents is ``(alpha_i + beta_i) * k``
— so a toll proportional to the *anticipated* load internalises it
(Pigou). :func:`anticipatory_tolls` implements that with one scalar knob
(the toll level), and :func:`optimize_toll_level` grid-searches the knob
against the realised social cost. The result: even with **zero coordinated
providers**, tolls recover most of the gap between the posted-price anarchy
and the coordinated optimum — a complement to the paper's mechanism that
needs no bulk-lease contracts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.appro import appro
from repro.core.assignment import CachingAssignment, Stopwatch
from repro.exceptions import ConfigurationError
from repro.market.market import ServiceMarket
from repro.utils.validation import CAPACITY_EPS, check_non_negative


def anticipatory_tolls(market: ServiceMarket, level: float) -> Dict[int, float]:
    """Per-cloudlet tolls ``level * (alpha_i + beta_i) * load_i`` where
    ``load_i`` is the load the social optimum (Appro with marginal pricing)
    would put there — the leader's anticipation of a healthy allocation."""
    check_non_negative(level, "level")
    reference = appro(market, allow_remote=True)
    occupancy = reference.occupancy()
    tolls: Dict[int, float] = {}
    for cl in market.network.cloudlets:
        load = occupancy.get(cl.node_id, 0)
        tolls[cl.node_id] = level * (cl.alpha + cl.beta) * load
    return tolls


def tolled_selfish_market(
    market: ServiceMarket,
    tolls: Optional[Dict[int, float]] = None,
) -> CachingAssignment:
    """Run the fully selfish posted-price market under the given tolls.

    Every provider (no coordination at all) picks the cloudlet minimising
    ``posted cost + toll``, sequentially with capacity admission and the
    remote option. Tolls are excluded from the reported social cost.
    """
    tolls = tolls or {}
    unknown = set(tolls) - {cl.node_id for cl in market.network.cloudlets}
    if unknown:
        raise ConfigurationError(f"tolls reference unknown cloudlets {sorted(unknown)}")
    model = market.cost_model

    with Stopwatch() as watch:
        loads: Dict[int, List[float]] = {
            cl.node_id: [0.0, 0.0] for cl in market.network.cloudlets
        }
        placement: Dict[int, int] = {}
        rejected: Set[int] = set()
        for provider in market.providers:
            best_node = None
            best_price = model.remote_cost(provider)
            for cl in market.network.cloudlets:
                node = cl.node_id
                if (
                    loads[node][0] + provider.compute_demand
                    > cl.compute_capacity + CAPACITY_EPS
                    or loads[node][1] + provider.bandwidth_demand
                    > cl.bandwidth_capacity + CAPACITY_EPS
                ):
                    continue
                price = model.cost(provider, cl, 1) + tolls.get(node, 0.0)
                if price < best_price:
                    best_price = price
                    best_node = node
            if best_node is None:
                rejected.add(provider.provider_id)
                continue
            placement[provider.provider_id] = best_node
            loads[best_node][0] += provider.compute_demand
            loads[best_node][1] += provider.bandwidth_demand

    return CachingAssignment(
        market=market,
        placement=placement,
        rejected=frozenset(rejected),
        algorithm="TolledSelfish",
        runtime_s=watch.elapsed,
        info={"toll_revenue": sum(tolls.get(n, 0.0) for n in placement.values())},
    )


@dataclass
class TollOptimum:
    """Result of the toll-level grid search."""

    level: float
    assignment: CachingAssignment
    social_cost: float
    #: Realised social cost per candidate level (for plotting/diagnosis).
    sweep: Dict[float, float]

    @property
    def toll_revenue(self) -> float:
        return float(self.assignment.info["toll_revenue"])


def optimize_toll_level(
    market: ServiceMarket,
    levels: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0),
) -> TollOptimum:
    """Grid-search the anticipatory toll level minimising realised social
    cost of the fully selfish market."""
    if not levels:
        raise ConfigurationError("need at least one candidate toll level")
    sweep: Dict[float, float] = {}
    best: Optional[Tuple[float, CachingAssignment]] = None
    for level in levels:
        tolls = anticipatory_tolls(market, level)
        assignment = tolled_selfish_market(market, tolls)
        cost = assignment.social_cost
        sweep[float(level)] = cost
        if best is None or cost < best[1].social_cost:
            best = (float(level), assignment)
    level, assignment = best
    return TollOptimum(
        level=level,
        assignment=assignment,
        social_cost=assignment.social_cost,
        sweep=sweep,
    )


__all__ = [
    "anticipatory_tolls",
    "tolled_selfish_market",
    "TollOptimum",
    "optimize_toll_level",
]

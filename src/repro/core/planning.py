"""Capacity planning: how much edge do you need? (extension)

An infrastructure provider sizing its cloudlets wants the smallest capacity
that serves a target market without pushing services back to the remote
cloud. :func:`capacity_plan` answers that by bisection: uniformly scale
every cloudlet's compute and bandwidth capacity, run the LCF mechanism, and
find the smallest scale whose rejection count meets the target.

Rejections are (weakly) monotone in capacity — more room never forces a
service remote — so bisection is sound; the implementation still verifies
the bracket and reports every probe for transparency.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from repro.core.lcf import lcf
from repro.exceptions import ConfigurationError
from repro.market.delta import MarketDelta
from repro.market.market import ServiceMarket
from repro.utils.validation import check_positive


@contextmanager
def scaled_capacities(market: ServiceMarket, scale: float) -> Iterator[None]:
    """Temporarily multiply every cloudlet's capacities by ``scale``.

    Both the scaling and the restore go through the market's mutation
    protocol (:meth:`ServiceMarket.apply` with a capacity-only
    :class:`MarketDelta`), so a cached compiled view is patched in place —
    two O(m) capacity-vector stores instead of two full recompiles per
    bisection probe.
    """
    check_positive(scale, "scale")
    cloudlets = market.network.cloudlets
    originals = {
        cl.node_id: (cl.compute_capacity, cl.bandwidth_capacity)
        for cl in cloudlets
    }
    scaled = {
        node: (cpu * scale, bw * scale) for node, (cpu, bw) in originals.items()
    }
    market.apply(MarketDelta(capacity_changes=scaled))
    try:
        yield
    finally:
        market.apply(MarketDelta(capacity_changes=originals))


@dataclass
class CapacityPlan:
    """Result of the capacity bisection."""

    #: Smallest probed scale meeting the rejection target.
    scale: float
    rejections: int
    social_cost: float
    #: Every probe: scale -> (rejections, social cost).
    probes: Dict[float, Tuple[int, float]] = field(default_factory=dict)

    @property
    def evaluations(self) -> int:
        return len(self.probes)


def capacity_plan(
    market: ServiceMarket,
    xi: float = 0.7,
    target_rejections: Optional[int] = None,
    lo: float = 0.2,
    hi: float = 5.0,
    tolerance: float = 0.05,
) -> CapacityPlan:
    """Find the smallest uniform capacity scale meeting the target.

    ``target_rejections=None`` (default) targets the market's *congestion
    floor*: the rejections that remain even at ``hi`` capacity, because
    the congestion charge of one more co-located instance exceeds the
    remote premium for some providers — a market property capacity cannot
    buy away. An explicit integer target is honoured verbatim; the call
    raises :class:`ConfigurationError` when even ``hi`` cannot meet it.
    """
    if target_rejections is not None and target_rejections < 0:
        raise ConfigurationError("target_rejections must be >= 0")
    if not 0 < lo < hi:
        raise ConfigurationError(f"need 0 < lo < hi, got [{lo}, {hi}]")
    check_positive(tolerance, "tolerance")

    probes: Dict[float, Tuple[int, float]] = {}

    def evaluate(scale: float) -> Tuple[int, float]:
        if scale not in probes:
            with scaled_capacities(market, scale):
                assignment = lcf(market, xi=xi, allow_remote=True).assignment
                probes[scale] = (len(assignment.rejected), assignment.social_cost)
        return probes[scale]

    hi_rejections, _ = evaluate(hi)
    if target_rejections is None:
        target_rejections = hi_rejections
    elif hi_rejections > target_rejections:
        raise ConfigurationError(
            f"even {hi}x capacity leaves {hi_rejections} rejections "
            f"(target {target_rejections}); widen the bracket"
        )
    lo_rejections, _ = evaluate(lo)
    if lo_rejections <= target_rejections:
        rej, cost = probes[lo]
        return CapacityPlan(scale=lo, rejections=rej, social_cost=cost, probes=probes)

    left, right = lo, hi
    while right - left > tolerance:
        mid = (left + right) / 2.0
        rejections, _ = evaluate(mid)
        if rejections <= target_rejections:
            right = mid
        else:
            left = mid
    rejections, cost = evaluate(right)
    return CapacityPlan(
        scale=right, rejections=rejections, social_cost=cost, probes=probes
    )


__all__ = ["scaled_capacities", "CapacityPlan", "capacity_plan"]

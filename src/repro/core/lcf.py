"""Algorithm 2 — ``LCF``: the approximation-restricted Stackelberg strategy.

Steps (Section III.C):

1. run :func:`~repro.core.appro.appro` to obtain the approximate solution
   ``zeta`` of the non-selfish problem;
2. select the ``floor(xi * |N|)`` providers with the *largest* caching cost
   under ``zeta`` (Largest Cost First) — high-cost providers have the most
   leverage over the social cost, so coordinating them best contains the
   damage of the remaining selfish play;
3. pin the coordinated providers to their ``zeta`` cloudlets;
4. let the remaining providers selfishly "use the location that could incur
   a minimum cost" (Algorithm 2, line 7).

Step 4 supports two information models:

* ``"posted_price"`` (default) — selfish providers see only the
  infrastructure provider's posted price sheet (``alpha_i + beta_i`` plus
  their own fixed costs) and cannot observe each other's simultaneous
  decisions; each choice is then a dominant strategy, so the outcome is
  trivially stable. This mirrors the paper's market narrative (providers do
  not communicate) and reproduces the Fig. 3/6 trend where the social cost
  degrades as ``1 - xi`` grows: uncoordinated providers herd onto
  individually-cheap cloudlets.
* ``"full"`` — selfish providers observe live congestion and play
  best-response dynamics to a pure Nash equilibrium of the capacitated
  congestion game (Lemma 3 guarantees existence and convergence). This is
  the theoretically-stable variant used by the PoA study; with fully
  informed players the equilibrium is close to the coordinated optimum, so
  the ``1 - xi`` trend flattens (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

import numpy as np

from repro.core.appro import appro
from repro.core.assignment import CachingAssignment, Stopwatch
from repro.core.bridge import market_game
from repro.exceptions import ConfigurationError, InfeasibleError
from repro.game.best_response import ENGINES, best_response_dynamics
from repro.game.equilibrium import is_nash_equilibrium
from repro.market.compiled import CompiledMarket
from repro.market.market import ServiceMarket
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_fraction

_SELECTION_STRATEGIES = ("largest_cost", "smallest_cost", "random")


def select_coordinated_lcf(
    market: ServiceMarket,
    reference: CachingAssignment,
    budget: int,
    strategy: str = "largest_cost",
    rng: RandomSource = None,
) -> List[int]:
    """Choose which providers the leader coordinates.

    ``"largest_cost"`` is the paper's LCF rule (step 2 of Algorithm 2);
    ``"smallest_cost"`` and ``"random"`` support ablation A2. Providers the
    reference solution left in the remote cloud are eligible too — their
    prescribed strategy is "do not cache".
    """
    if strategy not in _SELECTION_STRATEGIES:
        raise ConfigurationError(
            f"unknown selection strategy {strategy!r}; choose from {_SELECTION_STRATEGIES}"
        )
    eligible = sorted(set(reference.placement) | set(reference.rejected))
    budget = max(0, min(budget, len(eligible)))
    if budget == 0:  # reprolint: ok[R2] budget is an integer count of coordinated services
        return []
    if strategy == "random":
        rng = as_rng(rng)
        picked = rng.choice(len(eligible), size=budget, replace=False)
        return sorted(eligible[i] for i in picked)
    costs = {pid: reference.provider_cost(pid) for pid in eligible}
    reverse = strategy == "largest_cost"
    ranked = sorted(eligible, key=lambda pid: (costs[pid], pid), reverse=reverse)
    return sorted(ranked[:budget])


@dataclass
class LCFResult:
    """Everything produced by one LCF run."""

    assignment: CachingAssignment
    appro_assignment: CachingAssignment
    coordinated_ids: List[int]
    br_rounds: int
    br_moves: int
    is_equilibrium: bool

    @property
    def social_cost(self) -> float:
        return self.assignment.social_cost


def lcf(
    market: ServiceMarket,
    xi: float = 0.7,
    gap_solver: str = "shmoys_tardos",
    selection: str = "largest_cost",
    rng: RandomSource = None,
    max_rounds: int = 1000,
    allow_remote: bool = False,
    slot_pricing: str = "marginal",
    information: str = "posted_price",
    engine: str = "incremental",
    representation: str = "compiled",
    compiled: Optional[CompiledMarket] = None,
    warm_start: Optional[object] = None,
    lp_time_limit_s: Optional[float] = None,
) -> LCFResult:
    """Run Algorithm 2 with coordination fraction ``xi`` (so ``1 - xi`` of
    the providers behave selfishly, the x-axis of Fig. 3/6a).

    ``information`` selects the selfish players' information model (see the
    module docstring): ``"posted_price"`` or ``"full"``.

    ``engine`` selects the game engine driving the selfish phase:
    ``"incremental"`` (compiled cost tables, vectorised entry scans and
    delta-maintained best-response state), ``"batch"`` (the
    batch-vectorized kernel — all providers' candidate moves priced as one
    delta-cost matrix per round, Jacobi-propose/Gauss-Seidel-commit; see
    :mod:`repro.game.batch`) or ``"naive"`` (the reference per-resource
    Python loops). All produce identical placements.

    ``representation`` selects the instance representation for the leader
    phase (Appro's GAP build and repair): ``"compiled"`` (default, the
    shared :class:`~repro.market.compiled.CompiledMarket` — the follower
    phase's game tables are then sliced from the same blob) or
    ``"object"`` (the cost-model reference path: per-pair GAP build and LP
    assembly, and game tables re-evaluated from the cost callables).
    ``compiled`` optionally supplies a precompiled market (e.g. shipped to
    a sweep worker).

    ``lp_time_limit_s`` bounds the leader phase's GAP LP solve through the
    degradation ladder (see :func:`repro.core.appro.appro`): a timeout
    falls back to the greedy solver and surfaces on the assignment's
    ``info["degradation"]``.

    ``warm_start`` carries the previous epoch's result across a market
    delta: a prior :class:`LCFResult` (or any assignment with
    ``placement``/``rejected``) whose leader assignment seeds Algorithm 1
    in place of the GAP rounding — survivors keep their strategies, only
    newcomers are placed, and the LP solve is skipped (see
    :func:`repro.core.appro.appro`). The downstream selection, pinning and
    selfish phases run unchanged on the seeded ``zeta``; the compiled and
    object representations of a warm run still decide bit-identically.

    Marks the market's providers as coordinated/selfish accordingly, so the
    returned assignment's :attr:`coordinated_cost` / :attr:`selfish_cost`
    reproduce the paper's cost splits.
    """
    check_fraction(xi, "xi")
    if information not in ("posted_price", "full"):
        raise ConfigurationError(
            f"information must be 'posted_price' or 'full', got {information!r}"
        )
    if engine not in ENGINES:
        raise ConfigurationError(f"unknown engine {engine!r}; choose from {ENGINES}")
    seed = (
        warm_start.appro_assignment
        if isinstance(warm_start, LCFResult)
        else warm_start
    )

    with Stopwatch() as watch:
        zeta = appro(
            market,
            gap_solver=gap_solver,
            allow_remote=allow_remote,
            slot_pricing=slot_pricing,
            representation=representation,
            compiled=compiled,
            warm_start=seed,
            lp_time_limit_s=lp_time_limit_s,
        )
        budget = market.coordination_budget(xi)
        coordinated_ids = select_coordinated_lcf(
            market, zeta, budget, strategy=selection, rng=rng
        )
        market.set_coordinated(coordinated_ids)

        # Pin coordinated providers; those the approximate solution served
        # remotely are pinned to "do not cache". Everyone else enters
        # selfishly.
        coordinated_set = set(coordinated_ids)
        pinned_remote = coordinated_set & set(zeta.rejected)
        profile: Dict[int, int] = {
            pid: zeta.placement[pid]
            for pid in coordinated_ids
            if pid not in pinned_remote
        }
        selfish_ids = [
            p.provider_id
            for p in market.providers
            if p.provider_id not in coordinated_set
        ]

        # Sequential selfish entry with rejection of unplaceable providers.
        # Under "posted_price" each provider evaluates the published price
        # sheet only (occupancy term at its face value of one unit); under
        # "full" it sees the live occupancy it would join.
        rejected: Set[int] = set(pinned_remote)
        use_compiled = representation == "compiled"
        game_all = market_game(market, use_compiled=use_compiled)
        placed_selfish: List[int] = []
        posted = information == "posted_price"
        # With the remote option open, "not to cache" competes with every
        # cloudlet at the provider's remote-serving cost.
        entry_threshold = (
            (lambda pid: market.cost_model.remote_cost(market.provider(pid)))
            if allow_remote
            else (lambda pid: float("inf"))
        )

        if engine in ("incremental", "batch"):
            compiled = game_all.compile()
            occ_vec = compiled.occupancy_vector(profile)
            load_mat = compiled.load_matrix(profile)
            for pid in selfish_ids:
                pi = compiled.player_index[pid]
                costs = compiled.entry_costs(pi, occ_vec, load_mat, posted=posted)
                j = int(np.argmin(costs))
                if not costs[j] < entry_threshold(pid):
                    rejected.add(pid)
                    continue
                node = compiled.resources[j]
                profile[pid] = node
                occ_vec[j] += 1
                if load_mat is not None:
                    load_mat[j] += compiled.demand[pi, j]
                placed_selfish.append(pid)
        else:
            occ: Dict[int, int] = game_all.occupancy(profile)
            loads = game_all.loads(profile)
            for pid in selfish_ids:
                best_node = None
                best_cost = entry_threshold(pid)
                for node in game_all.resources:
                    if not game_all.move_is_feasible(pid, node, profile, loads):
                        continue
                    evaluated_occ = 1 if posted else occ.get(node, 0) + 1
                    c = game_all.cost(pid, node, evaluated_occ)
                    if c < best_cost:
                        best_cost = c
                        best_node = node
                if best_node is None:
                    rejected.add(pid)
                    continue
                profile[pid] = best_node
                occ[best_node] = occ.get(best_node, 0) + 1
                d = game_all.demand_of(pid, best_node)
                loads[best_node] = loads.get(best_node, d * 0.0) + d
                placed_selfish.append(pid)

        game = market_game(market, players=list(profile), use_compiled=use_compiled)
        if posted:
            # Posted-price choices are dominant strategies (no player's
            # evaluated cost depends on others), so the profile is already
            # a stable outcome; only capacity-driven compromises deviate
            # from each player's unconstrained optimum.
            result = best_response_dynamics(
                game, profile, movable=[], max_rounds=1, engine=engine
            )
            equilibrium = True
        else:
            result = best_response_dynamics(
                game, profile, movable=placed_selfish, max_rounds=max_rounds,
                engine=engine,
            )
            equilibrium = is_nash_equilibrium(
                game, result.profile, movable=placed_selfish
            )

    assignment = CachingAssignment(
        market=market,
        placement=dict(result.profile),
        rejected=frozenset(rejected),
        algorithm=f"LCF[xi={xi:.2f}]",
        runtime_s=watch.elapsed,
        info={
            "xi": xi,
            "selection": selection,
            "coordinated": len(coordinated_ids),
            "br_rounds": result.rounds,
            "br_moves": result.moves,
            "appro_social_cost": zeta.social_cost,
            "is_equilibrium": equilibrium,
            "warm_start": warm_start is not None,
            "degradation": zeta.info.get("degradation"),
        },
    )
    return LCFResult(
        assignment=assignment,
        appro_assignment=zeta,
        coordinated_ids=coordinated_ids,
        br_rounds=result.rounds,
        br_moves=result.moves,
        is_equilibrium=equilibrium,
    )


__all__ = ["lcf", "LCFResult", "select_coordinated_lcf"]

"""Algorithm 1 — ``Appro``: the approximation for non-selfish players.

Steps (Section III.B):

1. split each cloudlet into ``n_i`` virtual cloudlets (Eq. 7);
2. build the GAP instance with the congestion-free cost (Eq. 9);
3. solve GAP with the Shmoys–Tardos approximation [34];
4. move every service assigned to a virtual cloudlet of ``CL_i`` onto the
   real ``CL_i``.

Step 4 can overload a real cloudlet (the Shmoys–Tardos rounding may exceed a
virtual cloudlet's capacity by one item, and the split floors may not tile
the capacity exactly), so we finish with the *adjustment procedure* the
paper's Fig. 7 discussion refers to: overflow services are moved to the
cheapest cloudlet with residual room, and rejected (left in the remote
cloud) when no cloudlet fits them. Under the paper's standing assumption
that capacities far exceed individual demands, the repair is a no-op.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.assignment import CachingAssignment, Stopwatch
from repro.core.virtual_cloudlets import VirtualCloudletSplit
from repro.gap.greedy import greedy_gap
from repro.gap.instance import GAPInstance, GAPSolution
from repro.gap.ladder import solve_with_degradation
from repro.gap.shmoys_tardos import shmoys_tardos
from repro.gap.exact import exact_gap
from repro.market.compiled import CompiledMarket, resolve_compiled
from repro.market.market import ServiceMarket
from repro.utils.contracts import invariant_capacity_feasible
from repro.utils.validation import CAPACITY_EPS

_GAP_SOLVERS: Dict[str, Callable[[GAPInstance], GAPSolution]] = {
    "shmoys_tardos": shmoys_tardos,
    "greedy": greedy_gap,
    "exact": exact_gap,
}


def _loads(market: ServiceMarket, placement: Dict[int, int]) -> Dict[int, List[float]]:
    loads: Dict[int, List[float]] = {
        cl.node_id: [0.0, 0.0] for cl in market.network.cloudlets
    }
    for pid, node in placement.items():
        p = market.provider(pid)
        loads[node][0] += p.compute_demand
        loads[node][1] += p.bandwidth_demand
    return loads


def _fits(market: ServiceMarket, node: int, load: List[float], pid: int) -> bool:
    cl = market.network.cloudlet_at(node)
    p = market.provider(pid)
    return (
        load[0] + p.compute_demand <= cl.compute_capacity + CAPACITY_EPS
        and load[1] + p.bandwidth_demand <= cl.bandwidth_capacity + CAPACITY_EPS
    )


@invariant_capacity_feasible()
def _repair_capacities(
    market: ServiceMarket,
    placement: Dict[int, int],
    compiled: Optional[CompiledMarket] = None,
) -> Tuple[Dict[int, int], Set[int], int]:
    """Evict overflow services and re-place (or reject) them.

    Within an overloaded cloudlet, the largest services leave first — they
    free the most capacity per eviction, keeping the approximate solution's
    structure as intact as possible. Returns (placement, rejected, moves).

    With a :class:`CompiledMarket` the per-cloudlet loads live in one
    ``(m, 2)`` array, built once and maintained incrementally through both
    the eviction and the re-placement phase; candidate filtering and the
    cheapest-cloudlet pick are vectorised over the gap-cost table. Eviction
    order, feasibility comparisons and tie-breaking match the object path
    exactly.
    """
    if compiled is not None:
        return _repair_capacities_compiled(market, placement, compiled)
    loads = _loads(market, placement)
    evicted: List[int] = []
    for cl in market.network.cloudlets:
        node = cl.node_id
        members = sorted(
            (pid for pid, n in placement.items() if n == node),
            key=lambda pid: -max(
                market.provider(pid).compute_demand,
                market.provider(pid).bandwidth_demand,
            ),
        )
        k = 0
        while (
            loads[node][0] > cl.compute_capacity + CAPACITY_EPS
            or loads[node][1] > cl.bandwidth_capacity + CAPACITY_EPS
        ) and k < len(members):
            pid = members[k]
            k += 1
            p = market.provider(pid)
            loads[node][0] -= p.compute_demand
            loads[node][1] -= p.bandwidth_demand
            del placement[pid]
            evicted.append(pid)

    rejected: Set[int] = set()
    moves = 0
    model = market.cost_model
    for pid in evicted:
        provider = market.provider(pid)
        candidates = [
            cl.node_id
            for cl in market.network.cloudlets
            if _fits(market, cl.node_id, loads[cl.node_id], pid)
        ]
        if not candidates:
            rejected.add(pid)
            continue
        best = min(
            candidates,
            key=lambda n: model.gap_cost(provider, market.network.cloudlet_at(n)),
        )
        placement[pid] = best
        loads[best][0] += provider.compute_demand
        loads[best][1] += provider.bandwidth_demand
        moves += 1
    return placement, rejected, moves


def _repair_capacities_compiled(
    market: ServiceMarket, placement: Dict[int, int], cm: CompiledMarket
) -> Tuple[Dict[int, int], Set[int], int]:
    """Array-state twin of :func:`_repair_capacities` (same moves)."""
    loads = cm.load_matrix(placement)
    gap = cm.gap_costs()
    evicted: List[int] = []
    for col, node in enumerate(cm.cloudlet_nodes):
        members = sorted(
            (pid for pid, n in placement.items() if n == node),
            key=lambda pid: -max(
                float(cm.demand[cm.provider_index[pid], 0]),
                float(cm.demand[cm.provider_index[pid], 1]),
            ),
        )
        k = 0
        while (
            loads[col, 0] > cm.capacity[col, 0] + CAPACITY_EPS
            or loads[col, 1] > cm.capacity[col, 1] + CAPACITY_EPS
        ) and k < len(members):
            pid = members[k]
            k += 1
            loads[col] -= cm.demand[cm.provider_index[pid]]
            del placement[pid]
            evicted.append(pid)

    rejected: Set[int] = set()
    moves = 0
    for pid in evicted:
        row = cm.provider_index[pid]
        candidates = np.flatnonzero(cm.fits_mask(row, loads))
        if candidates.size == 0:
            rejected.add(pid)
            continue
        # First minimum among the candidates in cloudlet order — the same
        # pick as min(candidates, key=gap_cost) on the object path.
        best = int(candidates[np.argmin(gap[row, candidates])])
        placement[pid] = cm.cloudlet_nodes[best]
        loads[best] += cm.demand[row]
        moves += 1
    return placement, rejected, moves


def _warm_appro(
    market: ServiceMarket,
    seed_placement: Dict[int, int],
    seed_rejected: Set[int],
    allow_remote: bool,
    cm: Optional[CompiledMarket],
) -> CachingAssignment:
    """Warm-start Algorithm 1 from a previous run's assignment.

    Survivors keep their seeded strategy (a cloudlet, or "do not cache"
    when ``allow_remote``); the capacity repair then restores feasibility
    (capacities may have shrunk under them), and only the *newcomers* are
    placed — greedily at their cheapest feasible Eq. (9) cost, the same
    candidate filter, cost and first-minimum tie-break as the repair's
    re-placement phase. No virtual-cloudlet split, no GAP relaxation: the
    previous rounding seed replaces the LP, which is what makes warm
    epochs an order of magnitude cheaper than cold ones.

    The object and compiled arms decide identically (same floats, same
    scan order), so warm runs stay differential-testable; a warm run on an
    *unchanged* market reproduces its seed exactly.
    """
    with Stopwatch() as watch:
        present = set(p.provider_id for p in market.providers)
        valid_nodes = {cl.node_id for cl in market.network.cloudlets}
        placement = {
            pid: node
            for pid, node in seed_placement.items()
            if pid in present and node in valid_nodes
        }
        # A remote ("do not cache") strategy only exists with the remote
        # bin open; otherwise previously rejected survivors re-enter.
        rejected: Set[int] = (
            {pid for pid in seed_rejected if pid in present}
            if allow_remote
            else set()
        )
        newcomers = sorted(
            pid for pid in present if pid not in placement and pid not in rejected
        )
        placement, repair_rejected, moves = _repair_capacities(
            market, placement, compiled=cm
        )
        rejected |= repair_rejected

        entered = 0
        if cm is not None:
            loads = cm.load_matrix(placement)
            gap = cm.gap_costs()
            for pid in newcomers:
                row = cm.provider_row(pid)
                candidates = np.flatnonzero(cm.fits_mask(row, loads))
                if candidates.size == 0:
                    rejected.add(pid)
                    continue
                best = int(candidates[np.argmin(gap[row, candidates])])
                if allow_remote and cm.remote[row] < gap[row, best]:
                    rejected.add(pid)
                    continue
                placement[pid] = cm.cloudlet_nodes[best]
                loads[best] += cm.demand[row]
                entered += 1
        else:
            model = market.cost_model
            obj_loads = _loads(market, placement)
            for pid in newcomers:
                provider = market.provider(pid)
                candidates_o = [
                    cl.node_id
                    for cl in market.network.cloudlets
                    if _fits(market, cl.node_id, obj_loads[cl.node_id], pid)
                ]
                if not candidates_o:
                    rejected.add(pid)
                    continue
                best_node = min(
                    candidates_o,
                    key=lambda n: model.gap_cost(
                        provider, market.network.cloudlet_at(n)
                    ),
                )
                best_cost = model.gap_cost(
                    provider, market.network.cloudlet_at(best_node)
                )
                if allow_remote and model.remote_cost(provider) < best_cost:
                    rejected.add(pid)
                    continue
                placement[pid] = best_node
                obj_loads[best_node][0] += provider.compute_demand
                obj_loads[best_node][1] += provider.bandwidth_demand
                entered += 1

    return CachingAssignment(
        market=market,
        placement=placement,
        rejected=frozenset(rejected),
        algorithm="Appro[warm]",
        runtime_s=watch.elapsed,
        info={
            "warm_start": True,
            "repair_moves": moves,
            "warm_entries": entered,
            "warm_survivors": len(placement) - entered,
        },
    )


def appro(
    market: ServiceMarket,
    gap_solver: str = "shmoys_tardos",
    allow_remote: bool = False,
    slot_pricing: str = "marginal",
    representation: str = "compiled",
    compiled: Optional[CompiledMarket] = None,
    warm_start: Optional[CachingAssignment] = None,
    lp_time_limit_s: Optional[float] = None,
) -> CachingAssignment:
    """Run Algorithm 1 on a market.

    Parameters
    ----------
    gap_solver:
        ``"shmoys_tardos"`` (the paper's choice), ``"greedy"`` or
        ``"exact"`` — the latter two support ablation A4.
    representation:
        ``"compiled"`` (default) builds the GAP instance and runs the
        repair from the market's array-backed
        :class:`~repro.market.compiled.CompiledMarket` and assembles the
        GAP LP from the instance arrays in bulk; ``"object"`` queries the
        cost model object graph and keeps the per-pair LP assembly — the
        reference path the differential tests compare against. Both
        produce the identical assignment.
    compiled:
        An explicit precompiled market (e.g. shipped to a sweep worker);
        default compiles on demand and caches on the market instance.
    allow_remote:
        Give the GAP a remote ("do not cache") bin: services for which
        remote serving is genuinely cheaper — or that no virtual cloudlet
        can host — are left in the remote cloud and count as rejected.
        Default off, matching the paper's Algorithm 1 whose strategy space
        is cloudlets only; enable for the "to cache or not to cache"
        extension studied in the examples.
    slot_pricing:
        ``"marginal"`` (default) prices slot ``k`` of a cloudlet at its
        marginal social congestion cost so the GAP objective equals Eq. (6)
        exactly; ``"flat"`` uses the paper's literal Eq. (9) cost
        ``alpha_i + beta_i + c_l^ins + c_i^bdw`` (used by the Lemma 2
        empirical-ratio study). See DESIGN.md for the rationale.
    warm_start:
        A previous assignment on an earlier version of this market (any
        object with ``placement`` and ``rejected``). Surviving providers
        keep their seeded strategies, only newcomers are placed, and the
        split/GAP solve is skipped entirely — see :func:`_warm_appro`.
        The result is a repaired greedy continuation of the seed, not a
        re-run of the LP rounding.
    lp_time_limit_s:
        Time budget for the Shmoys–Tardos LP solve. When set, the solve
        runs through the degradation ladder (:func:`repro.gap.ladder.
        solve_with_degradation`): a timeout falls back to the greedy
        solver and the substitution is surfaced as
        ``info["degradation"]`` (a :class:`~repro.gap.ladder.
        DegradationEvent`) instead of silently swapping. Only meaningful
        with ``gap_solver="shmoys_tardos"``.

    Returns a :class:`CachingAssignment` whose ``info`` carries the LP lower
    bound, ``delta``/``kappa``, the Lemma 2 ratio bound, and repair stats.
    """
    try:
        solve = _GAP_SOLVERS[gap_solver]
    except KeyError:
        raise ValueError(
            f"unknown gap_solver {gap_solver!r}; choose from {sorted(_GAP_SOLVERS)}"
        ) from None
    cm = resolve_compiled(market, representation, compiled)
    if warm_start is not None:
        return _warm_appro(
            market,
            seed_placement=dict(warm_start.placement),
            seed_rejected=set(warm_start.rejected),
            allow_remote=allow_remote,
            cm=cm,
        )
    if gap_solver == "shmoys_tardos":
        # The object representation keeps the whole pre-compiled pipeline,
        # including the per-pair LP assembly; the relaxation (and hence the
        # rounding) is bit-identical either way.
        assemble = "vectorized" if cm is not None else "scalar"
        if lp_time_limit_s is not None:
            solve = partial(
                solve_with_degradation,
                time_limit_s=lp_time_limit_s,
                assemble=assemble,
            )
        else:
            solve = partial(shmoys_tardos, assemble=assemble)
    elif gap_solver == "greedy":
        # Same split for the greedy heuristic: whole-array regret rounds on
        # the compiled path, the per-item reference loop on the object path.
        solve = partial(
            greedy_gap, mode="vectorized" if cm is not None else "scalar"
        )

    with Stopwatch() as watch:
        split = VirtualCloudletSplit(
            market, allow_remote=allow_remote, slot_pricing=slot_pricing
        )
        instance = split.build_gap_instance(compiled=cm)
        solution: GAPSolution = solve(instance)
        placement, gap_rejected = split.merge_assignment(solution.assignment)
        placement, repair_rejected, moves = _repair_capacities(
            market, placement, compiled=cm
        )

    return CachingAssignment(
        market=market,
        placement=placement,
        rejected=frozenset(gap_rejected | repair_rejected),
        algorithm=f"Appro[{gap_solver}]",
        runtime_s=watch.elapsed,
        info={
            "gap_cost": solution.cost,
            "gap_lower_bound": solution.lower_bound,
            "delta": split.delta,
            "kappa": split.kappa,
            "n_prime_max": split.n_prime_max,
            "virtual_cloudlets": len(split.virtual_cloudlets),
            "repair_moves": moves,
            "ratio_bound": 2.0 * split.delta * split.kappa,
            "degradation": solution.degradation,
        },
    )


__all__ = ["appro"]

"""Caching assignments and their evaluation.

A :class:`CachingAssignment` is the common output type of every algorithm in
:mod:`repro.core`: which cloudlet hosts each provider's cached instance,
which providers were rejected (left serving from the remote cloud), and how
much the outcome costs under the market's congestion-aware model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set

from repro.exceptions import CapacityError, ConfigurationError
from repro.market.market import ServiceMarket
from repro.utils.validation import CAPACITY_EPS


@dataclass
class CachingAssignment:
    """The outcome of a service-caching algorithm on a market.

    Parameters
    ----------
    market:
        The market the assignment refers to.
    placement:
        ``provider_id -> cloudlet node_id`` for every cached provider.
    rejected:
        Providers whose service stays in the remote cloud (capacity repair
        could not fit them). Their cost is the remote-serving cost.
    algorithm:
        Name of the producing algorithm (for reports).
    runtime_s:
        Wall-clock seconds the algorithm took (the paper's Fig. 2d/3d/5b).
    """

    market: ServiceMarket
    placement: Dict[int, int]
    rejected: FrozenSet[int] = frozenset()
    algorithm: str = ""
    runtime_s: float = 0.0
    #: Free-form diagnostics set by algorithms (iterations, bounds, ...).
    info: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        provider_ids = {p.provider_id for p in self.market.providers}
        placed = set(self.placement)
        unknown = placed - provider_ids
        if unknown:
            raise ConfigurationError(f"placement has unknown providers {sorted(unknown)}")
        overlap = placed & set(self.rejected)
        if overlap:
            raise ConfigurationError(
                f"providers {sorted(overlap)} are both placed and rejected"
            )
        uncovered = provider_ids - placed - set(self.rejected)
        if uncovered:
            raise ConfigurationError(
                f"providers {sorted(uncovered)} neither placed nor rejected"
            )
        for pid, node in self.placement.items():
            if not self.market.network.has_cloudlet(node):
                raise ConfigurationError(
                    f"provider {pid} placed at node {node} which hosts no cloudlet"
                )

    # ------------------------------------------------------------------ #
    # Costs
    # ------------------------------------------------------------------ #
    def occupancy(self) -> Dict[int, int]:
        """``|sigma_i|`` per cloudlet node."""
        return self.market.cost_model.occupancy(self.placement)

    def provider_cost(self, provider_id: int) -> float:
        """The provider's cost: Eq. (3) if cached, remote cost if rejected.

        Evaluated from the market's compiled tables (bit-equal to the
        cost-model evaluation; the blob is cached, so repeated queries are
        table lookups).
        """
        cm = self.market.compile()
        if provider_id in self.rejected:
            return cm.remote_cost(provider_id)
        return cm.provider_cost(provider_id, self.placement)

    @property
    def social_cost(self) -> float:
        """Eq. (6) over cached providers plus remote costs of rejected ones.

        Uses the compiled tables; ``CostModel.social_cost`` remains the
        object-graph oracle the equivalence tests compare against.
        """
        cm = self.market.compile()
        total = cm.social_cost(self.placement)
        total += sum(cm.remote_cost(pid) for pid in self.rejected)
        return total

    def cost_of(self, provider_ids: Iterable[int]) -> float:
        """Total cost of a subset of providers (Fig. 2b/2c splits)."""
        return sum(self.provider_cost(pid) for pid in provider_ids)

    @property
    def coordinated_cost(self) -> float:
        return self.cost_of(p.provider_id for p in self.market.coordinated)

    @property
    def selfish_cost(self) -> float:
        return self.cost_of(p.provider_id for p in self.market.selfish)

    @property
    def rejection_rate(self) -> float:
        return len(self.rejected) / self.market.num_providers

    # ------------------------------------------------------------------ #
    # Feasibility
    # ------------------------------------------------------------------ #
    def check_capacities(self) -> None:
        """Raise :class:`CapacityError` if any cloudlet is overloaded."""
        loads: Dict[int, List[float]] = {}
        for pid, node in self.placement.items():
            provider = self.market.provider(pid)
            cpu, bw = loads.get(node, [0.0, 0.0])
            loads[node] = [cpu + provider.compute_demand, bw + provider.bandwidth_demand]
        for node, (cpu, bw) in loads.items():
            cl = self.market.network.cloudlet_at(node)
            if cpu > cl.compute_capacity + CAPACITY_EPS:
                raise CapacityError(
                    f"{cl.name}: compute load {cpu:.3f} > capacity {cl.compute_capacity}"
                )
            if bw > cl.bandwidth_capacity + CAPACITY_EPS:
                raise CapacityError(
                    f"{cl.name}: bandwidth load {bw:.3f} > capacity {cl.bandwidth_capacity}"
                )

    def is_feasible(self) -> bool:
        try:
            self.check_capacities()
        except CapacityError:
            return False
        return True

    def __repr__(self) -> str:
        return (
            f"CachingAssignment(algorithm={self.algorithm!r}, "
            f"placed={len(self.placement)}, rejected={len(self.rejected)}, "
            f"social_cost={self.social_cost:.4g})"
        )


class Stopwatch:
    """Tiny context manager measuring wall-clock runtime of algorithms."""

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        self.elapsed = 0.0
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start


__all__ = ["CachingAssignment", "Stopwatch"]

"""Bridge a :class:`ServiceMarket` to a :class:`SingletonCongestionGame`.

The congestion game of Section II.E instantiated on a concrete market:
players are provider ids, resources are cloudlet node ids, the shared cost
is ``(alpha_i + beta_i) * g(k)``, the fixed cost ``c_l^ins + c_i^bdw``, and
capacities are the two-dimensional (compute, bandwidth) cloudlet limits.
"""

from __future__ import annotations

from functools import partial
from typing import Optional, Sequence

import numpy as np

from repro.game.congestion import SingletonCongestionGame
from repro.game.engine import CompiledGame
from repro.market.market import ServiceMarket


def _compiled_game_view(
    market: ServiceMarket, game: SingletonCongestionGame
) -> CompiledGame:
    """``compiled_factory`` hook: slice the market-wide compiled tables
    instead of re-evaluating the cost callables pair by pair."""
    return CompiledGame.from_market(market.compile(), game)


def market_game(
    market: ServiceMarket,
    players: Optional[Sequence[int]] = None,
    use_compiled: bool = True,
) -> SingletonCongestionGame:
    """Construct the service-caching congestion game for a market.

    ``players`` restricts the game to a subset of provider ids (used when
    some providers were rejected and stay out of the market); default is the
    full population ``N``.

    ``use_compiled`` (default) installs a ``compiled_factory`` so
    ``game.compile()`` slices the market's cached
    :class:`~repro.market.compiled.CompiledMarket` tables; ``False`` leaves
    the game to build its own tables from the cost callables — the
    pre-compiled reference path (bit-equal tables either way).
    """
    model = market.cost_model
    net = market.network

    def shared(node: int, occupancy: int) -> float:
        return model.congestion_cost(net.cloudlet_at(node), occupancy)

    def fixed(provider_id: int, node: int) -> float:
        return model.fixed_cost(market.provider(provider_id), net.cloudlet_at(node))

    def demand(provider_id: int, node: int) -> np.ndarray:
        p = market.provider(provider_id)
        return np.array([p.compute_demand, p.bandwidth_demand])

    def capacity(node: int) -> np.ndarray:
        cl = net.cloudlet_at(node)
        return np.array([cl.compute_capacity, cl.bandwidth_capacity])

    if players is None:
        players = [p.provider_id for p in market.providers]
    game = SingletonCongestionGame(
        players=list(players),
        resources=[cl.node_id for cl in net.cloudlets],
        shared_cost=shared,
        fixed_cost=fixed,
        demand=demand,
        capacity=capacity,
    )
    if use_compiled:
        game.compiled_factory = partial(_compiled_game_view, market)
    return game


__all__ = ["market_game"]

"""VCG-style payments for the coordinated service market (extension).

The paper coordinates providers through bulk-lease contracts but never
prices the coordination. The Clarke pivot rule supplies the canonical
answer: each coordinated provider pays the **externality** it imposes —

``p_l = C(OPT of everyone else without l) - [C(OPT with l) - c_l]``

i.e. how much costlier its presence makes everybody else. With an *exact*
allocation oracle these payments make truthful demand reporting a dominant
strategy; with an approximate oracle (we use marginal-priced Appro, which
the LP bound certifies near-optimal) the same formula yields approximately
truthful payments — the standard practical compromise, stated explicitly in
:class:`VCGOutcome.truthful` and the docstrings.

Properties that do hold exactly and are tested:

* payments are computed from runs that never consult the paying provider's
  own report beyond its resource demand;
* no-externality providers pay ~0;
* total payments equal the aggregate externality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.appro import appro
from repro.core.assignment import CachingAssignment, Stopwatch
from repro.exceptions import ConfigurationError
from repro.market.market import ServiceMarket
from repro.market.pricing import Pricing
from repro.market.service import ServiceProvider


@dataclass
class VCGOutcome:
    """Allocation plus Clarke payments."""

    assignment: CachingAssignment
    #: provider_id -> Clarke payment (>= 0 up to oracle approximation).
    payments: Dict[int, float]
    #: Social cost of the chosen allocation.
    social_cost: float
    #: Whether the oracle was exact (payments then dominant-strategy
    #: truthful). False for the Appro oracle.
    truthful: bool
    runtime_s: float

    @property
    def total_payments(self) -> float:
        return sum(self.payments.values())

    def payment(self, provider_id: int) -> float:
        try:
            return self.payments[provider_id]
        except KeyError:
            raise ConfigurationError(f"no payment for provider {provider_id}") from None


def _submarket(market: ServiceMarket, exclude: int) -> ServiceMarket:
    """The market without one provider (same network, pricing, congestion)."""
    providers: List[ServiceProvider] = [
        p for p in market.providers if p.provider_id != exclude
    ]
    if not providers:
        raise ConfigurationError("cannot build a submarket with zero providers")
    return ServiceMarket(
        market.network,
        providers,
        pricing=market.cost_model.pricing,
        congestion=market.cost_model.congestion,
    )


def vcg_payments(
    market: ServiceMarket,
    allow_remote: bool = True,
) -> VCGOutcome:
    """Run the allocation oracle and compute Clarke payments for everyone.

    Cost: one oracle run on the full market plus one per provider (the
    counterfactual markets), so O(|N|) Appro invocations.
    """
    if market.num_providers < 2:
        raise ConfigurationError("VCG needs at least two providers")

    with Stopwatch() as watch:
        allocation = appro(market, allow_remote=allow_remote)
        total_cost = allocation.social_cost

        payments: Dict[int, float] = {}
        for provider in market.providers:
            pid = provider.provider_id
            own_cost = allocation.provider_cost(pid)
            others_with_l = total_cost - own_cost
            sub = _submarket(market, exclude=pid)
            without_l = appro(sub, allow_remote=allow_remote).social_cost
            # Clarke pivot: what the others lose by l's presence. Clamp at
            # zero — a negative externality estimate is oracle slack.
            payments[pid] = max(0.0, others_with_l - without_l)

    return VCGOutcome(
        assignment=allocation,
        payments=payments,
        social_cost=total_cost,
        truthful=False,  # Appro is an (excellent) approximation, not exact
        runtime_s=watch.elapsed,
    )


__all__ = ["VCGOutcome", "vcg_payments", "_submarket"]

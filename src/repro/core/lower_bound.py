"""A rigorous LP lower bound on the optimal social cost.

The exact solver (:mod:`repro.core.optimal`) is limited to ~14 providers.
For full-scale instances this module bounds the optimum from below with a
linear program over *slotted* fractional placements:

* variables ``x[l, i, k]`` — provider ``l`` fractionally occupying slot
  ``k`` of cloudlet ``i``;
* slot ``k`` carries the marginal congestion charge
  ``(alpha_i + beta_i) * (k*g(k) - (k-1)*g(k-1))`` plus the provider's
  fixed cost, so filling the first ``k_i`` slots bills exactly the social
  cost ``(alpha_i + beta_i) * k_i * g(k_i) + fixed`` of an integral
  placement (the telescoping identity of the marginal-priced reduction);
* each slot holds at most one (fractional) service and the true compute /
  bandwidth capacities constrain the cloudlet total.

Every integral feasible placement induces a feasible LP point of equal
objective (occupants of a cloudlet fill its cheapest slots first — any
other slot choice costs weakly more), hence ``LP* <= OPT``. The bound is
what the benchmarks report as the *optimality gap* of Appro/LCF at scale.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from repro.exceptions import InfeasibleError, SolverError
from repro.market.market import ServiceMarket


def _slots_per_cloudlet(market: ServiceMarket) -> Dict[int, int]:
    """Max services a cloudlet could conceivably host: bounded by provider
    count and by capacity over the smallest demand."""
    n = market.num_providers
    a_min = market.min_compute_demand()
    b_min = market.min_bandwidth_demand()
    slots: Dict[int, int] = {}
    for cl in market.network.cloudlets:
        by_cpu = math.floor(cl.compute_capacity / a_min) if a_min > 0 else n
        by_bw = math.floor(cl.bandwidth_capacity / b_min) if b_min > 0 else n
        slots[cl.node_id] = max(0, min(n, by_cpu, by_bw))
    return slots


def social_cost_lower_bound(
    market: ServiceMarket,
    allow_remote: bool = False,
) -> float:
    """Solve the slotted LP relaxation (see module docstring).

    ``allow_remote`` adds each provider's remote-serving option, matching
    algorithms run with their remote fallback enabled. Raises
    :class:`InfeasibleError` when not even the relaxation can place
    everyone (and remote is off).
    """
    model = market.cost_model
    net = market.network
    providers = market.providers
    n = len(providers)
    slots = _slots_per_cloudlet(market)

    # Column construction: (provider_index, cloudlet_node, slot) + optional
    # remote columns (provider_index, None, 0).
    columns: List[Tuple[int, Optional[int], int]] = []
    costs: List[float] = []
    g = model.congestion
    for j, provider in enumerate(providers):
        for cl in net.cloudlets:
            fixed = model.fixed_cost(provider, cl)
            coeff = cl.alpha + cl.beta
            for k in range(1, slots[cl.node_id] + 1):
                marginal = coeff * (k * g(k) - (k - 1) * g(k - 1))
                columns.append((j, cl.node_id, k))
                costs.append(fixed + marginal)
        if allow_remote:
            columns.append((j, None, 0))
            costs.append(model.remote_cost(provider))
    if not columns:
        raise InfeasibleError("no placement columns (zero slots everywhere)")

    n_cols = len(columns)
    c = np.asarray(costs)

    rows_eq, cols_eq, data_eq = [], [], []
    for idx, (j, _node, _k) in enumerate(columns):
        rows_eq.append(j)
        cols_eq.append(idx)
        data_eq.append(1.0)
    a_eq = csr_matrix((data_eq, (rows_eq, cols_eq)), shape=(n, n_cols))
    b_eq = np.ones(n)

    # Inequalities: per (cloudlet, slot) occupancy <= 1; per cloudlet the
    # two capacity constraints.
    slot_row: Dict[Tuple[int, int], int] = {}
    cap_row: Dict[Tuple[int, str], int] = {}
    next_row = 0
    for cl in net.cloudlets:
        for k in range(1, slots[cl.node_id] + 1):
            slot_row[(cl.node_id, k)] = next_row
            next_row += 1
        cap_row[(cl.node_id, "cpu")] = next_row
        cap_row[(cl.node_id, "bw")] = next_row + 1
        next_row += 2

    rows_ub, cols_ub, data_ub = [], [], []
    b_ub = np.zeros(next_row)
    for (node, k), r in slot_row.items():
        b_ub[r] = 1.0
    for cl in net.cloudlets:
        b_ub[cap_row[(cl.node_id, "cpu")]] = cl.compute_capacity
        b_ub[cap_row[(cl.node_id, "bw")]] = cl.bandwidth_capacity

    for idx, (j, node, k) in enumerate(columns):
        if node is None:
            continue
        provider = providers[j]
        rows_ub.append(slot_row[(node, k)])
        cols_ub.append(idx)
        data_ub.append(1.0)
        rows_ub.append(cap_row[(node, "cpu")])
        cols_ub.append(idx)
        data_ub.append(provider.compute_demand)
        rows_ub.append(cap_row[(node, "bw")])
        cols_ub.append(idx)
        data_ub.append(provider.bandwidth_demand)
    a_ub = csr_matrix((data_ub, (rows_ub, cols_ub)), shape=(next_row, n_cols))

    result = linprog(
        c,
        A_eq=a_eq,
        b_eq=b_eq,
        A_ub=a_ub,
        b_ub=b_ub,
        bounds=(0.0, 1.0),
        method="highs",
    )
    if result.status == 2:
        raise InfeasibleError("the LP relaxation itself is infeasible")
    if not result.success:
        raise SolverError(f"linprog failed: {result.message}")
    return float(result.fun)


__all__ = ["social_cost_lower_bound"]

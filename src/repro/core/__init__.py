"""The paper's primary contribution: Appro, LCF and their analysis.

* :func:`~repro.core.appro.appro` — Algorithm 1, the ``2*delta*kappa``
  approximation for the non-selfish problem (virtual-cloudlet split + GAP +
  Shmoys–Tardos + merge-back + capacity repair).
* :func:`~repro.core.lcf.lcf` — Algorithm 2, the Largest-Cost-First
  approximation-restricted Stackelberg strategy.
* :mod:`~repro.core.baselines` — ``JoOffloadCache`` [23] and
  ``OffloadCache`` [20].
* :func:`~repro.core.optimal.optimal_caching` — exact optimum for small
  instances (empirical ratio / PoA studies).
* :mod:`~repro.core.bounds` — Lemma 2 and Theorem 1 closed forms.
"""

from repro.core.assignment import CachingAssignment
from repro.core.virtual_cloudlets import VirtualCloudletSplit
from repro.core.bridge import market_game
from repro.core.appro import appro
from repro.core.lcf import lcf, LCFResult, select_coordinated_lcf
from repro.core.baselines import jo_offload_cache, offload_cache
from repro.core.optimal import optimal_caching
from repro.core.bounds import appro_ratio_bound, stackelberg_poa_bound
from repro.core.multicache import (
    MultiCacheAssignment,
    greedy_multicache,
)
from repro.core.annealing import annealed_caching
from repro.core.tolls import optimize_toll_level, tolled_selfish_market
from repro.core.lower_bound import social_cost_lower_bound
from repro.core.vcg import VCGOutcome, vcg_payments
from repro.core.planning import CapacityPlan, capacity_plan

__all__ = [
    "CachingAssignment",
    "VirtualCloudletSplit",
    "market_game",
    "appro",
    "lcf",
    "LCFResult",
    "select_coordinated_lcf",
    "jo_offload_cache",
    "offload_cache",
    "optimal_caching",
    "appro_ratio_bound",
    "stackelberg_poa_bound",
    "MultiCacheAssignment",
    "greedy_multicache",
    "annealed_caching",
    "optimize_toll_level",
    "tolled_selfish_market",
    "social_cost_lower_bound",
    "VCGOutcome",
    "vcg_payments",
    "CapacityPlan",
    "capacity_plan",
]

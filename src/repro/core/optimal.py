"""Exact optimal service caching for small instances.

Branch-and-bound over full placements under the true congestion-aware cost
(Eq. 3). The bound at a partial placement is

``cost committed so far (at current occupancies)  +
  sum over free providers of their cheapest occupancy-1 cost``

which is admissible because congestion costs are non-decreasing: adding
providers never cheapens anyone. Practical to roughly 12 providers on 8
cloudlets — enough for the empirical approximation-ratio and PoA studies
(ablation A1); the social optimum is NP-hard in general, which is the whole
reason Algorithm 1 exists.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.assignment import CachingAssignment, Stopwatch
from repro.exceptions import ConfigurationError, InfeasibleError
from repro.market.compiled import CompiledMarket
from repro.market.market import ServiceMarket
from repro.utils.validation import CAPACITY_EPS

_MAX_PROVIDERS = 14

#: Slack subtracted from the incumbent before pruning a branch: keeps
#: float-accumulation noise from discarding placements that tie the optimum.
_PRUNE_EPS = 1e-12


def optimal_caching(
    market: ServiceMarket,
    max_providers: int = _MAX_PROVIDERS,
    compiled: Optional[CompiledMarket] = None,
) -> CachingAssignment:
    """The socially optimal placement by exhaustive branch-and-bound.

    The search tables (fixed costs, congestion coefficients and factors,
    demands and capacities) come from the market's compiled view — the
    entries are exactly the cost-model evaluations this function used to
    tabulate itself, so results are unchanged.

    Raises :class:`ConfigurationError` for markets larger than
    ``max_providers`` and :class:`InfeasibleError` when no complete feasible
    placement exists.
    """
    providers = market.providers
    n = len(providers)
    if n > max_providers:
        raise ConfigurationError(
            f"optimal_caching is limited to {max_providers} providers, got {n}"
        )
    cloudlets = market.network.cloudlets
    m = len(cloudlets)
    cm = compiled if compiled is not None else market.compile()

    # Gather the provider-indexed tables into id order (identity on a
    # dense compile; required after delta patches tombstone/append rows).
    fixed = cm.fixed[cm.active_rows]
    shared = cm.coeff
    # congestion factors g(0..n) are shared across players and cloudlets.
    g = cm.g

    # Admissible per-provider floor: cheapest fixed cost + the cheapest
    # possible congestion charge (occupancy 1 on the least congested
    # cloudlet); suffix-summed for O(1) bound lookups during the search.
    per_provider_floor = fixed.min(axis=1) + shared.min() * g[1]
    suffix = np.zeros(n + 1)
    for j in range(n - 1, -1, -1):
        suffix[j] = suffix[j + 1] + per_provider_floor[j]

    caps = cm.capacity
    demands = cm.demand[cm.active_rows]

    best_cost = np.inf
    best_assign: Optional[List[int]] = None
    assign = [-1] * n
    counts = np.zeros(m, dtype=int)
    loads = np.zeros((m, 2))

    def placement_cost(counts_arr: np.ndarray, assign_list: List[int]) -> float:
        total = 0.0
        for j, i in enumerate(assign_list):
            total += fixed[j, i]
        for i in range(m):
            k = counts_arr[i]
            if k:
                total += k * shared[i] * g[k]
        return total

    def partial_cost() -> float:
        # Cost of committed providers at *current* occupancies (a lower
        # bound on their final cost, since occupancies only grow).
        total = 0.0
        for i in range(m):
            k = counts[i]
            if k:
                total += k * shared[i] * g[k]
        for j in range(n):
            if assign[j] >= 0:
                total += fixed[j, assign[j]]
        return total

    def dfs(j: int) -> None:
        nonlocal best_cost, best_assign
        if partial_cost() + suffix[j] >= best_cost - _PRUNE_EPS:
            return
        if j == n:
            cost = placement_cost(counts, assign)
            if cost < best_cost:
                best_cost = cost
                best_assign = assign.copy()
            return
        order = np.argsort(fixed[j])
        for i in order:
            if np.any(loads[i] + demands[j] > caps[i] + CAPACITY_EPS):
                continue
            assign[j] = int(i)
            counts[i] += 1
            loads[i] += demands[j]
            dfs(j + 1)
            loads[i] -= demands[j]
            counts[i] -= 1
            assign[j] = -1

    with Stopwatch() as watch:
        dfs(0)

    if best_assign is None:
        raise InfeasibleError("no feasible complete placement exists")
    placement: Dict[int, int] = {
        providers[j].provider_id: cloudlets[i].node_id
        for j, i in enumerate(best_assign)
    }
    return CachingAssignment(
        market=market,
        placement=placement,
        algorithm="Optimal",
        runtime_s=watch.elapsed,
        info={"optimal_cost": best_cost},
    )


__all__ = ["optimal_caching"]

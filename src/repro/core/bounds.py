"""Closed-form performance bounds: Lemma 2 and Theorem 1.

* Lemma 2 — ``Appro`` is a ``2 * delta * kappa`` approximation, with
  ``delta = C(CL_i)/a_max`` and ``kappa = B(CL_i)/b_max`` (taken at their
  maxima over cloudlets, treated as small constants by the paper).
* Theorem 1 — the LCF Stackelberg strategy's Price of Anarchy is
  ``2*delta*kappa / (1 - v) * (1/(4v) + 1 - xi)`` for any ``v in (0, 1)``;
  :func:`optimal_v` minimises the bound over ``v`` analytically.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.virtual_cloudlets import VirtualCloudletSplit
from repro.exceptions import ConfigurationError
from repro.market.market import ServiceMarket
from repro.utils.validation import check_fraction, check_positive


def appro_ratio_bound(delta: float, kappa: float) -> float:
    """Lemma 2: the approximation ratio ``2 * delta * kappa``."""
    check_positive(delta, "delta")
    check_positive(kappa, "kappa")
    return 2.0 * delta * kappa


def stackelberg_poa_bound(
    delta: float, kappa: float, xi: float, v: Optional[float] = None
) -> float:
    """Theorem 1: ``2*delta*kappa/(1-v) * (1/(4v) + 1 - xi)``.

    When ``v`` is omitted the bound is minimised over ``v in (0, 1)``.
    """
    check_positive(delta, "delta")
    check_positive(kappa, "kappa")
    check_fraction(xi, "xi")
    if v is None:
        v = optimal_v(xi)
    if not 0.0 < v < 1.0:
        raise ConfigurationError(f"v must lie in (0, 1), got {v}")
    return 2.0 * delta * kappa / (1.0 - v) * (1.0 / (4.0 * v) + 1.0 - xi)


def optimal_v(xi: float) -> float:
    """The ``v`` minimising Theorem 1's bound for a given ``xi``.

    Minimising ``f(v) = (1/(4v) + c) / (1 - v)`` with ``c = 1 - xi`` gives
    the stationary condition ``4*c*v^2 + 2*v - 1 = 0``; for ``c = 0`` the
    minimiser degenerates to ``v = 1/2``.
    """
    check_fraction(xi, "xi")
    c = 1.0 - xi
    if c < 1e-12:
        return 0.5
    # Positive root of 4c v^2 + 2v - 1 = 0.
    v = (-2.0 + math.sqrt(4.0 + 16.0 * c)) / (8.0 * c)
    return min(max(v, 1e-9), 1.0 - 1e-9)


def bounds_for_market(market: ServiceMarket, xi: float) -> dict:
    """Convenience: delta/kappa from the market's own demand profile plus
    both closed-form bounds, as a plain dict for reports."""
    split = VirtualCloudletSplit(market)
    delta, kappa = split.delta, split.kappa
    return {
        "delta": delta,
        "kappa": kappa,
        "appro_ratio_bound": appro_ratio_bound(delta, kappa),
        "poa_bound": stackelberg_poa_bound(delta, kappa, xi),
        "optimal_v": optimal_v(xi),
    }


__all__ = [
    "appro_ratio_bound",
    "stackelberg_poa_bound",
    "optimal_v",
    "bounds_for_market",
]

"""Simulated-annealing / Gibbs-sampling placement (extension).

The paper's JoOffloadCache reference [23] optimises placements with Gibbs
sampling; this module provides that style of solver for *our* objective: a
Metropolis chain over full placements minimising the true social cost
(Eq. 6). At temperature ``T`` a random provider proposes a random feasible
cloudlet and accepts with probability ``min(1, exp(-delta/T))``; geometric
cooling drives the chain to a local (often global, on small instances)
optimum.

It is slower than ``Appro`` but makes a strong upper-baseline: on instances
where the exact optimum is computable the chain routinely finds it, and on
large instances it bounds how much headroom Appro leaves (reported in the
gap ablation).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.assignment import CachingAssignment, Stopwatch
from repro.exceptions import ConfigurationError, InfeasibleError
from repro.market.market import ServiceMarket
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import CAPACITY_EPS, check_positive


def _initial_greedy(market: ServiceMarket) -> Dict[int, int]:
    """Cheapest-feasible sequential start (same as baseline admission)."""
    model = market.cost_model
    loads: Dict[int, List[float]] = {
        cl.node_id: [0.0, 0.0] for cl in market.network.cloudlets
    }
    occupancy: Dict[int, int] = {cl.node_id: 0 for cl in market.network.cloudlets}
    placement: Dict[int, int] = {}
    for provider in market.providers:
        best_node, best_cost = None, math.inf
        for cl in market.network.cloudlets:
            node = cl.node_id
            if (
                loads[node][0] + provider.compute_demand > cl.compute_capacity + CAPACITY_EPS
                or loads[node][1] + provider.bandwidth_demand
                > cl.bandwidth_capacity + CAPACITY_EPS
            ):
                continue
            cost = model.cost(provider, cl, occupancy[node] + 1)
            if cost < best_cost:
                best_cost, best_node = cost, node
        if best_node is None:
            raise InfeasibleError(
                f"no feasible cloudlet for provider {provider.provider_id}; "
                "annealing requires a fully cacheable market"
            )
        placement[provider.provider_id] = best_node
        loads[best_node][0] += provider.compute_demand
        loads[best_node][1] += provider.bandwidth_demand
        occupancy[best_node] += 1
    return placement


def _social_cost_delta(
    market: ServiceMarket,
    placement: Dict[int, int],
    occupancy: Dict[int, int],
    pid: int,
    new_node: int,
) -> float:
    """Exact Eq. (6) change of moving ``pid`` to ``new_node``.

    With the shared congestion term, moving one provider changes (a) its
    own cost and (b) the congestion charge of every co-resident at the old
    and new cloudlets.
    """
    model = market.cost_model
    net = market.network
    old_node = placement[pid]
    provider = market.provider(pid)
    old_cl = net.cloudlet_at(old_node)
    new_cl = net.cloudlet_at(new_node)
    k_old = occupancy[old_node]
    k_new = occupancy.get(new_node, 0)

    # own cost change
    delta = model.cost(provider, new_cl, k_new + 1) - model.cost(
        provider, old_cl, k_old
    )
    # co-residents at the old cloudlet get cheaper ...
    delta += (k_old - 1) * (
        model.congestion_cost(old_cl, k_old - 1) - model.congestion_cost(old_cl, k_old)
    )
    # ... and at the new cloudlet more expensive.
    delta += k_new * (
        model.congestion_cost(new_cl, k_new + 1) - model.congestion_cost(new_cl, k_new)
    )
    return delta


def annealed_caching(
    market: ServiceMarket,
    iterations: int = 20_000,
    initial_temperature: float = 1.0,
    cooling: float = 0.9995,
    rng: RandomSource = None,
) -> CachingAssignment:
    """Minimise the social cost with a Metropolis chain (see module doc).

    Raises :class:`InfeasibleError` when some provider fits nowhere (the
    chain has no remote option; use LCF/Appro with ``allow_remote`` there).
    """
    check_positive(initial_temperature, "initial_temperature")
    if not 0.0 < cooling < 1.0:
        raise ConfigurationError(f"cooling must lie in (0, 1), got {cooling}")
    if iterations < 1:
        raise ConfigurationError(f"iterations must be >= 1, got {iterations}")
    rng = as_rng(rng)
    model = market.cost_model
    net = market.network
    cloudlets = net.cloudlets
    nodes = [cl.node_id for cl in cloudlets]

    with Stopwatch() as watch:
        placement = _initial_greedy(market)
        occupancy = model.occupancy(placement)
        loads: Dict[int, List[float]] = {n: [0.0, 0.0] for n in nodes}
        for pid, node in placement.items():
            provider = market.provider(pid)
            loads[node][0] += provider.compute_demand
            loads[node][1] += provider.bandwidth_demand

        providers = market.providers
        current_cost = model.social_cost(market.providers_by_id(), placement)
        best_cost = current_cost
        best_placement = dict(placement)
        temperature = initial_temperature
        accepted = 0

        for _ in range(iterations):
            provider = providers[int(rng.integers(0, len(providers)))]
            pid = provider.provider_id
            new_node = nodes[int(rng.integers(0, len(nodes)))]
            old_node = placement[pid]
            if new_node == old_node:
                temperature *= cooling
                continue
            cl = net.cloudlet_at(new_node)
            if (
                loads[new_node][0] + provider.compute_demand
                > cl.compute_capacity + CAPACITY_EPS
                or loads[new_node][1] + provider.bandwidth_demand
                > cl.bandwidth_capacity + CAPACITY_EPS
            ):
                temperature *= cooling
                continue
            delta = _social_cost_delta(market, placement, occupancy, pid, new_node)
            if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-12)):
                placement[pid] = new_node
                occupancy[old_node] -= 1
                if occupancy[old_node] == 0:
                    del occupancy[old_node]
                occupancy[new_node] = occupancy.get(new_node, 0) + 1
                loads[old_node][0] -= provider.compute_demand
                loads[old_node][1] -= provider.bandwidth_demand
                loads[new_node][0] += provider.compute_demand
                loads[new_node][1] += provider.bandwidth_demand
                current_cost += delta
                accepted += 1
                # reprolint: ok[R2] improvement margin vs float noise, deliberately finer than CAPACITY_EPS
                if current_cost < best_cost - 1e-12:
                    best_cost = current_cost
                    best_placement = dict(placement)
            temperature *= cooling

    return CachingAssignment(
        market=market,
        placement=best_placement,
        algorithm="Annealed",
        runtime_s=watch.elapsed,
        info={
            "iterations": iterations,
            "accepted_moves": accepted,
            "final_temperature": temperature,
        },
    )


__all__ = ["annealed_caching"]

"""Virtual-cloudlet splitting and the GAP reduction (Section III.B).

Each cloudlet ``CL_i`` is split into

``n_i = min( floor(C(CL_i)/a_max), floor(B(CL_i)/b_max) )``            (Eq. 7)

virtual cloudlets, "each virtual cloudlet being restricted to be able to
only cache a single service instance" (Section III.B). Each virtual cloudlet
is one GAP knapsack of capacity ``max(a_max, b_max)``; to enforce the
one-instance restriction, every item's weight equals the slot capacity, so
the knapsack admits exactly one service. The assignment cost ignores
congestion (Eq. 9): ``alpha_i + beta_i + c_l^ins + c_i^bdw``.

Feasibility (Lemma 1) is then structural: a cloudlet receives at most
``n_i`` services, each demanding at most ``a_max`` compute and ``b_max``
bandwidth, and ``n_i * a_max <= C(CL_i)``, ``n_i * b_max <= B(CL_i)`` by
Eq. (7).

When the market holds more providers than there are virtual cloudlets — the
regime of the Fig. 7 sweeps, where growing ``a_max`` shrinks every ``n_i``
— a plain reduction is infeasible. We optionally extend the instance with a
*remote bin* of unbounded multiplicity whose cost is the provider's
remote-serving cost: services assigned there are "not cached" (the title's
other option) and count as rejected.

``delta = C(CL_i)/a_max`` and ``kappa = B(CL_i)/b_max`` (cloudlet-maximal,
per Lemma 2) and ``n'_max`` (Eq. 8) are exposed for the bound computations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, InfeasibleError
from repro.gap.instance import GAPInstance
from repro.market.compiled import CompiledMarket
from repro.market.market import ServiceMarket


@dataclass(frozen=True)
class VirtualCloudlet:
    """One knapsack of the reduction: slot ``k`` of real cloudlet ``CL_i``."""

    index: int  # global index (GAP bin id)
    cloudlet_node: int  # real cloudlet it belongs to
    slot: int  # 0 <= slot < n_i
    capacity: float


class VirtualCloudletSplit:
    """The Eq. (7)–(9) reduction of a market to a GAP instance.

    ``allow_remote`` appends a remote bin (one pseudo-slot per provider, so
    capacity never binds) priced at each provider's remote-serving cost;
    :meth:`merge_assignment` reports services landing there as rejected.
    """

    #: Bin index sentinel returned for remote assignments.
    REMOTE = -1

    #: Supported slot pricing modes (see ``slot_pricing``).
    PRICINGS = ("marginal", "flat")

    def __init__(
        self,
        market: ServiceMarket,
        allow_remote: bool = False,
        slot_pricing: str = "marginal",
    ) -> None:
        if slot_pricing not in self.PRICINGS:
            raise ConfigurationError(
                f"slot_pricing must be one of {self.PRICINGS}, got {slot_pricing!r}"
            )
        self.market = market
        self.allow_remote = allow_remote
        self.slot_pricing = slot_pricing
        self.a_max = market.max_compute_demand()
        self.b_max = market.max_bandwidth_demand()
        self.a_min = market.min_compute_demand()
        self.b_min = market.min_bandwidth_demand()
        if self.a_max <= 0 or self.b_max <= 0:
            raise ConfigurationError("demands must be positive")

        self.slot_capacity = max(self.a_max, self.b_max)
        self.virtual_cloudlets: List[VirtualCloudlet] = []
        self.n_i: Dict[int, int] = {}
        index = 0
        for cl in market.network.cloudlets:
            n_i = min(
                math.floor(cl.compute_capacity / self.a_max),
                math.floor(cl.bandwidth_capacity / self.b_max),
            )
            self.n_i[cl.node_id] = n_i
            for slot in range(n_i):
                self.virtual_cloudlets.append(
                    VirtualCloudlet(
                        index=index,
                        cloudlet_node=cl.node_id,
                        slot=slot,
                        capacity=self.slot_capacity,
                    )
                )
                index += 1
        if not self.virtual_cloudlets and not allow_remote:
            raise InfeasibleError(
                "every cloudlet splits into zero virtual cloudlets: the largest "
                "service demand exceeds (a capacity fraction of) every cloudlet; "
                "Lemma 1 assumes capacities far exceed maximum demands"
            )

    # ------------------------------------------------------------------ #
    # Bound ingredients
    # ------------------------------------------------------------------ #
    @property
    def delta(self) -> float:
        """``delta = max_i C(CL_i) / a_max`` (Lemma 2)."""
        return max(
            cl.compute_capacity / self.a_max for cl in self.market.network.cloudlets
        )

    @property
    def kappa(self) -> float:
        """``kappa = max_i B(CL_i) / b_max`` (Lemma 2)."""
        return max(
            cl.bandwidth_capacity / self.b_max for cl in self.market.network.cloudlets
        )

    @property
    def n_prime_max(self) -> float:
        """Eq. (8): the max number of services a virtual cloudlet could hold
        if filled with minimal-demand services."""
        cap = self.slot_capacity
        return max(cap / self.a_min, cap / self.b_min)

    # ------------------------------------------------------------------ #
    # GAP construction / solution mapping
    # ------------------------------------------------------------------ #
    def item_weight(self, provider_id: int) -> float:
        """Uniform weight = slot capacity: one service per virtual cloudlet
        (the Section III.B restriction)."""
        return self.slot_capacity

    @property
    def remote_bin(self) -> int:
        """GAP bin index of the remote ("do not cache") bin, if enabled."""
        if not self.allow_remote:
            raise ConfigurationError("split was built without a remote bin")
        return len(self.virtual_cloudlets)

    def build_gap_instance(
        self, compiled: Optional[CompiledMarket] = None
    ) -> GAPInstance:
        """Items = providers (in id order), bins = virtual cloudlets, plus
        the remote bin when ``allow_remote`` is set.

        With a :class:`CompiledMarket` the cost matrix is assembled from
        the precomputed tables (one broadcast add per pricing mode) instead
        of querying the cost model per (provider, slot) pair; the entries
        are bit-equal because both paths add/multiply the same doubles.
        """
        if compiled is not None:
            return self._build_gap_instance_compiled(compiled)
        providers = self.market.providers
        n = len(providers)
        m = len(self.virtual_cloudlets) + (1 if self.allow_remote else 0)
        costs = np.zeros((n, m))
        weights = np.full((n, m), self.slot_capacity)
        model = self.market.cost_model
        net = self.market.network
        for j, provider in enumerate(providers):
            for vc in self.virtual_cloudlets:
                cloudlet = net.cloudlet_at(vc.cloudlet_node)
                if self.slot_pricing == "flat":
                    # The paper's Eq. (9): alpha_i + beta_i + fixed.
                    costs[j, vc.index] = model.gap_cost(provider, cloudlet)
                else:
                    # Marginal pricing: slot k of CL_i carries the marginal
                    # social congestion charge
                    #   (alpha_i + beta_i) * (k*g(k) - (k-1)*g(k-1)),
                    # i.e. (2k - 1)(alpha_i + beta_i) under the paper's
                    # linear model, so filling k slots sums to the true
                    # social congestion cost (alpha_i+beta_i) * k * g(k).
                    # The GAP objective then equals the social cost (Eq. 6)
                    # exactly, which is what makes the coordinated
                    # placement worth following.
                    k = vc.slot + 1
                    g = model.congestion
                    marginal = (cloudlet.alpha + cloudlet.beta) * (
                        k * g(k) - (k - 1) * g(k - 1)
                    )
                    costs[j, vc.index] = marginal + model.fixed_cost(provider, cloudlet)
            if self.allow_remote:
                costs[j, self.remote_bin] = model.remote_cost(provider)
        capacities = np.array(
            [vc.capacity for vc in self.virtual_cloudlets]
            + ([n * self.slot_capacity] if self.allow_remote else [])
        )
        return GAPInstance(costs=costs, weights=weights, capacities=capacities)

    def _build_gap_instance_compiled(self, cm: CompiledMarket) -> GAPInstance:
        """Table-backed :meth:`build_gap_instance` (same instance, no
        per-pair cost-model calls)."""
        n = cm.n_providers
        n_virtual = len(self.virtual_cloudlets)
        m = n_virtual + (1 if self.allow_remote else 0)
        costs = np.zeros((n, m))
        weights = np.full((n, m), self.slot_capacity)
        # GAP item j is the j-th provider in id order; after delta patches
        # the compiled rows are not id-ordered, so gather through the
        # active-row map (a no-op reindex on a dense compile).
        rows = cm.active_rows
        if n_virtual:
            cols = np.array(
                [cm.cloudlet_index[vc.cloudlet_node] for vc in self.virtual_cloudlets],
                dtype=np.int64,
            )
            if self.slot_pricing == "flat":
                # Eq. (9): (alpha_i + beta_i) + fixed, per slot column.
                costs[:, :n_virtual] = cm.coeff[cols][None, :] + cm.fixed[
                    np.ix_(rows, cols)
                ]
            else:
                # Marginal congestion increment of slot k (see the object
                # path above): (alpha_i + beta_i) * (k*g(k) - (k-1)*g(k-1)).
                marg = np.empty(n_virtual)
                for t, vc in enumerate(self.virtual_cloudlets):
                    k = vc.slot + 1
                    marg[t] = cm.coeff[cols[t]] * (
                        k * cm.g_at(k) - (k - 1) * cm.g_at(k - 1)
                    )
                costs[:, :n_virtual] = marg[None, :] + cm.fixed[np.ix_(rows, cols)]
        if self.allow_remote:
            costs[:, self.remote_bin] = cm.remote[rows]
        capacities = np.array(
            [vc.capacity for vc in self.virtual_cloudlets]
            + ([n * self.slot_capacity] if self.allow_remote else [])
        )
        return GAPInstance(costs=costs, weights=weights, capacities=capacities)

    def merge_assignment(self, gap_assignment: List[int]) -> Tuple[Dict[int, int], Set[int]]:
        """Step 4 of Algorithm 1: map items -> real cloudlets by collapsing
        each cloudlet's virtual cloudlets back onto it.

        Returns ``(placement, rejected)``; ``rejected`` holds the providers
        the GAP sent to the remote bin (empty without ``allow_remote``).
        """
        providers = self.market.providers
        if len(gap_assignment) != len(providers):
            raise ConfigurationError(
                f"GAP assignment covers {len(gap_assignment)} items, "
                f"market has {len(providers)} providers"
            )
        placement: Dict[int, int] = {}
        rejected: Set[int] = set()
        n_virtual = len(self.virtual_cloudlets)
        for j, bin_index in enumerate(gap_assignment):
            pid = providers[j].provider_id
            if self.allow_remote and bin_index >= n_virtual:
                rejected.add(pid)
            else:
                placement[pid] = self.virtual_cloudlets[bin_index].cloudlet_node
        return placement, rejected


__all__ = ["VirtualCloudlet", "VirtualCloudletSplit"]

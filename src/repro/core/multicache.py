"""Multi-replica service caching (extension).

Section II.E defines the strategy space as ``sigma_l in 2^|CL| \\ {0}`` —
*sets* of cloudlets — although the paper's algorithms only ever pick
singletons. This module takes the set-valued reading seriously: a provider
may cache several replicas of its service, each user cluster offloads to
its *nearest* replica, and every replica pays instantiation, consistency
updates and its cloudlet's congestion share.

The placement algorithm is a greedy marginal-gain heuristic: start from the
single-replica LCF solution and repeatedly add the (provider, cloudlet)
replica with the largest social-cost reduction while capacity admits it.
Adding replicas trades extra instantiation + update traffic against shorter
access paths, so it only pays for providers with a dispersed user base —
the quantity `examples/multi_replica.py` sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.core.assignment import Stopwatch
from repro.core.lcf import lcf
from repro.exceptions import CapacityError, ConfigurationError
from repro.market.market import ServiceMarket
from repro.market.service import ServiceProvider
from repro.utils.validation import CAPACITY_EPS

#: A multi-replica placement: provider id -> frozenset of cloudlet nodes.
ReplicaPlacement = Dict[int, FrozenSet[int]]


@dataclass
class MultiCacheAssignment:
    """Outcome of a multi-replica caching algorithm."""

    market: ServiceMarket
    placement: ReplicaPlacement
    rejected: FrozenSet[int] = frozenset()
    algorithm: str = ""
    runtime_s: float = 0.0
    info: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        provider_ids = {p.provider_id for p in self.market.providers}
        covered = set(self.placement) | set(self.rejected)
        if covered != provider_ids:
            raise ConfigurationError("placement+rejected must cover all providers")
        for pid, replicas in self.placement.items():
            if not replicas:
                raise ConfigurationError(f"provider {pid} has an empty replica set")
            for node in replicas:
                if not self.market.network.has_cloudlet(node):
                    raise ConfigurationError(f"no cloudlet at node {node}")

    @property
    def social_cost(self) -> float:
        return evaluate_social_cost(self.market, self.placement, self.rejected)

    @property
    def total_replicas(self) -> int:
        return sum(len(r) for r in self.placement.values())

    def replica_count(self, provider_id: int) -> int:
        return len(self.placement.get(provider_id, ()))


# --------------------------------------------------------------------- #
# Cost evaluation
# --------------------------------------------------------------------- #
def _replica_shares(
    market: ServiceMarket, provider: ServiceProvider, replicas: FrozenSet[int]
) -> Dict[int, float]:
    """Traffic share each replica serves: every user cluster routes to its
    nearest (hop-wise) replica; ties break towards the smaller node id."""
    shares: Dict[int, float] = {node: 0.0 for node in replicas}
    net = market.network
    for cluster_node, weight in provider.service.clusters:
        best = min(
            sorted(replicas),
            key=lambda node: (net.hop_count(cluster_node, node), node),
        )
        shares[best] += weight
    return shares


def _occupancy(placement: Mapping[int, FrozenSet[int]]) -> Dict[int, int]:
    """Cloudlet occupancy |sigma_i| counting each replica as one instance."""
    counts: Dict[int, int] = {}
    for replicas in placement.values():
        for node in replicas:
            counts[node] = counts.get(node, 0) + 1
    return counts


def provider_multi_cost(
    market: ServiceMarket,
    provider: ServiceProvider,
    replicas: FrozenSet[int],
    occupancy: Mapping[int, int],
) -> float:
    """The provider's cost with a replica set, at the given occupancies.

    Per replica: instantiation + the update/synchronisation traffic back to
    the original instance + the congestion share of its cloudlet. Access:
    each user cluster ships its traffic share to its nearest replica.
    Processing is charged once (the work happens wherever the requests go).
    """
    if not replicas:
        raise ConfigurationError("replica set must be non-empty")
    model = market.cost_model
    net = market.network
    svc = provider.service

    total = model.instantiation_cost(provider)  # VM+processing of the traffic
    # Extra VMs: each additional replica pays the instantiation base again.
    total += (len(replicas) - 1) * svc.instantiation_cost
    shares = _replica_shares(market, provider, replicas)
    for node in replicas:
        cloudlet = net.cloudlet_at(node)
        total += model.update_cost(provider, cloudlet)
        total += model.congestion_cost(cloudlet, occupancy[node])
    for cluster_node, weight in svc.clusters:
        nearest = min(
            sorted(replicas),
            key=lambda node: (net.hop_count(cluster_node, node), node),
        )
        hops = net.hop_count(cluster_node, nearest)
        total += model.pricing.transmission_cost(svc.request_traffic_gb * weight, hops)
    return total


def evaluate_social_cost(
    market: ServiceMarket,
    placement: Mapping[int, FrozenSet[int]],
    rejected: FrozenSet[int] = frozenset(),
) -> float:
    """Eq. (6) generalised to replica sets, plus remote costs."""
    occupancy = _occupancy(placement)
    total = 0.0
    for pid, replicas in placement.items():
        total += provider_multi_cost(
            market, market.provider(pid), replicas, occupancy
        )
    for pid in rejected:
        total += market.cost_model.remote_cost(market.provider(pid))
    return total


# --------------------------------------------------------------------- #
# Capacity accounting (replicas consume their served traffic share)
# --------------------------------------------------------------------- #
def _loads(
    market: ServiceMarket, placement: Mapping[int, FrozenSet[int]]
) -> Dict[int, List[float]]:
    loads: Dict[int, List[float]] = {
        cl.node_id: [0.0, 0.0] for cl in market.network.cloudlets
    }
    for pid, replicas in placement.items():
        provider = market.provider(pid)
        shares = _replica_shares(market, provider, replicas)
        for node, share in shares.items():
            loads[node][0] += provider.compute_demand * share
            loads[node][1] += provider.bandwidth_demand * share
    return loads


def check_multi_capacities(
    market: ServiceMarket, placement: Mapping[int, FrozenSet[int]]
) -> None:
    """Raise :class:`CapacityError` when any cloudlet is overloaded."""
    for node, (cpu, bw) in _loads(market, placement).items():
        cl = market.network.cloudlet_at(node)
        if cpu > cl.compute_capacity + CAPACITY_EPS:
            raise CapacityError(f"{cl.name}: compute {cpu:.2f} > {cl.compute_capacity}")
        if bw > cl.bandwidth_capacity + CAPACITY_EPS:
            raise CapacityError(
                f"{cl.name}: bandwidth {bw:.2f} > {cl.bandwidth_capacity}"
            )


# --------------------------------------------------------------------- #
# The greedy marginal-gain algorithm
# --------------------------------------------------------------------- #
def greedy_multicache(
    market: ServiceMarket,
    xi: float = 0.7,
    max_replicas: int = 3,
    max_additions: Optional[int] = None,
    min_gain: float = 1e-6,
) -> MultiCacheAssignment:
    """Greedy replica addition on top of the single-replica LCF solution.

    Each step evaluates every feasible (provider, cloudlet) replica
    addition and applies the one with the largest social-cost reduction;
    stops when no addition helps by more than ``min_gain``, every provider
    holds ``max_replicas``, or ``max_additions`` steps were taken.
    """
    if max_replicas < 1:
        raise ConfigurationError(f"max_replicas must be >= 1, got {max_replicas}")

    with Stopwatch() as watch:
        base = lcf(market, xi=xi, allow_remote=True).assignment
        placement: ReplicaPlacement = {
            pid: frozenset({node}) for pid, node in base.placement.items()
        }
        rejected = frozenset(base.rejected)

        additions = 0
        budget = max_additions if max_additions is not None else 10**9
        current_cost = evaluate_social_cost(market, placement, rejected)
        while additions < budget:
            occupancy = _occupancy(placement)
            loads = _loads(market, placement)
            best_gain = min_gain
            best_move: Optional[Tuple[int, int]] = None
            for pid, replicas in placement.items():
                if len(replicas) >= max_replicas:
                    continue
                provider = market.provider(pid)
                if len(provider.service.clusters) <= len(replicas):
                    # no cluster left that could be served closer.
                    continue
                old_cost = provider_multi_cost(market, provider, replicas, occupancy)
                for cl in market.network.cloudlets:
                    node = cl.node_id
                    if node in replicas:
                        continue
                    # Conservative feasibility: the new replica may attract
                    # at most the provider's full demand.
                    if (
                        loads[node][0] + provider.compute_demand
                        > cl.compute_capacity + CAPACITY_EPS
                        or loads[node][1] + provider.bandwidth_demand
                        > cl.bandwidth_capacity + CAPACITY_EPS
                    ):
                        continue
                    new_replicas = replicas | {node}
                    occupancy[node] = occupancy.get(node, 0) + 1
                    new_cost = provider_multi_cost(
                        market, provider, new_replicas, occupancy
                    )
                    # Externality: the extra instance congests co-located
                    # providers too.
                    extern = sum(
                        market.cost_model.congestion_cost(cl, occupancy[node])
                        - market.cost_model.congestion_cost(cl, occupancy[node] - 1)
                        for _ in range(occupancy[node] - 1)
                    )
                    occupancy[node] -= 1
                    if occupancy[node] == 0:
                        del occupancy[node]
                    gain = old_cost - new_cost - extern
                    if gain > best_gain:
                        best_gain = gain
                        best_move = (pid, node)
            if best_move is None:
                break
            pid, node = best_move
            placement[pid] = placement[pid] | {node}
            current_cost -= best_gain
            additions += 1

    final_cost = evaluate_social_cost(market, placement, rejected)
    return MultiCacheAssignment(
        market=market,
        placement=placement,
        rejected=rejected,
        algorithm=f"GreedyMultiCache[max={max_replicas}]",
        runtime_s=watch.elapsed,
        info={
            "base_social_cost": base.social_cost,
            "additions": additions,
            "social_cost": final_cost,
        },
    )


__all__ = [
    "ReplicaPlacement",
    "MultiCacheAssignment",
    "provider_multi_cost",
    "evaluate_social_cost",
    "check_multi_capacities",
    "greedy_multicache",
]

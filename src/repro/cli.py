"""Command-line interface: regenerate any paper figure from a shell.

Usage::

    python -m repro fig2 --scale quick
    python -m repro fig3 --scale paper --metrics social_cost runtime_s
    python -m repro fig2 --workers 4
    python -m repro fig6 --csv out/
    python -m repro poa
    python -m repro outages --mttf 4 --mttr 2 --policy hysteresis
    python -m repro lint --format sarif --output reprolint.sarif
    python -m repro all --scale quick

``--scale`` picks the experiment configuration: ``quick`` (seconds),
``bench`` (the benchmark harness scale, ~a minute) or ``paper`` (the full
Section IV.A scale). ``--workers N`` fans each sweep's (x, repetition)
grid over ``N`` worker processes (``0`` = one per CPU) with bit-identical
results; ``--engine`` switches the best-response engine between the
compiled incremental implementation, the batch-vectorized kernel and the
naive reference loops (all bit-identical in outcome).
``--csv DIR`` additionally writes each figure's rows as CSV files for
external plotting.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro import __version__
from repro.exceptions import ConfigurationError
from repro.experiments.figures import (
    ablation_congestion_models,
    ablation_gap_solvers,
    ablation_selection_strategies,
    fig2_network_size,
    fig3_selfish_fraction,
    fig5_testbed,
    fig6_testbed_parameters,
    fig7_max_demands,
    poa_study,
)
from repro.experiments.harness import SweepResult
from repro.experiments.report import METRIC_LABELS, render_sweep, sweep_to_csv
from repro.experiments.settings import PAPER, QUICK, ExperimentConfig
from repro.game.best_response import ENGINES
from repro.utils.ascii_plot import line_chart
from repro.utils.validation import CAPACITY_EPS

#: The benchmark-harness scale (mirrors benchmarks/conftest.py).
BENCH = ExperimentConfig(
    network_sizes=(50, 100, 150, 200, 250),
    default_size=150,
    n_providers=60,
    testbed_providers=40,
    xi_sweep=(0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
    repetitions=3,
    provider_sweep=(20, 40, 60, 80),
)

_SCALES = {"quick": QUICK, "bench": BENCH, "paper": PAPER}
_DEFAULT_METRICS = ("social_cost", "runtime_s")


def _emit_sweeps(
    sweeps: Sequence[SweepResult],
    metrics: Sequence[str],
    csv_dir: Optional[Path],
    chart: bool = False,
) -> None:
    for result in sweeps:
        print(render_sweep(result, metrics=metrics))
        print()
        if chart:
            series = {
                alg: result.series(alg, "social_cost")
                for alg in result.algorithms
            }
            print(line_chart(
                series,
                x_values=result.x_values,
                title=f"[{result.name}] social cost ($)",
                height=10,
                width=max(40, 4 * len(result.x_values)),
            ))
            print()
        if csv_dir is not None:
            path = csv_dir / f"{result.name}.csv"
            path.write_text(sweep_to_csv(result))
            print(f"wrote {path}")


def _run_figure(name: str, config: ExperimentConfig) -> List[SweepResult]:
    if name == "fig2":
        return [fig2_network_size(config)]
    if name == "fig3":
        return [fig3_selfish_fraction(config)]
    if name == "fig5":
        return [fig5_testbed(config)]
    if name == "fig6":
        return list(fig6_testbed_parameters(config).values())
    if name == "fig7":
        return list(fig7_max_demands(config).values())
    if name == "ablations":
        return [
            ablation_selection_strategies(config),
            ablation_congestion_models(config),
            ablation_gap_solvers(config),
        ]
    raise ValueError(f"unknown figure {name!r}")


_FIGURES = ("fig2", "fig3", "fig5", "fig6", "fig7", "ablations")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the ICDCS'20 service-caching evaluation.",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    for name in _FIGURES + ("all",):
        p = sub.add_parser(name, help=f"run {name}")
        p.add_argument(
            "--scale", choices=sorted(_SCALES), default="quick",
            help="experiment scale (default: quick)",
        )
        p.add_argument(
            "--metrics", nargs="+", choices=sorted(METRIC_LABELS),
            default=list(_DEFAULT_METRICS),
            help="metrics to tabulate",
        )
        p.add_argument(
            "--csv", type=Path, default=None, metavar="DIR",
            help="also write each sweep as CSV into DIR",
        )
        p.add_argument(
            "--chart", action="store_true",
            help="also draw an ASCII chart of the social-cost series",
        )
        p.add_argument(
            "--workers", type=int, default=0, metavar="N",
            help="sweep worker processes: 0 = one per CPU (default), "
            "1 = serial, N = that many (results identical at any value)",
        )
        p.add_argument(
            "--engine", choices=ENGINES, default="incremental",
            help="best-response engine (default: incremental)",
        )

    poa = sub.add_parser("poa", help="empirical bounds study (A1)")
    poa.add_argument("--providers", type=int, default=8)
    poa.add_argument("--repetitions", type=int, default=5)
    poa.add_argument("--seed", type=int, default=11)

    out = sub.add_parser(
        "outages",
        help="outage-laden dynamic market run (availability ledger)",
    )
    out.add_argument("--nodes", type=int, default=100, metavar="N",
                     help="network size (default 100)")
    out.add_argument("--epochs", type=int, default=20,
                     help="epochs to simulate (default 20)")
    out.add_argument("--mttf", type=float, default=5.0,
                     help="mean epochs between cloudlet failures (default 5)")
    out.add_argument("--mttr", type=float, default=2.0,
                     help="mean epochs to repair a cloudlet (default 2)")
    out.add_argument("--policy", choices=("failover", "replan", "hysteresis"),
                     default="failover",
                     help="recovery policy for displaced providers")
    out.add_argument("--correlated", action="store_true",
                     help="regional outages (neighbourhoods fail together)")
    out.add_argument("--seed", type=int, default=1)

    shard = sub.add_parser(
        "shard",
        help="region-sharded equilibrium demo (partitioned dynamics)",
    )
    shard.add_argument("--nodes", type=int, default=200, metavar="N",
                       help="network size (default 200)")
    shard.add_argument("--providers", type=int, default=300,
                       help="provider population (default 300)")
    shard.add_argument("--shards", type=int, default=None, metavar="K",
                       help="shard count (default: one per region)")
    shard.add_argument("--epochs", type=int, default=5,
                       help="churn epochs to simulate (default 5)")
    shard.add_argument("--boundary-rounds", type=int, default=8,
                       help="interior/boundary reconciliation cap (default 8)")
    shard.add_argument("--workers", type=int, default=1,
                       help="shard worker processes (default 1 = serial)")
    shard.add_argument("--spool", metavar="DIR", default=None,
                       help="shared spool directory: settle shard interiors "
                       "on the `repro host` agents serving DIR instead of a "
                       "local pool (mutually exclusive with --workers)")
    shard.add_argument("--latency-budget", type=float, default=3.0,
                       metavar="MS",
                       help="per-provider latency budget in ms — what makes "
                       "most providers interior to one region (default 3.0)")
    shard.add_argument("--seed", type=int, default=3)

    host = sub.add_parser(
        "host",
        help="serve a shared spool directory as a RemoteTransport host agent",
    )
    host.add_argument("spool", metavar="DIR",
                      help="the shared spool directory to serve (created if "
                      "missing); every agent and the dispatching transport "
                      "must use the same path")
    host.add_argument("--host-id", default=None, metavar="ID",
                      help="stable agent identity (default: "
                      "h<nodename>-<pid>); restarting with the same id "
                      "requeues the previous incarnation's claimed tasks")
    host.add_argument("--lease-s", type=float, default=5.0, metavar="S",
                      help="heartbeat lease duration in seconds (default 5); "
                      "must exceed the longest legitimate task")
    host.add_argument("--poll-interval-s", type=float, default=0.05,
                      metavar="S",
                      help="spool scan cadence in seconds (default 0.05)")
    host.add_argument("--idle-exit-s", type=float, default=None, metavar="S",
                      help="exit after S seconds without work "
                      "(default: serve forever)")
    host.add_argument("--max-tasks", type=int, default=None, metavar="N",
                      help="exit after executing N tasks (default: unlimited)")
    host.add_argument("--slots", type=int, default=1, metavar="N",
                      help="advertised parallelism of this agent (default 1)")

    lint = sub.add_parser(
        "lint",
        help="run the reprolint static analyzer (R1-R10) over the tree",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    lint.add_argument("--select", metavar="RULES", default=None,
                      help="comma-separated rule ids (e.g. R8,R9)")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text", dest="fmt",
                      help="output format (default: text)")
    lint.add_argument("--output", metavar="FILE", default=None,
                      help="write the report to FILE instead of stdout")
    return parser


def _run_lint(args) -> int:
    """Delegate to the reprolint CLI (which lives in ``tools/``, outside
    ``src``, so library code can never import analyzer internals)."""
    repo_root = Path(__file__).resolve().parent.parent.parent
    tools_dir = repo_root / "tools"
    if str(tools_dir) not in sys.path and (tools_dir / "reprolint").is_dir():
        sys.path.insert(0, str(tools_dir))
    try:
        from reprolint.cli import main as lint_main
    except ImportError as exc:  # pragma: no cover - broken checkout only
        print(f"error: reprolint is not importable ({exc})", file=sys.stderr)
        return 2
    argv: List[str] = list(args.paths)
    if args.select:
        argv += ["--select", args.select]
    argv += ["--format", args.fmt]
    if args.output:
        argv += ["--output", args.output]
    return lint_main(argv)


def _run_outages(args) -> int:
    from repro.dynamics import (
        CorrelatedOutageTrace,
        DynamicMarketSimulation,
        IndependentOutageTrace,
        PopulationProcess,
    )
    from repro.network.generators import random_mec_network

    network = random_mec_network(args.nodes, rng=args.seed)
    population = PopulationProcess(
        network, arrival_rate=5.0, mean_lifetime=8.0,
        rng=args.seed + 1, initial_population=40,
    )
    trace_cls = (
        CorrelatedOutageTrace if args.correlated else IndependentOutageTrace
    )
    trace = trace_cls(network, mttf=args.mttf, mttr=args.mttr, rng=args.seed + 2)
    sim = DynamicMarketSimulation(
        network, population, policy="incremental",
        outages=trace, recovery=args.policy,
    )
    summary = sim.run(args.epochs)
    print(f"epochs:                {len(summary.epochs)}")
    print(f"cloudlet downtime:     {summary.cloudlet_downtime} cloudlet-epochs")
    print(f"displaced instances:   {summary.total_displaced}")
    print(f"SLA violations:        {summary.total_sla_violations}")
    print(f"provider downtime:     {summary.provider_downtime} provider-epochs")
    print(f"mean time to recover:  {summary.mean_time_to_recover:.2f} epochs")
    print(f"replans triggered:     {summary.total_replans}")
    print(f"total cost:            {summary.total_cost:.1f}")
    return 0


def _run_shard(args) -> int:
    import time

    import numpy as np

    from repro.dynamics import DynamicMarketSimulation, PopulationProcess
    from repro.game.batch import batch_best_response
    from repro.game.partitioned import (
        game_from_compiled,
        partitioned_best_response,
    )
    from repro.market.shard import classify_providers, partition_market
    from repro.market.workload import generate_market
    from repro.network.generators import random_mec_network

    network = random_mec_network(args.nodes, rng=args.seed)
    market = generate_market(
        network, args.providers, rng=args.seed + 1,
        latency_budget_ms=args.latency_budget,
    )
    cm = market.compile()
    partition = partition_market(market, args.shards)
    classification = classify_providers(cm, partition)
    interior = sum(len(v) for v in classification.interior.values())
    print(f"partition:             {partition.n_shards} shards over "
          f"{len(partition.shard_of_cloudlet)} cloudlets")
    print(f"providers:             {interior} interior, "
          f"{len(classification.boundary)} boundary, "
          f"{len(classification.unreachable)} unreachable")

    # Greedy start: cheapest feasible cloudlet at posted occupancy.
    occ = np.zeros(cm.n_cloudlets, dtype=np.int64)
    loads = np.zeros_like(cm.capacity)
    start: Dict[int, int] = {}
    for pid in cm.provider_ids:
        row = cm.provider_index[pid]
        fits = np.isfinite(cm.fixed[row]) & np.all(
            loads + cm.demand[row] <= cm.capacity + CAPACITY_EPS, axis=1
        )
        if not fits.any():
            continue
        cost = cm.shared[
            np.arange(cm.n_cloudlets), np.minimum(occ + 1, len(cm.g) - 1)
        ] + cm.fixed[row]
        cost[~fits] = np.inf
        j = int(np.argmin(cost))
        start[pid] = cm.cloudlet_nodes[j]
        occ[j] += 1
        loads[j] += cm.demand[row]

    t0 = time.perf_counter()
    game = game_from_compiled(cm, players=sorted(start))
    g_profile, _, _, g_moves, _, _ = batch_best_response(
        game, start, max_rounds=1000, compiled=game.compile()
    )
    t_global = time.perf_counter() - t0
    t0 = time.perf_counter()
    result = partitioned_best_response(
        market, start, partition=partition, classification=classification,
        boundary_rounds=args.boundary_rounds,
    )
    t_shard = time.perf_counter() - t0
    gap = abs(result.social_cost - cm.social_cost(g_profile)) / max(
        abs(cm.social_cost(g_profile)), 1e-12
    )
    print(f"global settle:         {g_moves} moves in {t_global*1e3:.1f} ms")
    print(f"sharded settle:        {result.moves} moves in {t_shard*1e3:.1f} ms "
          f"({result.rounds} reconciliation rounds)")
    print(f"certified equilibrium: {result.certified}")
    print(f"social-cost gap:       {gap:.2e} relative")

    population = PopulationProcess(
        network, arrival_rate=max(2.0, args.providers / 20),
        mean_lifetime=8.0, rng=args.seed + 2,
        initial_population=args.providers,
    )
    dispatch = (
        {"shard_spool": args.spool}
        if args.spool is not None
        else {"shard_workers": args.workers}
    )
    with DynamicMarketSimulation(
        network, population, policy="incremental",
        sharding="region", n_shards=args.shards,
        boundary_rounds=args.boundary_rounds,
        latency_budget_ms=args.latency_budget,
        **dispatch,
    ) as sim:
        summary = sim.run(args.epochs)
    certified = sum(
        1 for e in summary.epochs if e.equilibrium_certified
    )
    print(f"dynamic run:           {len(summary.epochs)} epochs, "
          f"{summary.total_settle_moves} settle moves, "
          f"{certified}/{len(summary.epochs)} epochs certified")
    print(f"total cost:            {summary.total_cost:.1f}")
    return 0


def _run_host(args) -> int:
    from repro.runtime import run_host_agent

    try:
        stats = run_host_agent(
            args.spool,
            host_id=args.host_id,
            lease_s=args.lease_s,
            poll_interval_s=args.poll_interval_s,
            idle_exit_s=args.idle_exit_s,
            max_tasks=args.max_tasks,
            slots=args.slots,
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"host {stats.host_id}: executed {stats.executed} task(s) "
        f"({stats.failed} failed), requeued {stats.requeued_on_start} on "
        f"start, exit: {stats.exit_reason or 'stopped'}"
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "poa":
        out = poa_study(
            n_providers=args.providers,
            repetitions=args.repetitions,
            seed=args.seed,
        )
        width = max(len(k) for k in out)
        for key, value in out.items():
            print(f"{key:<{width}}  {value:.4g}")
        return 0

    if args.command == "outages":
        return _run_outages(args)

    if args.command == "shard":
        try:
            return _run_shard(args)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.command == "host":
        return _run_host(args)

    if args.command == "lint":
        return _run_lint(args)

    try:
        config = _SCALES[args.scale].with_(workers=args.workers, engine=args.engine)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.csv is not None:
        args.csv.mkdir(parents=True, exist_ok=True)

    figures = _FIGURES if args.command == "all" else (args.command,)
    for name in figures:
        sweeps = _run_figure(name, config)
        _emit_sweeps(sweeps, args.metrics, args.csv, chart=args.chart)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

"""Small argument-validation helpers used across the library.

These raise :class:`repro.exceptions.ConfigurationError` with a uniform
message format, so API misuse surfaces as a library error rather than a bare
``ValueError`` deep inside numpy.
"""

from __future__ import annotations

import math
from typing import Final

from repro.exceptions import ConfigurationError

#: The library-wide float slack for capacity-feasibility comparisons.
#: Every check of the form ``load + demand <= capacity`` uses this same
#: tolerance (game feasibility, greedy placement, the Appro repair pass,
#: assignment validation), so a demand that exactly equals the residual
#: capacity is feasible everywhere or nowhere — never only in some layers.
#: Enforced mechanically by reprolint rule R2 (see docs/static_analysis.md).
CAPACITY_EPS: Final[float] = 1e-9


def check_positive(value: float, name: str) -> float:
    """Require ``value > 0`` (and finite); return it for chaining."""
    if not math.isfinite(value) or value <= 0:
        raise ConfigurationError(f"{name} must be a positive finite number, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Require ``value >= 0`` (and finite); return it for chaining."""
    if not math.isfinite(value) or value < 0:
        raise ConfigurationError(f"{name} must be non-negative and finite, got {value!r}")
    return value


def check_fraction(value: float, name: str) -> float:
    """Require ``0 <= value <= 1``; return it for chaining."""
    if not math.isfinite(value) or not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Alias of :func:`check_fraction` kept for call-site readability."""
    return check_fraction(value, name)


def check_int_at_least(value: int, minimum: int, name: str) -> int:
    """Require an integer ``value >= minimum``; return it for chaining."""
    if int(value) != value:
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    if value < minimum:
        raise ConfigurationError(f"{name} must be >= {minimum}, got {value!r}")
    return int(value)


__all__ = [
    "CAPACITY_EPS",
    "check_positive",
    "check_non_negative",
    "check_fraction",
    "check_probability",
    "check_int_at_least",
]

"""Always-on runtime contracts for the paper's invariants.

The test suite checks these properties statistically; this module turns
them into *contracts* that fire on every call when the environment flag
``REPRO_DEBUG_INVARIANTS=1`` is set:

* **capacity feasibility** — no resource/cloudlet ends up loaded beyond its
  capacity plus the shared ``CAPACITY_EPS`` slack (the Eq. 7 split and the
  repair pass both promise this);
* **potential descent** — best-response dynamics may never let the
  Rosenthal potential rise between rounds (Lemma 3), and the incremental
  engine's per-move accumulator must agree with a from-scratch
  recomputation (the delta updates are exact, not approximate).

With the flag unset (the default) the decorators cost one dict lookup per
call, so they stay applied in production code paths.

The checkers are duck-typed on purpose: a *game* subject exposes
``capacitated``/``loads``/``capacity_of`` (:class:`SingletonCongestionGame`),
a *market* subject exposes ``network``/``provider``
(:class:`ServiceMarket`).  Keeping this module free of game/market imports
avoids dependency cycles — contracts sit below every layer they guard.
"""

from __future__ import annotations

import functools
import os
from typing import Any, Callable, Mapping, Optional, Sequence, TypeVar

import numpy as np

from repro.exceptions import InvariantViolation
from repro.utils.validation import CAPACITY_EPS

#: Environment variable enabling the contracts.
ENV_FLAG = "REPRO_DEBUG_INVARIANTS"

#: Environment variable enabling the compiled-table write sanitizer: with
#: ``REPRO_SANITIZE=1`` every ``CompiledMarket`` freezes its numpy tables
#: (``flags.writeable = False``) outside the internal writable-context the
#: build/patch paths use, so a stray in-place write raises *at the write
#: site* instead of corrupting every holder of the shared arrays.  This is
#: the runtime witness for reprolint rule R9 (array-escape).
SANITIZE_ENV_FLAG = "REPRO_SANITIZE"

#: Relative slack allowed for an apparent potential *increase* between
#: trace samples: covers float error of from-scratch recomputation without
#: masking a genuine ascent (every real improving move descends by at least
#: the engines' 1e-9 improvement threshold).
POTENTIAL_SLACK = 1e-7

#: The engines' strict-improvement threshold, mirrored here (contracts sit
#: below the game layer, so importing ``repro.game.engine.IMPROVEMENT_EPS``
#: would create a cycle). A committed move whose recorded delta does not
#: clear this bound was never a legal best response.
COMMIT_IMPROVEMENT_EPS = 1e-9

F = TypeVar("F", bound=Callable[..., Any])

#: Extractor signature: ``(args, kwargs, result) -> value``.
Extractor = Callable[[tuple, dict, Any], Any]


def invariants_active() -> bool:
    """Whether contract checking is switched on (checked per call, so tests
    can flip the flag without re-importing)."""
    return os.environ.get(ENV_FLAG, "") == "1"


def sanitize_active() -> bool:
    """Whether the compiled-table write sanitizer is armed (checked at
    ``CompiledMarket`` construction/unpickling, so tests can flip the flag
    per-instance without re-importing)."""
    return os.environ.get(SANITIZE_ENV_FLAG, "") == "1"


# --------------------------------------------------------------------- #
# Checkers (callable directly; the decorators wrap these)
# --------------------------------------------------------------------- #
def check_profile_capacity(game: Any, profile: Mapping[Any, Any]) -> None:
    """Every resource's load within capacity + ``CAPACITY_EPS`` (game form)."""
    if not getattr(game, "capacitated", False):
        return
    loads = game.loads(profile)
    for resource, load in loads.items():
        capacity = np.asarray(game.capacity_of(resource), dtype=float)
        excess = np.asarray(load, dtype=float) - capacity
        if np.any(excess > CAPACITY_EPS):
            raise InvariantViolation(
                f"capacity invariant violated on resource {resource!r}: "
                f"load {np.asarray(load).tolist()} exceeds capacity "
                f"{capacity.tolist()} beyond CAPACITY_EPS={CAPACITY_EPS}"
            )


def check_placement_capacity(market: Any, placement: Mapping[int, int]) -> None:
    """Every cloudlet's compute/bandwidth load within capacity (market form)."""
    loads = {cl.node_id: [0.0, 0.0] for cl in market.network.cloudlets}
    for pid, node in placement.items():
        provider = market.provider(pid)
        loads[node][0] += provider.compute_demand
        loads[node][1] += provider.bandwidth_demand
    for cl in market.network.cloudlets:
        compute, bandwidth = loads[cl.node_id]
        if (
            compute > cl.compute_capacity + CAPACITY_EPS
            or bandwidth > cl.bandwidth_capacity + CAPACITY_EPS
        ):
            raise InvariantViolation(
                f"capacity invariant violated on cloudlet {cl.node_id}: "
                f"load ({compute}, {bandwidth}) exceeds capacity "
                f"({cl.compute_capacity}, {cl.bandwidth_capacity}) beyond "
                f"CAPACITY_EPS={CAPACITY_EPS}"
            )


def check_capacity(subject: Any, profile: Mapping[Any, Any]) -> None:
    """Dispatch on the subject's shape: game-style or market-style."""
    if hasattr(subject, "capacitated") and hasattr(subject, "loads"):
        check_profile_capacity(subject, profile)
    elif hasattr(subject, "network") and hasattr(subject, "provider"):
        check_placement_capacity(subject, profile)
    else:
        raise InvariantViolation(
            f"cannot check capacity invariant: subject {type(subject).__name__} "
            f"is neither a game (capacitated/loads) nor a market (network/provider)"
        )


def check_potential_descends(trace: Sequence[float]) -> None:
    """The Rosenthal potential never rises between consecutive samples."""
    for k in range(1, len(trace)):
        prev, cur = trace[k - 1], trace[k]
        if cur > prev + POTENTIAL_SLACK * max(1.0, abs(prev)):
            raise InvariantViolation(
                f"potential ascent between rounds {k - 1} and {k}: "
                f"{prev!r} -> {cur!r} (exact-potential descent violated)"
            )


def check_no_conflicting_commits(
    game: Any,
    start_profile: Mapping[Any, Any],
    commit_rounds: Sequence[Sequence[tuple]],
) -> None:
    """The Gauss-Seidel commit phase never committed conflicting moves.

    ``commit_rounds`` holds, per committed round, the ordered
    ``(player, old_resource, new_resource, cost_delta)`` records the batch
    kernel applied. Replaying them from ``start_profile`` checks that:

    * no player commits more than one move per round (each is scanned once
      in the round-robin priority order);
    * every commit's source matches the replayed live profile — a mismatch
      means a stale Jacobi proposal was committed without re-validation;
    * every commit strictly improved at commit time (the recorded delta
      clears :data:`COMMIT_IMPROVEMENT_EPS`);
    * capacity stays feasible after **every** commit, not just at round
      end — two Jacobi proposals that individually fit but jointly
      overload a resource must have been re-resolved, never co-committed.
    """
    profile = dict(start_profile)
    capacitated = getattr(game, "capacitated", False)
    loads = game.loads(profile) if capacitated else {}
    for round_no, commits in enumerate(commit_rounds, start=1):
        seen = set()
        for player, old, new, delta in commits:
            if player in seen:
                raise InvariantViolation(
                    f"conflicting commits in round {round_no}: player "
                    f"{player!r} committed more than one move"
                )
            seen.add(player)
            if profile.get(player) != old:
                raise InvariantViolation(
                    f"conflicting commits in round {round_no}: player "
                    f"{player!r} moved from {old!r} but the live profile "
                    f"has it on {profile.get(player)!r} — a stale Jacobi "
                    f"proposal was committed without re-validation"
                )
            if old == new:
                raise InvariantViolation(
                    f"round {round_no}: player {player!r} committed a "
                    f"no-op move to {new!r}"
                )
            if not delta < -COMMIT_IMPROVEMENT_EPS:
                raise InvariantViolation(
                    f"round {round_no}: player {player!r} committed a "
                    f"non-improving move ({old!r} -> {new!r}, "
                    f"delta={delta!r})"
                )
            profile[player] = new
            if capacitated:
                d_old = np.asarray(game.demand_of(player, old), dtype=float)
                d_new = np.asarray(game.demand_of(player, new), dtype=float)
                loads[old] = loads[old] - d_old
                loads[new] = loads.get(new, np.zeros_like(d_new)) + d_new
                capacity = np.asarray(game.capacity_of(new), dtype=float)
                if np.any(loads[new] - capacity > CAPACITY_EPS):
                    raise InvariantViolation(
                        f"conflicting commits in round {round_no}: moving "
                        f"{player!r} to {new!r} overloads it (load "
                        f"{loads[new].tolist()} > capacity "
                        f"{capacity.tolist()} beyond "
                        f"CAPACITY_EPS={CAPACITY_EPS})"
                    )


def check_shard_ownership(
    partition: Any, classification: Any, placement: Mapping[int, int]
) -> None:
    """Shard-ownership invariant for a partitioned equilibrium.

    Every placed cloudlet must belong to the partition, and every
    *interior* provider must sit on a cloudlet of its single feasible
    shard — an interior provider caching across a shard boundary means
    either the classification or the per-shard settling leaked. Boundary
    and unclassified (e.g. newly arrived) providers may sit anywhere.
    Duck-typed like the capacity checkers: ``partition`` exposes
    ``shard_of_cloudlet``, ``classification`` exposes ``interior_shard``.
    """
    shard_of_cloudlet = partition.shard_of_cloudlet
    interior_shard = classification.interior_shard
    for pid, node in placement.items():
        if node not in shard_of_cloudlet:
            raise InvariantViolation(
                f"shard ownership violated: provider {pid} placed on node "
                f"{node}, which belongs to no shard of the partition"
            )
        home = interior_shard.get(pid)
        if home is not None and shard_of_cloudlet[node] != home:
            raise InvariantViolation(
                f"shard ownership violated: interior provider {pid} of "
                f"shard {home} is cached on node {node} of shard "
                f"{shard_of_cloudlet[node]}"
            )


def check_potential_accumulator(game: Any, profile: Mapping[Any, Any], phi: float) -> None:
    """The engine's delta-maintained potential matches a full recomputation."""
    recomputed = game.potential(profile)
    if abs(phi - recomputed) > POTENTIAL_SLACK * max(1.0, abs(recomputed)):
        raise InvariantViolation(
            f"potential accumulator drifted: maintained {phi!r}, "
            f"recomputed {recomputed!r} — a per-move delta update is wrong"
        )


# --------------------------------------------------------------------- #
# Decorators
# --------------------------------------------------------------------- #
def _first_arg(args: tuple, kwargs: dict, result: Any) -> Any:
    return args[0] if args else None


def _profile_of(args: tuple, kwargs: dict, result: Any) -> Any:
    if hasattr(result, "profile"):
        return result.profile
    if hasattr(result, "placement"):
        return result.placement
    if isinstance(result, tuple):
        return result[0]
    return result


def _trace_of(args: tuple, kwargs: dict, result: Any) -> Any:
    if hasattr(result, "potential_trace"):
        return result.potential_trace
    if isinstance(result, tuple):
        return result[4]
    return result


def invariant_capacity_feasible(
    get_subject: Extractor = _first_arg,
    get_profile: Extractor = _profile_of,
) -> Callable[[F], F]:
    """Post-condition: the returned profile/placement is capacity-feasible.

    ``get_subject`` extracts the game or market to check against (default:
    first positional argument); ``get_profile`` extracts the profile from
    the return value (default: ``.profile`` / ``.placement`` attribute, or
    the first element of a tuple result).
    """

    def decorate(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            result = fn(*args, **kwargs)
            if invariants_active():
                check_capacity(
                    get_subject(args, kwargs, result),
                    get_profile(args, kwargs, result),
                )
            return result

        return wrapper  # type: ignore[return-value]

    return decorate


def _second_arg(args: tuple, kwargs: dict, result: Any) -> Any:
    return args[1] if len(args) > 1 else None


def _third_arg(args: tuple, kwargs: dict, result: Any) -> Any:
    return args[2] if len(args) > 2 else None


def invariant_shard_ownership(
    get_partition: Extractor = _second_arg,
    get_classification: Extractor = _third_arg,
    get_profile: Extractor = _profile_of,
) -> Callable[[F], F]:
    """Post-condition: the returned placement respects shard ownership
    (see :func:`check_shard_ownership`).

    ``get_partition``/``get_classification`` extract the
    ``MarketPartition`` and ``ShardClassification`` (default: second and
    third positional arguments); ``get_profile`` extracts the placement
    from the return value.
    """

    def decorate(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            result = fn(*args, **kwargs)
            if invariants_active():
                check_shard_ownership(
                    get_partition(args, kwargs, result),
                    get_classification(args, kwargs, result),
                    get_profile(args, kwargs, result),
                )
            return result

        return wrapper  # type: ignore[return-value]

    return decorate


def _commit_rounds_of(args: tuple, kwargs: dict, result: Any) -> Any:
    if hasattr(result, "commit_rounds"):
        return result.commit_rounds
    if isinstance(result, tuple):
        return result[-1]
    return result


def invariant_no_conflicting_commits(
    get_subject: Extractor = _first_arg,
    get_start: Extractor = _second_arg,
    get_commits: Extractor = _commit_rounds_of,
) -> Callable[[F], F]:
    """Post-condition for a Jacobi-propose/Gauss-Seidel-commit round loop:
    the per-round commit lists replay conflict-free from the start profile
    (see :func:`check_no_conflicting_commits`).

    ``get_subject`` extracts the game (default: first positional argument),
    ``get_start`` the starting profile (default: second positional
    argument) and ``get_commits`` the per-round commit lists (default: a
    ``commit_rounds`` attribute, or the last element of a tuple result).
    """

    def decorate(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            result = fn(*args, **kwargs)
            if invariants_active():
                commits = get_commits(args, kwargs, result)
                if commits is not None:
                    check_no_conflicting_commits(
                        get_subject(args, kwargs, result),
                        get_start(args, kwargs, result),
                        commits,
                    )
            return result

        return wrapper  # type: ignore[return-value]

    return decorate


def invariant_potential_descends(
    get_trace: Extractor = _trace_of,
) -> Callable[[F], F]:
    """Post-condition: the returned potential trace is non-increasing."""

    def decorate(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            result = fn(*args, **kwargs)
            if invariants_active():
                trace = get_trace(args, kwargs, result)
                if trace is not None:
                    check_potential_descends(trace)
            return result

        return wrapper  # type: ignore[return-value]

    return decorate


__all__ = [
    "COMMIT_IMPROVEMENT_EPS",
    "ENV_FLAG",
    "POTENTIAL_SLACK",
    "SANITIZE_ENV_FLAG",
    "check_capacity",
    "check_no_conflicting_commits",
    "check_placement_capacity",
    "check_potential_accumulator",
    "check_potential_descends",
    "check_profile_capacity",
    "check_shard_ownership",
    "invariant_capacity_feasible",
    "invariant_no_conflicting_commits",
    "invariant_potential_descends",
    "invariant_shard_ownership",
    "invariants_active",
    "sanitize_active",
]

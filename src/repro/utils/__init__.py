"""Shared utilities: seeded randomness, table rendering, validation helpers."""

from repro.utils.ascii_plot import line_chart, sparkline
from repro.utils.rng import RandomSource, as_rng
from repro.utils.tables import Table, format_series
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "line_chart",
    "sparkline",
    "RandomSource",
    "as_rng",
    "Table",
    "format_series",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_probability",
]

"""Plain-text table and series rendering for the experiment harness.

The benchmark harness prints the same rows/series the paper's figures plot;
this module owns the formatting so every figure driver renders consistently.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


class Table:
    """A simple left-aligned ASCII table.

    >>> t = Table(["size", "LCF", "Greedy"])
    >>> t.add_row([50, 1.23456, 2.5])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str], float_format: str = "{:.4g}") -> None:
        if not headers:
            raise ValueError("a table needs at least one column")
        self.headers = [str(h) for h in headers]
        self.float_format = float_format
        self._rows: List[List[str]] = []

    def add_row(self, values: Iterable[object]) -> None:
        row = [self._fmt(v) for v in values]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(self.headers)} columns"
            )
        self._rows.append(row)

    def _fmt(self, value: object) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return self.float_format.format(value)
        return str(value)

    @property
    def rows(self) -> List[List[str]]:
        """Rendered cell strings (copy); useful for assertions in tests."""
        return [list(r) for r in self._rows]

    def render(self, title: Optional[str] = None) -> str:
        widths = [len(h) for h in self.headers]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: Sequence[str]) -> str:
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

        parts: List[str] = []
        if title:
            parts.append(title)
        parts.append(line(self.headers))
        parts.append(line(["-" * w for w in widths]))
        parts.extend(line(r) for r in self._rows)
        return "\n".join(parts)


def format_series(name: str, xs: Sequence[object], ys: Sequence[float]) -> str:
    """Render one plotted series as ``name: x=y, x=y, ...`` for bench output."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    pairs = ", ".join(f"{x}={y:.4g}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


__all__ = ["Table", "format_series"]

"""Dependency-free ASCII charts for examples and bench output.

A terminal-first reproduction shouldn't need matplotlib to show a trend:
:func:`sparkline` compresses a series into one line of block glyphs, and
:func:`line_chart` draws a multi-series y-vs-x chart on a character grid.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line block-glyph rendering of a numeric series.

    >>> sparkline([1, 2, 3])
    '▁▄█'
    """
    xs = [float(v) for v in values]
    if not xs:
        return ""
    lo, hi = min(xs), max(xs)
    if hi - lo < 1e-12:
        return _BLOCKS[0] * len(xs)
    scale = (len(_BLOCKS) - 1) / (hi - lo)
    return "".join(_BLOCKS[int(round((v - lo) * scale))] for v in xs)


def line_chart(
    series: Mapping[str, Sequence[float]],
    x_values: Optional[Sequence[object]] = None,
    height: int = 10,
    width: Optional[int] = None,
    title: str = "",
) -> str:
    """A multi-series character chart.

    Each series gets a marker (``*``, ``o``, ``+``, …); y is linearly
    binned into ``height`` rows; x positions spread over ``width`` columns
    (default: one column per point).
    """
    if not series:
        raise ValueError("need at least one series")
    lengths = {len(v) for v in series.values()}
    if len(lengths) != 1:
        raise ValueError("all series must have equal length")
    n_points = lengths.pop()
    if n_points == 0:
        raise ValueError("series are empty")
    if height < 2:
        raise ValueError("height must be >= 2")
    width = width if width is not None else max(n_points, 2)

    all_values = [float(v) for vs in series.values() for v in vs]
    lo, hi = min(all_values), max(all_values)
    if hi - lo < 1e-12:
        hi = lo + 1.0

    markers = "*o+x#@%&"
    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for s_index, (name, values) in enumerate(series.items()):
        marker = markers[s_index % len(markers)]
        for i, value in enumerate(values):
            col = 0 if n_points == 1 else round(i * (width - 1) / (n_points - 1))
            row = round((float(value) - lo) / (hi - lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    label_hi = f"{hi:.4g}"
    label_lo = f"{lo:.4g}"
    pad = max(len(label_hi), len(label_lo))
    lines: List[str] = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        label = label_hi if r == 0 else (label_lo if r == height - 1 else "")
        lines.append(f"{label:>{pad}} |" + "".join(row))
    if x_values is not None and len(x_values) >= 2:
        axis = f"{' ' * pad} +" + "-" * width
        lines.append(axis)
        first, last = str(x_values[0]), str(x_values[-1])
        gap = max(1, width - len(first) - len(last))
        lines.append(f"{' ' * pad}  {first}{' ' * gap}{last}")
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines.append(f"{' ' * pad}  {legend}")
    return "\n".join(lines)


__all__ = ["sparkline", "line_chart"]

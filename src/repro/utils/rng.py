"""Deterministic randomness helpers.

Every stochastic component in the library accepts either an integer seed or a
:class:`numpy.random.Generator`; :func:`as_rng` normalises both to a
``Generator``. Experiments therefore replay bit-identically for a fixed seed,
which the test suite and the benchmark harness rely on.
"""

from __future__ import annotations

from typing import Final, Union

import numpy as np

#: Anything accepted where randomness is needed.
RandomSource = Union[int, np.random.Generator, None]

_DEFAULT_SEED: Final[int] = 20200707  # ICDCS 2020 week; arbitrary but fixed.


def as_rng(source: RandomSource = None) -> np.random.Generator:
    """Normalise ``source`` to a :class:`numpy.random.Generator`.

    ``None`` yields a generator seeded with the library default so that
    "unseeded" runs are still reproducible; pass an explicit ``Generator``
    to share a stream across components.
    """
    if isinstance(source, np.random.Generator):
        return source
    if source is None:
        return np.random.default_rng(_DEFAULT_SEED)
    return np.random.default_rng(int(source))


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Used when an experiment fans out over repetitions that must not share a
    stream (e.g. parallel sweep points).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]


def uniform(rng: np.random.Generator, low: float, high: float) -> float:
    """A single uniform draw with argument validation."""
    if high < low:
        raise ValueError(f"empty interval [{low}, {high}]")
    return float(rng.uniform(low, high))


def uniform_int(rng: np.random.Generator, low: int, high: int) -> int:
    """A single integer draw from the inclusive range [low, high]."""
    if high < low:
        raise ValueError(f"empty integer interval [{low}, {high}]")
    return int(rng.integers(low, high + 1))


__all__ = ["RandomSource", "as_rng", "spawn", "uniform", "uniform_int", "_DEFAULT_SEED"]

"""A dynamic service market: churn, migrations, and replanning.

The paper's services are cached *temporarily*; this example runs the market
over time with providers arriving and departing, comparing three operating
modes for the infrastructure provider:

* **replan** — rerun the full LCF mechanism every epoch (near-optimal each
  epoch, but cached instances migrate and pay to re-ship their data);
* **incremental** — survivors stay put, only newcomers choose (zero
  migrations, but the placement drifts);
* **hysteresis** — stay put until the social cost drifts past a threshold,
  then replan once (stability with bounded regret).

The crossover depends on how fast the market churns — swept below. Each
epoch delta-patches one persistent compiled market and warm-starts the
replan, so the sweep also prints its epochs/sec.

Run:  python examples/dynamic_market.py
      python examples/dynamic_market.py --policy hysteresis --threshold 0.05
      python examples/dynamic_market.py --policy replan --no-warm-start
"""

import argparse
import time

from repro.dynamics import DynamicMarketSimulation, PopulationProcess
from repro.network import random_mec_network
from repro.utils.tables import Table


def run(network, policy, mean_lifetime, rng, args):
    population = PopulationProcess(
        network,
        arrival_rate=5.0,
        mean_lifetime=mean_lifetime,
        rng=rng,
        initial_population=40,
    )
    sim = DynamicMarketSimulation(
        network,
        population,
        policy=policy,
        warm_start=args.warm_start,
        hysteresis_threshold=args.threshold,
    )
    t0 = time.perf_counter()
    summary = sim.run(args.epochs)
    return summary, time.perf_counter() - t0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--policy",
        choices=("replan", "incremental", "hysteresis"),
        default=None,
        help="run only this policy (default: sweep all three)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="relative social-cost drift that triggers a hysteresis "
             "replan (default 0.15)",
    )
    parser.add_argument(
        "--epochs", type=int, default=20, help="epochs per run (default 20)"
    )
    parser.add_argument(
        "--no-warm-start",
        dest="warm_start",
        action="store_false",
        help="cold-start every replan instead of reusing the previous "
             "epoch's LCF result",
    )
    args = parser.parse_args()

    network = random_mec_network(100, rng=1)
    policies = (
        (args.policy,) if args.policy
        else ("replan", "hysteresis", "incremental")
    )

    table = Table([
        "mean lifetime", "policy", "total cost", "social/epoch",
        "migrations", "migration cost", "replans",
    ])
    total_epochs = 0
    total_seconds = 0.0
    for lifetime in (3.0, 8.0, 20.0):
        for policy in policies:
            summary, seconds = run(network, policy, lifetime, rng=7, args=args)
            total_epochs += args.epochs
            total_seconds += seconds
            table.add_row([
                lifetime,
                policy,
                summary.total_cost,
                summary.mean_social_cost,
                summary.total_migrations,
                summary.total_migration_cost,
                summary.total_replans,
            ])
    print(table.render(
        title=f"{args.epochs} epochs, arrivals ~5/epoch "
              "(fast churn favours cheap placement, slow churn favours "
              "replanning quality)"
    ))
    mode = "warm" if args.warm_start else "cold"
    print(f"\n{total_epochs} epochs in {total_seconds:.2f}s = "
          f"{total_epochs / total_seconds:.1f} epochs/sec "
          f"({mode} replans, delta-patched compiled market)")

    # A per-epoch view of one run.
    policy = policies[0]
    summary, _ = run(network, policy, 8.0, rng=7, args=args)
    print(f"\n{policy}, lifetime 8 — first 8 epochs:")
    print(f"{'epoch':>5} {'pop':>4} {'+':>3} {'-':>3} "
          f"{'social':>8} {'migr':>5} {'migr$':>7} {'replan':>6}")
    for e in summary.epochs[:8]:
        print(f"{e.epoch:>5} {e.population:>4} {e.arrived:>3} {e.departed:>3} "
              f"{e.social_cost:>8.1f} {e.migrations:>5} "
              f"{e.migration_cost:>7.2f} {'yes' if e.replanned else '':>6}")


if __name__ == "__main__":
    main()

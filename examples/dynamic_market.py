"""A dynamic service market: churn, migrations, and replanning.

The paper's services are cached *temporarily*; this example runs the market
over time with providers arriving and departing, comparing two operating
modes for the infrastructure provider:

* **replan** — rerun the full LCF mechanism every epoch (near-optimal each
  epoch, but cached instances migrate and pay to re-ship their data);
* **incremental** — survivors stay put, only newcomers choose (zero
  migrations, but the placement drifts).

The crossover depends on how fast the market churns — swept below.

Run:  python examples/dynamic_market.py
"""

from repro.dynamics import DynamicMarketSimulation, PopulationProcess
from repro.network import random_mec_network
from repro.utils.tables import Table

EPOCHS = 20


def run(network, policy: str, mean_lifetime: float, rng: int):
    population = PopulationProcess(
        network,
        arrival_rate=5.0,
        mean_lifetime=mean_lifetime,
        rng=rng,
        initial_population=40,
    )
    sim = DynamicMarketSimulation(network, population, policy=policy)
    return sim.run(EPOCHS)


def main() -> None:
    network = random_mec_network(100, rng=1)

    table = Table([
        "mean lifetime", "policy", "total cost", "social/epoch",
        "migrations", "migration cost",
    ])
    for lifetime in (3.0, 8.0, 20.0):
        for policy in ("replan", "incremental"):
            summary = run(network, policy, lifetime, rng=7)
            table.add_row([
                lifetime,
                policy,
                summary.total_cost,
                summary.mean_social_cost,
                summary.total_migrations,
                summary.total_migration_cost,
            ])
    print(table.render(
        title=f"{EPOCHS} epochs, arrivals ~5/epoch "
              "(fast churn favours cheap placement, slow churn favours "
              "replanning quality)"
    ))

    # A per-epoch view of one replan run.
    summary = run(network, "replan", 8.0, rng=7)
    print("\nreplan, lifetime 8 — first 8 epochs:")
    print(f"{'epoch':>5} {'pop':>4} {'+':>3} {'-':>3} "
          f"{'social':>8} {'migr':>5} {'migr$':>7}")
    for e in summary.epochs[:8]:
        print(f"{e.epoch:>5} {e.population:>4} {e.arrived:>3} {e.departed:>3} "
              f"{e.social_cost:>8.1f} {e.migrations:>5} {e.migration_cost:>7.2f}")


if __name__ == "__main__":
    main()

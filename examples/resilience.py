"""Cloudlet failures: what does an outage cost the market?

The testbed is wired so "network data can still be transmitted if one
switch is down" (Section IV.C); this example exercises the service layer's
side of that story, in two acts:

1. **One-epoch drills** — fail each cloudlet of a static market in turn
   (then the two busiest at once) and compare the greedy-failover bill to
   a full LCF replan.
2. **An outage-laden run** — drive the dynamic market through an
   MTTF/MTTR outage process and report the availability ledger: provider
   displacement, SLA violations, cloudlet downtime and mean
   time-to-recover, under the chosen recovery policy.

Run:  python examples/resilience.py
      python examples/resilience.py --mttf 6 --mttr 2 --policy replan
      python examples/resilience.py --correlated --policy hysteresis
"""

import argparse

from repro.core import lcf
from repro.dynamics import (
    CorrelatedOutageTrace,
    DynamicMarketSimulation,
    FailureInjector,
    IndependentOutageTrace,
    PopulationProcess,
)
from repro.market import generate_market
from repro.network import random_mec_network
from repro.utils.tables import Table


def one_epoch_drills(network, market) -> None:
    baseline = lcf(market, xi=0.7, allow_remote=True).assignment
    print(f"pre-failure social cost: {baseline.social_cost:.1f}")

    injector = FailureInjector(market)
    occupancy = baseline.occupancy()

    table = Table([
        "failed cloudlet", "tenants", "failover cost", "replan cost",
        "failover delta", "newly remote",
    ])
    for cl in market.network.cloudlets:
        node = cl.node_id
        failover = injector.inject(baseline, [node], policy="failover")
        replan = injector.inject(baseline, [node], policy="replan")
        table.add_row([
            cl.name,
            occupancy.get(node, 0),
            failover.cost_after,
            replan.cost_after,
            failover.cost_increase,
            len(failover.newly_rejected),
        ])
    print()
    print(table.render(title="Single-cloudlet outages"))

    busiest = sorted(occupancy, key=occupancy.get, reverse=True)[:2]
    double = injector.inject(baseline, busiest, policy="failover")
    double_replan = injector.inject(baseline, busiest, policy="replan")
    print(f"\ncorrelated outage of the two busiest cloudlets {busiest}:")
    print(f"  displaced instances:  {len(double.displaced)}")
    print(f"  failover: {double.cost_after:.1f} "
          f"(+{double.cost_increase:.1f})")
    print(f"  replan:   {double_replan.cost_after:.1f} "
          f"(+{double_replan.cost_increase:.1f})")


def outage_run(args) -> None:
    # A fresh network: the trace zeroes live cloudlet capacities while
    # nodes are down, so the drills above must not share topology.
    network = random_mec_network(100, rng=1)
    population = PopulationProcess(
        network,
        arrival_rate=5.0,
        mean_lifetime=8.0,
        rng=3,
        initial_population=40,
    )
    trace_cls = CorrelatedOutageTrace if args.correlated else IndependentOutageTrace
    trace = trace_cls(network, mttf=args.mttf, mttr=args.mttr, rng=5)
    sim = DynamicMarketSimulation(
        network,
        population,
        policy="incremental",
        outages=trace,
        recovery=args.policy,
    )
    summary = sim.run(args.epochs)

    kind = "correlated" if args.correlated else "independent"
    print()
    table = Table(["epoch", "down cloudlets", "displaced", "SLA viol.",
                   "replanned", "social cost"])
    for e in summary.epochs:
        if e.outages or e.recoveries or e.displaced:
            table.add_row([
                e.epoch, len(e.failed_cloudlets), e.displaced,
                e.sla_violations, "yes" if e.replanned else "", e.social_cost,
            ])
    print(table.render(
        title=f"Outage epochs ({kind} trace, MTTF={args.mttf:g}, "
              f"MTTR={args.mttr:g}, recovery={args.policy})"
    ))

    print("\navailability ledger:")
    print(f"  cloudlet downtime:     {summary.cloudlet_downtime} cloudlet-epochs")
    print(f"  displaced instances:   {summary.total_displaced}")
    print(f"  SLA violations:        {summary.total_sla_violations}")
    print(f"  provider downtime:     {summary.provider_downtime} provider-epochs")
    print(f"  mean time to recover:  {summary.mean_time_to_recover:.2f} epochs")
    print(f"  replans triggered:     {summary.total_replans}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--epochs", type=int, default=20,
                        help="epochs of the outage-laden run (default 20)")
    parser.add_argument("--mttf", type=float, default=5.0,
                        help="mean epochs between cloudlet failures (default 5)")
    parser.add_argument("--mttr", type=float, default=2.0,
                        help="mean epochs to repair a cloudlet (default 2)")
    parser.add_argument("--policy", choices=("failover", "replan", "hysteresis"),
                        default="failover",
                        help="recovery policy for displaced providers")
    parser.add_argument("--correlated", action="store_true",
                        help="regional outages (neighbourhoods fail together)")
    args = parser.parse_args()

    network = random_mec_network(100, rng=1)
    market = generate_market(network, 40, rng=2)
    one_epoch_drills(network, market)
    outage_run(args)


if __name__ == "__main__":
    main()

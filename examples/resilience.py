"""Cloudlet failures: what does an outage cost the market?

The testbed is wired so "network data can still be transmitted if one
switch is down" (Section IV.C); this example exercises the service layer's
side of that story. It fails each cloudlet of a market in turn, recovers
with greedy failover and with a full LCF replan, and reports the outage
bill — then kills the two busiest cloudlets at once to probe a correlated
failure.

Run:  python examples/resilience.py
"""

from repro.core import lcf
from repro.dynamics import FailureInjector
from repro.market import generate_market
from repro.network import random_mec_network
from repro.utils.tables import Table


def main() -> None:
    network = random_mec_network(100, rng=1)
    market = generate_market(network, 40, rng=2)
    baseline = lcf(market, xi=0.7, allow_remote=True).assignment
    print(f"pre-failure social cost: {baseline.social_cost:.1f}")

    injector = FailureInjector(market)
    occupancy = baseline.occupancy()

    table = Table([
        "failed cloudlet", "tenants", "failover cost", "replan cost",
        "failover delta", "newly remote",
    ])
    for cl in market.network.cloudlets:
        node = cl.node_id
        failover = injector.inject(baseline, [node], policy="failover")
        replan = injector.inject(baseline, [node], policy="replan")
        table.add_row([
            cl.name,
            occupancy.get(node, 0),
            failover.cost_after,
            replan.cost_after,
            failover.cost_increase,
            len(failover.newly_rejected),
        ])
    print()
    print(table.render(title="Single-cloudlet outages"))

    busiest = sorted(occupancy, key=occupancy.get, reverse=True)[:2]
    double = injector.inject(baseline, busiest, policy="failover")
    double_replan = injector.inject(baseline, busiest, policy="replan")
    print(f"\ncorrelated outage of the two busiest cloudlets {busiest}:")
    print(f"  displaced instances:  {len(double.displaced)}")
    print(f"  failover: {double.cost_after:.1f} "
          f"(+{double.cost_increase:.1f})")
    print(f"  replan:   {double_replan.cost_after:.1f} "
          f"(+{double_replan.cost_increase:.1f})")


if __name__ == "__main__":
    main()

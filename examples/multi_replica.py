"""Multi-replica caching — taking the set-valued strategy space seriously.

Section II.E defines a provider's strategy space as subsets of cloudlets,
but the paper's algorithms place a single instance. This example uses the
`repro.core.multicache` extension: providers with geographically dispersed
user bases may cache several replicas, each user cluster offloading to its
nearest one. A replica pays instantiation + consistency updates + its
cloudlet's congestion, so replication only wins for read-mostly,
high-traffic services — which the sync-frequency sweep below makes visible.

Run:  python examples/multi_replica.py
"""

from repro.core.multicache import greedy_multicache
from repro.market import WorkloadParams, generate_market
from repro.network import random_mec_network
from repro.utils.tables import Table


def dispersed_workload(sync_frequency: float) -> WorkloadParams:
    """High-traffic services with 3-5 user clusters each."""
    return WorkloadParams(
        user_clusters_range=(3, 5),
        requests_range=(200, 400),
        compute_per_request_range=(0.002, 0.005),
        bandwidth_per_request_range=(0.05, 0.12),
        traffic_mb_range=(50.0, 200.0),
        update_ratio=0.02,
        sync_frequency=sync_frequency,
    )


def main() -> None:
    network = random_mec_network(150, rng=1)

    table = Table([
        "syncs/epoch", "single-replica cost", "multi-replica cost",
        "replicas added", "mean replicas",
    ])
    for sync in (0.5, 1.0, 2.0, 5.0, 10.0, 20.0):
        market = generate_market(
            network, 30, params=dispersed_workload(sync), rng=2
        )
        result = greedy_multicache(market, max_replicas=4)
        n_providers = len(result.placement)
        table.add_row([
            sync,
            result.info["base_social_cost"],
            result.social_cost,
            result.info["additions"],
            result.total_replicas / max(1, n_providers),
        ])
    print(table.render(
        title="Replication pays for read-mostly services "
              "(low sync frequency), not for write-heavy ones"
    ))

    # A closer look at one read-mostly market.
    market = generate_market(network, 30, params=dispersed_workload(0.5), rng=2)
    result = greedy_multicache(market, max_replicas=4)
    print(f"\nread-mostly market: {result.algorithm}")
    print(f"  social cost: {result.info['base_social_cost']:.1f} -> "
          f"{result.social_cost:.1f}")
    replicated = {
        pid: sorted(replicas)
        for pid, replicas in result.placement.items()
        if len(replicas) > 1
    }
    for pid, replicas in list(replicated.items())[:5]:
        clusters = market.provider(pid).service.clusters
        print(f"  sp{pid}: replicas at {replicas} "
              f"(user clusters at {[n for n, _ in clusters]})")


if __name__ == "__main__":
    main()

"""Quickstart: cache a service market into an MEC network.

Builds a GT-ITM-style two-tiered MEC network, draws a market of network
service providers with the paper's Section IV.A distributions, runs the LCF
Stackelberg mechanism (Algorithm 2) against the two baselines, and prints
the cost breakdown.

Run:  python examples/quickstart.py
      python examples/quickstart.py --engine batch   # batch-vectorized kernel

``--engine`` picks the best-response engine for the selfish phase
(``incremental``, ``batch`` or ``naive``); all three reach the identical
equilibrium, ``batch`` is the fast path on large markets.
"""

import argparse

from repro.core import jo_offload_cache, lcf, offload_cache
from repro.core.bounds import bounds_for_market
from repro.game.best_response import ENGINES
from repro.market import generate_market
from repro.network import random_mec_network
from repro.utils.tables import Table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--engine", choices=ENGINES, default="incremental",
        help="best-response engine for the selfish phase",
    )
    args = parser.parse_args()

    # A 200-node network: 20 cloudlets at the edge, 5 remote data centers.
    network = random_mec_network(200, rng=42)
    print(network)

    # 80 selfish network service providers, each with one service to cache.
    market = generate_market(network, n_providers=80, rng=7)
    print(market)

    # The infrastructure provider coordinates 70% of them (1 - xi = 0.3).
    result = lcf(market, xi=0.7, allow_remote=True, engine=args.engine)
    assignment = result.assignment
    print(f"\nLCF: stable = {result.is_equilibrium}, "
          f"coordinated = {len(result.coordinated_ids)}, "
          f"rejected (left remote) = {len(assignment.rejected)}")

    table = Table(["algorithm", "social cost ($)", "runtime (s)"])
    table.add_row(["LCF", assignment.social_cost, assignment.runtime_s])
    for name, run in (("JoOffloadCache", jo_offload_cache),
                      ("OffloadCache", offload_cache)):
        out = run(market)
        table.add_row([name, out.social_cost, out.runtime_s])
    print()
    print(table.render(title="Algorithm comparison"))

    bounds = bounds_for_market(market, xi=0.7)
    print(f"\nLemma 2 approximation-ratio bound: "
          f"{bounds['appro_ratio_bound']:.1f}")
    print(f"Theorem 1 PoA bound (optimal v = {bounds['optimal_v']:.3f}): "
          f"{bounds['poa_bound']:.1f}")

    print("\nMost expensive providers under LCF:")
    costs = sorted(
        ((assignment.provider_cost(p.provider_id), p.provider_id)
         for p in market.providers),
        reverse=True,
    )
    for cost, pid in costs[:5]:
        where = assignment.placement.get(pid, "remote cloud")
        print(f"  sp{pid}: ${cost:.2f} at {where}")


if __name__ == "__main__":
    main()

"""To cache or not to cache — the title question, quantified.

The paper's premise is that delay-sensitive services should be cached at
the edge *when the economics work out*. This example opens the "do not
cache" option (serving from the original instance in the remote cloud) and
shows how the optimal mix of cached vs remote services shifts with

* the backhaul premium of remote serving (WAN egress + latency-violation
  cost), and
* the edge congestion level (market size on a fixed network).

Run:  python examples/to_cache_or_not_to_cache.py
"""

from repro.core import appro
from repro.market import generate_market
from repro.network import random_mec_network
from repro.utils.tables import Table


def premium_sweep() -> None:
    network = random_mec_network(100, rng=31)
    table = Table([
        "remote premium", "cached", "remote", "social cost ($)",
    ])
    for premium in (1.0, 2.0, 4.0, 8.0, 16.0, 32.0):
        market = generate_market(
            network, n_providers=60, rng=32, remote_premium=premium
        )
        outcome = appro(market, allow_remote=True)
        table.add_row([
            premium,
            len(outcome.placement),
            len(outcome.rejected),
            outcome.social_cost,
        ])
    print(table.render(
        title="Cheap backhaul keeps services remote; expensive backhaul "
              "fills the edge"
    ))


def congestion_sweep() -> None:
    network = random_mec_network(100, rng=41)
    table = Table(["providers", "cached", "remote", "cached share"])
    for n in (20, 40, 60, 80, 100, 120):
        # A moderate premium where the trade-off is live.
        market = generate_market(
            network, n_providers=n, rng=42, remote_premium=6.0
        )
        outcome = appro(market, allow_remote=True)
        cached = len(outcome.placement)
        table.add_row([n, cached, len(outcome.rejected), cached / n])
    print()
    print(table.render(
        title="As the edge congests, the marginal service stays remote"
    ))


if __name__ == "__main__":
    premium_sweep()
    congestion_sweep()

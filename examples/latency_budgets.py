"""The price of a QoS guarantee.

The paper motivates edge caching with motion-to-photon latency but
optimises dollars. This example makes the guarantee explicit: a hard
per-provider latency budget turns distant cloudlets into forbidden choices,
and the sweep below shows what each tier of guarantee costs the market —
the tighter the budget, the fewer feasible cloudlets, the higher the social
cost, until services are pushed back to the (latency-violating but always
available) remote cloud.

Run:  python examples/latency_budgets.py
"""

from repro.core import lcf
from repro.market import generate_market
from repro.market.qos import latency_report
from repro.network import random_mec_network
from repro.utils.tables import Table


def main() -> None:
    network = random_mec_network(150, rng=1)

    table = Table([
        "budget (ms)", "social cost ($)", "remote-served",
        "mean delay (ms)", "p95 delay (ms)",
    ])
    for budget in (None, 12.0, 8.0, 5.0, 3.0, 2.0):
        market = generate_market(
            network, 60, rng=2, latency_budget_ms=budget
        )
        assignment = lcf(market, xi=0.7, allow_remote=True).assignment
        report = latency_report(assignment)
        table.add_row([
            "unlimited" if budget is None else budget,
            assignment.social_cost,
            len(assignment.rejected),
            report.mean_ms,
            report.p95_ms,
        ])
    print(table.render(
        title="Tighter latency guarantees cost money — then capacity"
    ))

    # Who gets squeezed first? The providers whose users sit far from any
    # cloudlet.
    market = generate_market(network, 60, rng=2, latency_budget_ms=3.0)
    assignment = lcf(market, xi=0.7, allow_remote=True).assignment
    if assignment.rejected:
        print("\nproviders pushed to the remote cloud at a 3 ms budget:")
        for pid in sorted(assignment.rejected)[:6]:
            svc = market.provider(pid).service
            nearest = min(
                market.cost_model.access_delay_ms(
                    market.provider(pid), cl
                )
                for cl in network.cloudlets
            )
            print(f"  sp{pid}: nearest cloudlet {nearest:.1f} ms away")


if __name__ == "__main__":
    main()

"""Pricing the market: Clarke payments and the leader's revenue options.

The paper's infrastructure provider coordinates through contracts; this
example prices that coordination. It computes VCG/Clarke payments for the
coordinated allocation — each provider pays the congestion externality it
imposes on everyone else — and contrasts the leader's two revenue levers:
Clarke payments under full coordination vs Pigouvian toll revenue under a
fully selfish market.

Run:  python examples/market_mechanisms.py
"""

from repro.core import appro, vcg_payments
from repro.core.tolls import optimize_toll_level, tolled_selfish_market
from repro.market import generate_market
from repro.network import random_mec_network
from repro.utils.tables import Table


def main() -> None:
    network = random_mec_network(100, rng=5)
    market = generate_market(network, 40, rng=6)

    outcome = vcg_payments(market)
    occupancy = outcome.assignment.occupancy()

    table = Table(["provider", "cloudlet", "own cost ($)", "Clarke payment ($)"])
    ranked = sorted(outcome.payments.items(), key=lambda t: -t[1])
    for pid, payment in ranked[:8]:
        where = outcome.assignment.placement.get(pid, "remote")
        table.add_row([
            f"sp{pid}", where, outcome.assignment.provider_cost(pid), payment,
        ])
    print(table.render(
        title="Clarke payments: crowded cloudlets cost their tenants extra"
    ))

    # Sanity of the externality story: providers on crowded cloudlets pay
    # more than loners.
    crowded = [pid for pid, n in outcome.assignment.placement.items()
               if occupancy[n] >= 3]
    lonely = [pid for pid, n in outcome.assignment.placement.items()
              if occupancy[n] == 1]
    if crowded and lonely:
        mean = lambda pids: sum(outcome.payments[p] for p in pids) / len(pids)
        print(f"\nmean payment on crowded cloudlets (|σ|>=3): "
              f"${mean(crowded):.2f}")
        print(f"mean payment of lone tenants:               "
              f"${mean(lonely):.2f}")

    # The leader's two revenue levers.
    tolls = optimize_toll_level(market)
    print(f"\nleader revenue, full coordination (Clarke):   "
          f"${outcome.total_payments:.1f} "
          f"at social cost {outcome.social_cost:.1f}")
    print(f"leader revenue, selfish market (tolls @ "
          f"{tolls.level}): ${tolls.toll_revenue:.1f} "
          f"at social cost {tolls.social_cost:.1f}")
    anarchy = tolled_selfish_market(market)
    print(f"for reference, untolled anarchy social cost:  "
          f"{anarchy.social_cost:.1f}")


if __name__ == "__main__":
    main()

"""Congestion tolls vs coordination: two ways to tame a selfish market.

The paper's LCF needs bulk-lease contracts to *pin* coordinated providers.
This example explores the mechanism-design alternative: leave everyone
selfish but publish Pigouvian congestion tolls on the price sheet, sized to
the marginal externality at the anticipated load. The sweep shows the
realised social cost as the toll level grows — zero tolls reproduce the
posted-price anarchy, the Pigouvian level (1.0) lands near the optimum,
over-tolling scares providers off the edge again.

Run:  python examples/congestion_tolls.py
"""

from repro.core import appro, lcf
from repro.core.tolls import optimize_toll_level, tolled_selfish_market
from repro.market import generate_market
from repro.network import random_mec_network
from repro.utils.tables import Table


def main() -> None:
    network = random_mec_network(150, rng=1)
    market = generate_market(network, 60, rng=2)

    anarchy = tolled_selfish_market(market)
    coordinated = appro(market, allow_remote=True)
    half_lcf = lcf(market, xi=0.5, allow_remote=True).assignment

    optimum = optimize_toll_level(
        market, levels=(0.0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 3.0)
    )

    table = Table(["toll level", "social cost ($)"])
    for level, cost in sorted(optimum.sweep.items()):
        marker = "  <- best" if level == optimum.level else ""
        table.add_row([f"{level}{marker}", cost])
    print(table.render(title="Toll-level sweep (fully selfish market)"))

    print()
    print(f"posted-price anarchy (no tolls):   {anarchy.social_cost:8.1f}")
    print(f"best tolls (level {optimum.level}):            "
          f"{optimum.social_cost:8.1f}  "
          f"(+${optimum.toll_revenue:.0f} toll revenue to the leader)")
    print(f"LCF, half coordinated:             {half_lcf.social_cost:8.1f}")
    print(f"coordinated optimum (Appro):       {coordinated.social_cost:8.1f}")

    gap = anarchy.social_cost - coordinated.social_cost
    closed = anarchy.social_cost - optimum.social_cost
    print(f"\ntolls close {closed / gap:.0%} of the anarchy-to-optimum gap "
          f"without coordinating a single provider.")


if __name__ == "__main__":
    main()

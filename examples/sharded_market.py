"""A region-sharded service market: partitioned equilibria at scale.

The market's topology is regional (GT-ITM transit stubs), and with a
latency budget armed most providers can only cache inside their own
region. This example shards the market along that structure:

1. partition the cloudlets by region (`partition_market`),
2. classify providers interior / boundary / unreachable,
3. settle each shard's interior independently and reconcile the
   boundary providers on the global tables
   (`partitioned_best_response`), certifying the result as a global
   Nash equilibrium,
4. run a churning market with the sharded settle riding the
   sequence-numbered delta replication log
   (`DynamicMarketSimulation(sharding="region")`).

A single shard reproduces the global batch engine bit for bit; several
shards trade the exact equilibrium basin for locality (another certified
equilibrium of the same potential game) and, past ~10³ providers, for
speed — see docs/sharding.md and benchmarks/BENCH_shard.json.

Run:  python examples/sharded_market.py
      python examples/sharded_market.py --shards 8 --epochs 10
      python examples/sharded_market.py --shards 4 --boundary-rounds 2 --workers 2
"""

import argparse
import time

import numpy as np

from repro.dynamics import DynamicMarketSimulation, PopulationProcess
from repro.game.batch import batch_best_response
from repro.game.partitioned import game_from_compiled, partitioned_best_response
from repro.market.shard import classify_providers, partition_market
from repro.market.workload import generate_market
from repro.network import random_mec_network
from repro.utils.tables import Table
from repro.utils.validation import CAPACITY_EPS


def greedy_start(cm):
    """Cheapest-feasible greedy over the compiled tables."""
    occ = np.zeros(cm.n_cloudlets, dtype=np.int64)
    loads = np.zeros_like(cm.capacity)
    start = {}
    for pid in cm.provider_ids:
        row = cm.provider_index[pid]
        fits = np.isfinite(cm.fixed[row]) & np.all(
            loads + cm.demand[row] <= cm.capacity + CAPACITY_EPS, axis=1
        )
        if not fits.any():
            continue
        cost = cm.shared[
            np.arange(cm.n_cloudlets), np.minimum(occ + 1, len(cm.g) - 1)
        ] + cm.fixed[row]
        cost[~fits] = np.inf
        j = int(np.argmin(cost))
        start[pid] = cm.cloudlet_nodes[j]
        occ[j] += 1
        loads[j] += cm.demand[row]
    return start


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=200)
    parser.add_argument("--providers", type=int, default=300)
    parser.add_argument("--shards", type=int, default=None,
                        help="shard count (default: one per region)")
    parser.add_argument("--epochs", type=int, default=5)
    parser.add_argument("--boundary-rounds", type=int, default=8)
    parser.add_argument("--workers", type=int, default=1,
                        help="shard worker processes (default: serial)")
    parser.add_argument("--latency-budget", type=float, default=3.0)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    network = random_mec_network(args.nodes, rng=args.seed)
    market = generate_market(
        network, args.providers, rng=args.seed + 1,
        latency_budget_ms=args.latency_budget,
    )
    cm = market.compile()
    partition = partition_market(market, args.shards)
    classification = classify_providers(cm, partition)
    print(f"{partition!r}")
    interior = sum(len(v) for v in classification.interior.values())
    print(
        f"population: {interior} interior, "
        f"{len(classification.boundary)} boundary, "
        f"{len(classification.unreachable)} unreachable"
    )

    # One static settle, sharded vs global, from the same greedy start.
    start = greedy_start(cm)
    game = game_from_compiled(cm, players=sorted(start))
    t0 = time.perf_counter()
    g_profile, _, _, g_moves, _, _ = batch_best_response(
        game, dict(start), max_rounds=1000, compiled=game.compile()
    )
    t_global = time.perf_counter() - t0
    t0 = time.perf_counter()
    result = partitioned_best_response(
        market, start, partition=partition, classification=classification,
        boundary_rounds=args.boundary_rounds,
    )
    t_shard = time.perf_counter() - t0
    g_cost = cm.social_cost(g_profile)
    print()
    print("static settle from one greedy start:")
    table = Table(("engine", "moves", "social cost", "certified", "ms"))
    table.add_row(("global batch", g_moves, f"{g_cost:.2f}", "-",
                   f"{t_global * 1e3:.1f}"))
    table.add_row((
        f"sharded x{partition.n_shards}", result.moves,
        f"{result.social_cost:.2f}", str(result.certified),
        f"{t_shard * 1e3:.1f}",
    ))
    print(table.render())
    gap = abs(result.social_cost - g_cost) / max(abs(g_cost), 1e-12)
    print(f"relative social-cost gap: {gap:.2e}"
          + (" (single shard: bit-identical)" if partition.n_shards == 1
             else ""))

    # A churning market with the sharded settle on the delta log.
    population = PopulationProcess(
        network, arrival_rate=max(2.0, args.providers / 20),
        mean_lifetime=8.0, rng=args.seed + 2,
        initial_population=args.providers,
    )
    with DynamicMarketSimulation(
        network, population, policy="incremental",
        sharding="region", n_shards=args.shards,
        boundary_rounds=args.boundary_rounds,
        shard_workers=args.workers,
    ) as sim:
        t0 = time.perf_counter()
        summary = sim.run(args.epochs)
        elapsed = time.perf_counter() - t0
    print()
    print(f"sharded dynamic run ({elapsed:.2f}s, "
          f"{args.epochs / elapsed:.1f} epochs/s):")
    epoch_table = Table(
        ("epoch", "population", "settle moves", "certified", "total cost")
    )
    for e in summary.epochs:
        epoch_table.add_row((
            e.epoch, e.population, e.settle_moves,
            str(e.equilibrium_certified), f"{e.total_cost:.1f}",
        ))
    print(epoch_table.render())
    print(f"total: {summary.total_cost:.1f} "
          f"({summary.total_settle_moves} settle moves)")


if __name__ == "__main__":
    main()

"""Sizing the edge: how many VMs does this market need?

The infrastructure provider's inverse problem: given a provider population,
find the smallest uniform cloudlet capacity that serves everyone the market
*wants* served. Capacity can only fix capacity-driven rejections — services
whose congestion charge exceeds the remote premium stay remote at any size
(the market's congestion floor), which the planner targets by default.

Run:  python examples/capacity_planning.py
"""

from repro.core import capacity_plan, lcf
from repro.core.planning import scaled_capacities
from repro.market import generate_market
from repro.network import random_mec_network
from repro.utils.tables import Table


def main() -> None:
    # A deliberately under-provisioned edge: 6 cloudlets for 60 providers.
    network = random_mec_network(60, rng=1)
    market = generate_market(network, 60, rng=2)

    base = lcf(market, xi=0.7, allow_remote=True).assignment
    print(f"base capacity: social cost {base.social_cost:.1f}, "
          f"{len(base.rejected)} services pushed remote")

    plan = capacity_plan(market, lo=0.5, hi=6.0)
    print(f"\nplanned scale: {plan.scale:.2f}x "
          f"(congestion floor: {plan.rejections} remote services, "
          f"{plan.evaluations} LCF evaluations)")

    table = Table(["capacity scale", "remote services", "social cost ($)"])
    for scale in sorted(plan.probes):
        rejections, cost = plan.probes[scale]
        marker = "  <- plan" if abs(scale - plan.scale) < 1e-9 else ""
        table.add_row([f"{scale:.2f}{marker}", rejections, cost])
    print()
    print(table.render(title="Bisection trace"))

    # What the recommended capacity buys. Note: social cost is not
    # monotone in capacity — extra room admits services whose caching is
    # only marginally better than remote — the planner optimises service
    # coverage (rejections), not dollars.
    with scaled_capacities(market, plan.scale):
        sized = lcf(market, xi=0.7, allow_remote=True).assignment
        print(f"\nat {plan.scale:.2f}x: {len(sized.rejected)} remote "
              f"(was {len(base.rejected)}), social cost "
              f"{sized.social_cost:.1f} (base {base.social_cost:.1f})")


if __name__ == "__main__":
    main()

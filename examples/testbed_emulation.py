"""Run the algorithms on the emulated hardware testbed (Section IV.C).

Assembles the paper's Fig. 4 setup — five vendor switches, five servers, an
AS1755 OVS/VXLAN overlay under a Ryu-style controller — and compares the
three algorithms end to end: controller wall-clock, social cost, and the
flow-level behaviour of the access and consistency-update traffic their
placements generate.

Run:  python examples/testbed_emulation.py
"""

from repro.core import jo_offload_cache, lcf, offload_cache
from repro.market import generate_market
from repro.testbed import Testbed
from repro.utils.tables import Table


def main() -> None:
    testbed = Testbed(rng=17)
    print("underlay switches:")
    for sw in testbed.switches:
        print(f"  {sw.name:>12}  {sw.model.product:<22} "
              f"{sw.model.ports} ports @ {sw.model.port_speed_mbps:.0f} Mbps")
    print(f"overlay: {testbed.overlay}")
    print(f"controller sees: {testbed.controller.discovered_topology()}")

    market = generate_market(testbed.network, n_providers=40, rng=18)
    print(f"\nmarket: {market}")

    testbed.register_algorithm(
        "LCF", lambda m: lcf(m, xi=0.7, allow_remote=True).assignment
    )
    testbed.register_algorithm("JoOffloadCache", jo_offload_cache)
    testbed.register_algorithm("OffloadCache", offload_cache)

    table = Table([
        "algorithm", "social cost ($)", "controller time (s)",
        "flow makespan (s)", "mean rate (Mbps)", "rejected",
    ])
    for name in ("LCF", "JoOffloadCache", "OffloadCache"):
        run = testbed.run(name, market)
        table.add_row([
            name,
            run.social_cost,
            run.runtime_s,
            run.flow_metrics["makespan"],
            run.flow_metrics["mean_rate_mbps"],
            len(run.assignment.rejected),
        ])
    print()
    print(table.render(title="AS1755 testbed comparison (1 - xi = 0.3)"))

    print("\ninstalled flow-rule chains (first 6):")
    for path in testbed.controller.installed[:6]:
        nodes = " -> ".join(str(n) for n in path.overlay_nodes)
        print(f"  sp{path.provider_id} [{path.purpose}]: {nodes}")

    util = testbed.vm_manager.utilization()
    print(f"\nserver pool utilisation: cores {util['cores']:.0%}, "
          f"memory {util['memory']:.0%}")


if __name__ == "__main__":
    main()

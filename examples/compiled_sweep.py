"""Quickstart: a parallel xi-sweep on the compiled instance representation.

The Fig. 3 experiment — social cost as the coordination fraction xi varies —
run through the sweep harness with every speed lever of the compiled layer
engaged:

* markets are compiled once up front (``precompile=True``) and the
  array-backed :class:`~repro.market.compiled.CompiledMarket` blob is
  shipped to the workers, instead of every task re-deriving costs from the
  object graph;
* all algorithm layers (Appro's GAP build, LP assembly, the repair, LCF's
  follower game, the baselines) read the same shared tables;
* ``--workers N`` fans the ``(xi, repetition)`` grid over a process pool —
  metrics are bit-identical at any worker count, only wall-clock changes.

Run:  python examples/compiled_sweep.py --workers 4
      python examples/compiled_sweep.py --nodes 60 --providers 24 --reps 1
"""

from __future__ import annotations

import argparse
import time
from functools import partial

from repro.core.lcf import lcf
from repro.experiments.harness import sweep
from repro.market.workload import generate_market
from repro.network.generators import random_mec_network
from repro.utils.tables import Table

XI_VALUES = (0.1, 0.3, 0.5, 0.7, 0.9)


def make_market(n_nodes: int, n_providers: int, _xi: object, seed: int):
    """Market builder for one (xi, repetition) cell. xi does not change the
    market — the harness's per-repetition seeding keeps environments
    comparable across the x-axis (common random numbers)."""
    network = random_mec_network(n_nodes, rng=seed)
    return generate_market(network, n_providers=n_providers, rng=seed + 1)


def run_lcf(xi: float, market):
    return lcf(market, xi=float(xi), representation="compiled").assignment


def make_algorithms(xi: object):
    return {"LCF": partial(run_lcf, float(xi))}  # type: ignore[arg-type]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=100, help="network size")
    parser.add_argument("--providers", type=int, default=40, help="provider count")
    parser.add_argument("--reps", type=int, default=2, help="repetitions per xi")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="sweep worker processes (0 = one per CPU; metrics are "
        "identical at any setting)",
    )
    args = parser.parse_args()

    t0 = time.perf_counter()
    result = sweep(
        name="compiled-xi-sweep",
        x_label="xi",
        x_values=list(XI_VALUES),
        make_market=partial(make_market, args.nodes, args.providers),
        make_algorithms=make_algorithms,
        repetitions=args.reps,
        workers=args.workers,
        precompile=True,
    )
    elapsed = time.perf_counter() - t0

    table = Table(["xi", "social cost", "coordinated", "selfish", "rejected"])
    for xi, point in zip(result.x_values, result.points):
        m = point["LCF"]
        table.add_row([xi, m.social_cost, m.coordinated_cost, m.selfish_cost, m.rejected])
    print(table.render())
    print(
        f"\n{len(XI_VALUES)} xi values x {args.reps} repetitions "
        f"(workers={args.workers}, precompiled) in {elapsed:.2f} s"
    )


if __name__ == "__main__":
    main()

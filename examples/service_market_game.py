"""The Stackelberg service market, step by step.

Walks through the game mechanics the paper builds on: the congestion game
of Section II.E, Rosenthal's potential, best-response dynamics, the
approximation-restricted Stackelberg strategy, and how the social cost
degrades as the selfish fraction 1 - xi grows — including the empirical
Price of Anarchy against Theorem 1's bound on a small instance.

Run:  python examples/service_market_game.py
"""

import numpy as np

from repro.core import appro, lcf, market_game, optimal_caching
from repro.core.bounds import stackelberg_poa_bound
from repro.core.virtual_cloudlets import VirtualCloudletSplit
from repro.game.best_response import best_response_dynamics, greedy_feasible_profile
from repro.game.equilibrium import is_nash_equilibrium
from repro.game.poa import worst_equilibrium_cost
from repro.market import generate_market
from repro.network import random_mec_network
from repro.utils.ascii_plot import line_chart
from repro.utils.tables import Table


def game_mechanics() -> None:
    print("=" * 68)
    print("1. The congestion game and its potential")
    print("=" * 68)
    network = random_mec_network(100, rng=5)
    market = generate_market(network, n_providers=40, rng=6)
    game = market_game(market)

    start = greedy_feasible_profile(game)
    result = best_response_dynamics(game, start)
    print(f"best-response dynamics: {result.rounds} rounds, "
          f"{result.moves} improving moves, converged={result.converged}")
    print(f"Rosenthal potential: {result.potential_trace[0]:.2f} -> "
          f"{result.final_potential:.2f} (monotone decrease)")
    print(f"equilibrium verified: "
          f"{is_nash_equilibrium(game, result.profile)}")
    print(f"social cost at the equilibrium: "
          f"{game.social_cost(result.profile):.2f}")


def stackelberg_sweep() -> None:
    print()
    print("=" * 68)
    print("2. Coordination vs selfishness (the Fig. 3 mechanism)")
    print("=" * 68)
    network = random_mec_network(150, rng=11)
    market = generate_market(network, n_providers=60, rng=12)

    xs = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
    costs = []
    table = Table(["1 - xi", "social cost", "coordinated", "selfish"])
    for one_minus_xi in xs:
        outcome = lcf(market, xi=1.0 - one_minus_xi, allow_remote=True).assignment
        costs.append(outcome.social_cost)
        table.add_row([
            one_minus_xi,
            outcome.social_cost,
            outcome.coordinated_cost,
            outcome.selfish_cost,
        ])
    print(table.render(
        title="posted-price market: more selfishness, higher social cost"
    ))
    print()
    print(line_chart(
        {"LCF social cost": costs}, x_values=list(xs),
        title="the Fig. 3(a) trend", height=8, width=42,
    ))


def poa_on_small_instance() -> None:
    print()
    print("=" * 68)
    print("3. Empirical Price of Anarchy vs Theorem 1")
    print("=" * 68)
    network = random_mec_network(30, rng=21)
    market = generate_market(network, n_providers=8, rng=22)

    optimum = optimal_caching(market)
    print(f"exact optimal social cost: {optimum.social_cost:.2f}")

    approx = appro(market, slot_pricing="flat")
    print(f"Appro (Eq. 9 costs):       {approx.social_cost:.2f} "
          f"(ratio {approx.social_cost / optimum.social_cost:.3f}, "
          f"Lemma 2 bound {approx.info['ratio_bound']:.0f})")

    game = market_game(market)
    worst, _ = worst_equilibrium_cost(game, trials=20, rng=23)
    split = VirtualCloudletSplit(market)
    bound = stackelberg_poa_bound(split.delta, split.kappa, xi=0.5)
    print(f"worst sampled equilibrium: {worst:.2f} "
          f"(PoA {worst / optimum.social_cost:.3f}, "
          f"Theorem 1 bound {bound:.0f})")


if __name__ == "__main__":
    game_mechanics()
    stackelberg_sweep()
    poa_on_small_instance()

"""An AR/VR service market — the paper's motivating workload.

Builds a heterogeneous provider population by hand: a few large interactive
VR operators (heavy rendering, strict sync), a tier of AR overlay services,
and a long tail of small video-processing providers. Shows how LCF
coordinates the heavyweights (Largest Cost First means exactly them), how
the congestion model choice affects the market, and what each segment pays.

Run:  python examples/ar_streaming_market.py
"""

from repro.core import lcf, jo_offload_cache
from repro.market import Pricing, Service, ServiceMarket, ServiceProvider
from repro.market.costs import MM1Congestion, QuadraticCongestion
from repro.network import random_mec_network
from repro.utils.rng import as_rng
from repro.utils.tables import Table

SEGMENTS = {
    # name: (count, requests, a_l, b_l, data GB, sync/epoch)
    "vr-interactive": (6, 150, 0.010, 0.30, 5.0, 30.0),
    "ar-overlay": (18, 100, 0.008, 0.20, 2.0, 10.0),
    "video-tail": (36, 60, 0.006, 0.15, 1.0, 5.0),
}


def build_market(congestion=None):
    rng = as_rng(99)
    network = random_mec_network(150, rng=rng)
    nodes = sorted(network.graph.nodes)
    dcs = [dc.node_id for dc in network.data_centers]

    providers = []
    pid = 0
    segment_of = {}
    for name, (count, requests, a_l, b_l, volume, sync) in SEGMENTS.items():
        for _ in range(count):
            service = Service(
                service_id=pid,
                requests=requests,
                compute_per_request=a_l,
                bandwidth_per_request=b_l,
                data_volume_gb=volume,
                sync_frequency=sync,
                request_traffic_gb=requests * 0.1,  # ~100 MB per request
                instantiation_cost=0.15,
                home_dc=dcs[pid % len(dcs)],
                user_node=nodes[int(rng.integers(0, len(nodes)))],
            )
            providers.append(ServiceProvider(provider_id=pid, service=service))
            segment_of[pid] = name
            pid += 1
    market = ServiceMarket(
        network, providers, pricing=Pricing.random(rng), congestion=congestion
    )
    return market, segment_of


def main() -> None:
    market, segment_of = build_market()
    result = lcf(market, xi=0.7, allow_remote=True)
    assignment = result.assignment

    # Who did the leader coordinate? LCF picks the largest-cost providers,
    # which should be dominated by the interactive VR segment.
    coordinated_segments = {}
    for pid in result.coordinated_ids:
        seg = segment_of[pid]
        coordinated_segments[seg] = coordinated_segments.get(seg, 0) + 1
    print("coordinated providers per segment (Largest Cost First):")
    for name, (count, *_rest) in SEGMENTS.items():
        picked = coordinated_segments.get(name, 0)
        print(f"  {name:<15} {picked:>2} of {count}")

    table = Table(["segment", "providers", "mean cost ($)", "cached", "remote"])
    for name, (count, *_rest) in SEGMENTS.items():
        members = [pid for pid, seg in segment_of.items() if seg == name]
        costs = [assignment.provider_cost(pid) for pid in members]
        cached = sum(1 for pid in members if pid in assignment.placement)
        table.add_row([
            name, count, sum(costs) / len(costs), cached, count - cached,
        ])
    print()
    print(table.render(title="Per-segment outcome under LCF (1 - xi = 0.3)"))

    jo = jo_offload_cache(market)
    print(f"\nsocial cost: LCF {assignment.social_cost:.1f} vs "
          f"JoOffloadCache {jo.social_cost:.1f}")

    # The paper's derivation needs only non-decreasing congestion: swap the
    # proportional model for quadratic and M/M/1 and the mechanism still
    # beats the uncoordinated baseline.
    print("\ncongestion-model ablation (LCF vs JoOffloadCache):")
    for label, model in (
        ("quadratic", QuadraticCongestion(scale=8.0)),
        ("mm1", MM1Congestion(capacity=64)),
    ):
        alt_market, _ = build_market(congestion=model)
        alt_lcf = lcf(alt_market, xi=0.7, allow_remote=True).assignment
        alt_jo = jo_offload_cache(alt_market)
        print(f"  {label:<10} LCF {alt_lcf.social_cost:8.1f}   "
              f"Jo {alt_jo.social_cost:8.1f}")


if __name__ == "__main__":
    main()

"""Path shim: lets ``python -m reprolint`` run from the repository root.

The implementation lives in ``tools/reprolint`` (kept out of ``src`` so the
linter is never importable from library code).  This stub only repoints the
package ``__path__`` at the real sources; every submodule — including
``reprolint.__main__`` — then resolves from ``tools/reprolint``.

Equivalent invocation without the shim: ``PYTHONPATH=tools python -m
reprolint src tests``.
"""

import os

__path__ = [
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "tools", "reprolint")
]

from reprolint.diagnostics import Diagnostic
from reprolint.engine import lint_file, lint_paths, lint_source, lint_sources
from reprolint.project import ProjectContext, build_project
from reprolint.rules import ALL_RULES, TREE_RULES

__version__ = "2.0.0"

__all__ = [
    "ALL_RULES",
    "TREE_RULES",
    "Diagnostic",
    "ProjectContext",
    "__version__",
    "build_project",
    "lint_file",
    "lint_paths",
    "lint_source",
    "lint_sources",
]

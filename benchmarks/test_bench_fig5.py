"""Fig. 5 — social cost and running time on the AS1755 testbed emulator.

Runs the three algorithms as Ryu-style controller apps over the emulated
five-switch underlay + OVS/VXLAN overlay and reports the measured social
cost, controller wall-clock runtimes and flow-level transfer metrics.
"""

import numpy as np

from repro.experiments.figures import fig5_testbed
from repro.experiments.report import render_sweep
from repro.utils.tables import Table


def test_bench_fig5(benchmark, config, emit):
    result = benchmark.pedantic(fig5_testbed, args=(config,), rounds=1, iterations=1)
    emit(render_sweep(result, metrics=("social_cost", "runtime_s")))

    # Emulated transfer metrics (not in the paper's figure, but what the
    # real testbed would additionally expose).
    flows = result.extra["flow_metrics"]
    table = Table(["providers"] + [f"{alg} makespan(s)" for alg in result.algorithms])
    for x, row in zip(result.x_values, flows):
        table.add_row([x] + [row[alg]["makespan"] for alg in result.algorithms])
    emit(table.render(title="[fig5] emulated flow makespan"))

    # Fig. 5(a): LCF cheapest on the testbed.
    lcf = np.mean(result.series("LCF"))
    assert lcf < np.mean(result.series("JoOffloadCache"))
    assert lcf < np.mean(result.series("OffloadCache"))

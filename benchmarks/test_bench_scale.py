"""Scale benchmark for the batch best-response kernel (``BENCH_scale.json``).

Times equilibrium computation on large service markets — 400 to 1000
network nodes, 4000 to 10^4 providers — for the incremental and batch
engines, in providers/sec (placed providers divided by best-of-N dynamics
wall clock from the same greedy start).

Correctness is asserted unconditionally: both engines must reach the
bit-identical fixed point (profile, move log, potential trace) on every
tier. Performance is asserted on the largest tier: the batch kernel must
be at least as fast as the incremental engine, and must stay within 10%
of the previously recorded providers/sec if ``BENCH_scale.json`` already
holds a number for that tier (the CI regression bar).

The start profile is built by vectorised compiled-table entry scans
(``CompiledGame.entry_costs``) rather than ``greedy_feasible_profile`` —
the object-graph greedy is itself O(providers x cloudlets) Python loops
and would dominate the setup at this scale. Cloudlet capacity is scaled
up (``vms_per_cloudlet``) so the market can actually absorb 10^4
providers; the game is restricted to the placed players, exactly as the
``lcf`` selfish phase restricts its dynamics.
"""

import json
import time

import numpy as np
import pytest

from benchmarks.conftest import bench_path, record_bench

from repro.core.bridge import market_game
from repro.game.best_response import best_response_dynamics
from repro.market.workload import generate_market
from repro.network.generators import random_mec_network

RESULTS_PATH = bench_path("BENCH_scale.json")

#: (network nodes, providers) tiers; the last is the CI regression tier.
TIERS = ((400, 4000), (700, 7000), (1000, 10000))
LARGE_TIER_NODES = TIERS[-1][0]

#: Allowed slowdown against the previously recorded providers/sec.
REGRESSION_SLACK = 0.9


def _record(section: str, payload: dict) -> None:
    record_bench("BENCH_scale.json", section, payload)


def _prior_batch_pps(section: str) -> float:
    if not RESULTS_PATH.exists():
        return 0.0
    data = json.loads(RESULTS_PATH.read_text())
    return float(data.get(section, {}).get("batch_pps", 0.0))


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _scale_instance(n_nodes: int, n_providers: int):
    """A large market plus a greedy start built from compiled entry scans."""
    network = random_mec_network(
        n_nodes, rng=n_nodes, vms_per_cloudlet=(90, 180)
    )
    market = generate_market(network, n_providers, rng=n_nodes + 1)
    game_all = market_game(market)
    c = game_all.compile()
    profile = {}
    occ = c.occupancy_vector(profile)
    loads = c.load_matrix(profile)
    for pid in game_all.players:
        pi = c.player_index[pid]
        costs = c.entry_costs(pi, occ, loads, posted=False)
        j = int(np.argmin(costs))
        if not np.isfinite(costs[j]):
            continue
        profile[pid] = c.resources[j]
        occ[j] += 1
        if loads is not None:
            loads[j] += c.demand[pi, j]
    game = market_game(market, players=list(profile))
    return game, game.compile(), profile


@pytest.mark.parametrize("n_nodes,n_providers", TIERS)
def test_bench_scale_tier(n_nodes, n_providers, emit):
    section = f"scale_{n_nodes}"
    prior_pps = _prior_batch_pps(section)
    game, compiled, start = _scale_instance(n_nodes, n_providers)
    placed = len(start)
    assert placed >= int(0.9 * n_providers), (
        f"fixture must absorb the tier: only {placed}/{n_providers} placed"
    )

    outcomes = {}
    timings = {}
    repeats = 3 if n_nodes < LARGE_TIER_NODES else 2
    for engine in ("incremental", "batch"):
        outcomes[engine] = best_response_dynamics(
            game, dict(start), engine=engine, compiled=compiled,
            record_moves=True,
        )
        timings[engine] = _best_of(
            lambda e=engine: best_response_dynamics(
                game, dict(start), engine=e, compiled=compiled
            ),
            repeats=repeats,
        )

    incr, batch = outcomes["incremental"], outcomes["batch"]
    assert batch.profile == incr.profile
    assert batch.move_log == incr.move_log
    assert batch.potential_trace == incr.potential_trace
    assert batch.converged and incr.converged

    pps = {e: placed / timings[e] for e in timings}
    _record(
        section,
        {
            "n_nodes": n_nodes,
            "n_providers": n_providers,
            "placed": placed,
            "moves": incr.moves,
            "rounds": incr.rounds,
            "incremental_s": timings["incremental"],
            "batch_s": timings["batch"],
            "incremental_pps": pps["incremental"],
            "batch_pps": pps["batch"],
            "speedup": timings["incremental"] / timings["batch"],
        },
    )
    emit(
        f"[scale {n_nodes}n/{n_providers}p] incremental "
        f"{pps['incremental']:.0f} pps, batch {pps['batch']:.0f} pps "
        f"({timings['incremental'] / timings['batch']:.2f}x), "
        f"moves={incr.moves} rounds={incr.rounds}"
    )

    if n_nodes == LARGE_TIER_NODES:
        assert pps["batch"] >= pps["incremental"], (
            f"batch kernel regressed below the incremental engine on the "
            f"large tier: {pps['batch']:.0f} < {pps['incremental']:.0f} "
            f"providers/sec"
        )
        if prior_pps:
            assert pps["batch"] >= REGRESSION_SLACK * prior_pps, (
                f"batch providers/sec regressed more than 10% against the "
                f"recorded baseline: {pps['batch']:.0f} < "
                f"{REGRESSION_SLACK:.2f} * {prior_pps:.0f}"
            )

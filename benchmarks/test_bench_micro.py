"""Micro-benchmarks of the core substrates (pytest-benchmark timings).

These time the individual building blocks — the GAP LP + rounding,
best-response dynamics, Algorithm 1 end-to-end, and the flow-level
emulator — so regressions in any layer show up independently of the
figure-level sweeps.
"""

import numpy as np
import pytest

from repro.core.appro import appro
from repro.core.bridge import market_game
from repro.core.lcf import lcf
from repro.game.best_response import best_response_dynamics, greedy_feasible_profile
from repro.gap.instance import GAPInstance
from repro.gap.shmoys_tardos import shmoys_tardos
from repro.market.workload import generate_market
from repro.network.generators import random_mec_network
from repro.network.zoo import as1755_mec_network
from repro.testbed.emulator import Testbed
from repro.testbed.flows import FlowSimulator


@pytest.fixture(scope="module")
def medium_market():
    network = random_mec_network(150, rng=1)
    return generate_market(network, n_providers=60, rng=2)


def test_bench_gap_shmoys_tardos(benchmark):
    rng = np.random.default_rng(1)
    instance = GAPInstance(
        costs=rng.uniform(1, 10, size=(60, 40)),
        weights=np.ones((60, 40)),
        capacities=np.ones(40) * 2.0,
    )
    solution = benchmark(shmoys_tardos, instance)
    assert len(solution.assignment) == 60


def test_bench_best_response(benchmark, medium_market):
    game = market_game(medium_market)

    def run():
        start = greedy_feasible_profile(game)
        return best_response_dynamics(game, start)

    result = benchmark(run)
    assert result.converged


def test_bench_appro(benchmark, medium_market):
    result = benchmark(lambda: appro(medium_market, allow_remote=True))
    assert result.social_cost > 0


def test_bench_lcf(benchmark, medium_market):
    result = benchmark(lambda: lcf(medium_market, xi=0.7, allow_remote=True))
    assert result.assignment.social_cost > 0


def test_bench_topology_generation(benchmark):
    network = benchmark(lambda: random_mec_network(250, rng=3))
    assert network.num_nodes == 250


def test_bench_testbed_build(benchmark):
    testbed = benchmark(lambda: Testbed(rng=4))
    assert testbed.network.num_nodes == 87


def test_bench_flow_emulation(benchmark):
    def run():
        sim = FlowSimulator({("l", i): 100.0 for i in range(50)})
        rng = np.random.default_rng(5)
        for k in range(200):
            resources = [("l", int(r)) for r in rng.choice(50, size=3, replace=False)]
            sim.add_flow(0, 1, float(rng.uniform(0.5, 3.0)), resources)
        return sim.run()

    metrics = benchmark(run)
    assert metrics["total_gb"] > 0

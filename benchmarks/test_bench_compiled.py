"""Compiled-representation benchmarks (writes ``BENCH_compiled.json``).

Times the array-backed :class:`~repro.market.compiled.CompiledMarket` paths
against the object-graph reference pipeline (``representation="object"``:
per-pair cost-model queries, scalar GAP build, scalar LP assembly, scalar
greedy rounds, per-game table recompilation) on the same markets:

* **Appro per call** — one Algorithm 1 run on a warmed market, for both GAP
  solvers;
* **LCF xi-sweep** — the Fig. 3 shape: every xi evaluated on a common
  per-repetition market, serially (``workers=1`` on both sides, so the
  speedup is pure representation, not parallelism).

Correctness is asserted unconditionally: placements, rejection sets and
social costs must be identical before any timing is trusted. The wall-clock
gates apply where the representation actually is the hot path (the greedy
solver); with ``shmoys_tardos`` both representations feed the identical LP
to the same HiGHS C++ solve, which bounds the achievable ratio — those
timings are recorded but gated only loosely.

Each test folds its timings into ``benchmarks/BENCH_compiled.json`` so the
perf trajectory is recorded from this PR onward (partial ``-k`` selections
merge instead of clobbering).
"""

import time

from repro.core.appro import appro
from repro.core.lcf import lcf
from repro.market.workload import generate_market
from repro.network.generators import random_mec_network

from benchmarks.conftest import bench_path, record_bench

RESULTS_PATH = bench_path("BENCH_compiled.json")

N_NODES = 150
N_PROVIDERS = 60
XI_VALUES = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)
REPETITIONS = 2


def _record(section: str, payload: dict) -> None:
    record_bench("BENCH_compiled.json", section, payload)


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _make_market(seed: int):
    network = random_mec_network(N_NODES, rng=seed)
    return generate_market(network, n_providers=N_PROVIDERS, rng=seed + 1)


def test_bench_appro_per_call(emit):
    """One Appro run per representation on a warmed market: identical
    assignments; the greedy solver (no C++ LP in the loop) must be >= 2x."""
    market = _make_market(1)
    payload = {"n_nodes": N_NODES, "n_providers": N_PROVIDERS}
    speedups = {}
    for solver in ("greedy", "shmoys_tardos"):
        compiled = appro(market, gap_solver=solver, representation="compiled")
        obj = appro(market, gap_solver=solver, representation="object")
        assert compiled.placement == obj.placement
        assert compiled.rejected == obj.rejected
        assert compiled.social_cost == obj.social_cost

        t_c = _best_of(
            lambda s=solver: appro(market, gap_solver=s, representation="compiled")
        )
        t_o = _best_of(
            lambda s=solver: appro(market, gap_solver=s, representation="object")
        )
        speedups[solver] = t_o / t_c
        payload[solver] = {
            "object_s": t_o,
            "compiled_s": t_c,
            "speedup": speedups[solver],
        }
        emit(
            f"[appro/{solver}] n={N_PROVIDERS}: object {t_o*1e3:.1f} ms, "
            f"compiled {t_c*1e3:.1f} ms -> {speedups[solver]:.2f}x"
        )
    _record("appro", payload)
    assert speedups["greedy"] >= 2.0
    # Both representations hand the identical LP to HiGHS, whose C++ solve
    # dominates this solver — only the Python share can shrink.
    assert speedups["shmoys_tardos"] >= 1.2


def _xi_sweep(representation: str, gap_solver: str) -> float:
    """The Fig. 3 sweep shape: per repetition one market, every xi evaluated
    on it (serial; both representations run the identical schedule).
    Returns the summed social cost as the correctness fingerprint."""
    total = 0.0
    for rep in range(REPETITIONS):
        market = _make_market(100 + rep)
        if representation == "compiled":
            market.compile()
        for xi in XI_VALUES:
            result = lcf(
                market, xi=xi, gap_solver=gap_solver, representation=representation
            )
            total += result.assignment.social_cost
    return total


def test_bench_lcf_xi_sweep(emit):
    """Object vs compiled xi-sweep, workers unchanged (serial on both
    sides): identical social costs; >= 2x with the greedy solver."""
    payload = {
        "n_nodes": N_NODES,
        "n_providers": N_PROVIDERS,
        "xi_values": list(XI_VALUES),
        "repetitions": REPETITIONS,
        "workers": 1,
    }
    speedups = {}
    for solver in ("greedy", "shmoys_tardos"):
        fingerprint_c = _xi_sweep("compiled", solver)
        fingerprint_o = _xi_sweep("object", solver)
        assert fingerprint_c == fingerprint_o

        t_c = _best_of(lambda s=solver: _xi_sweep("compiled", s), repeats=2)
        t_o = _best_of(lambda s=solver: _xi_sweep("object", s), repeats=2)
        speedups[solver] = t_o / t_c
        payload[solver] = {
            "object_s": t_o,
            "compiled_s": t_c,
            "speedup": speedups[solver],
        }
        emit(
            f"[lcf-sweep/{solver}] {len(XI_VALUES)} xi x {REPETITIONS} reps: "
            f"object {t_o:.2f} s, compiled {t_c:.2f} s -> {speedups[solver]:.2f}x"
        )
    _record("lcf_sweep", payload)
    assert speedups["greedy"] >= 2.0
    assert speedups["shmoys_tardos"] >= 1.2

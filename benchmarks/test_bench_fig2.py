"""Fig. 2 — algorithm performance vs GT-ITM network size.

Regenerates all four panels: (a) social cost, (b) selfish-provider cost,
(c) coordinated-provider cost, (d) running time, for LCF / JoOffloadCache /
OffloadCache with |N| providers and 1-xi = 0.3.
"""

import numpy as np

from repro.experiments.figures import fig2_network_size
from repro.experiments.report import render_sweep
from repro.experiments.stats import paired_comparison, summarize


def test_bench_fig2(benchmark, config, emit):
    result = benchmark.pedantic(
        fig2_network_size, args=(config,), rounds=1, iterations=1
    )
    emit(render_sweep(
        result,
        metrics=("social_cost", "selfish_cost", "coordinated_cost", "runtime_s"),
    ))

    # Statistical significance of the headline ordering (paired over the
    # size sweep, common random numbers per point).
    comparison = paired_comparison(
        result.series("LCF"), result.series("JoOffloadCache")
    )
    emit(summarize("LCF", "JoOffloadCache", comparison))

    # Paper shape, Fig. 2(a): LCF cheapest, OffloadCache costliest,
    # averaged across the size sweep.
    lcf = np.mean(result.series("LCF"))
    jo = np.mean(result.series("JoOffloadCache"))
    off = np.mean(result.series("OffloadCache"))
    assert lcf < jo < off

    # Fig. 2(d): LCF pays for the LP; the greedy baselines are faster.
    assert np.mean(result.series("LCF", "runtime_s")) > np.mean(
        result.series("JoOffloadCache", "runtime_s")
    )

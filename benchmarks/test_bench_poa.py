"""Ablation A1 — empirical approximation ratio and Price of Anarchy.

Small markets where the exact optimum is computable: verifies Lemma 2
(Appro with the literal Eq. 9 costs stays within 2*delta*kappa of the
optimum) and Theorem 1 (the worst sampled equilibrium stays within the PoA
bound), and reports how loose the closed forms are in practice.
"""

from repro.experiments.figures import poa_study
from repro.utils.tables import Table


def test_bench_poa(benchmark, emit):
    out = benchmark.pedantic(
        poa_study,
        kwargs=dict(n_providers=8, n_nodes=30, repetitions=5, seed=11),
        rounds=1,
        iterations=1,
    )
    table = Table(["quantity", "value"])
    for key, value in out.items():
        table.add_row([key, value])
    emit(table.render(title="[A1] empirical vs closed-form bounds"))

    assert 1.0 <= out["empirical_appro_ratio"] <= out["lemma2_bound"]
    assert 1.0 - 1e-9 <= out["empirical_poa"] <= out["theorem1_bound"]
    # The LP-certified gap of marginal-priced Appro is far tighter than
    # Lemma 2's closed form.
    assert 1.0 - 1e-9 <= out["appro_marginal_certified_gap"] <= 1.25

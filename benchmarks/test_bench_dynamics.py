"""Extension benchmark — the dynamic market.

Two questions, one per test:

1. **Throughput** — what did the mutation protocol buy? Epochs/sec of the
   replan policy under three arms: the pre-refactor reference (market object
   graph rebuilt and LCF cold-started every epoch), delta-patched compiled
   tables with cold replans, and delta + warm-started replans (survivors
   keep strategies, the GAP LP is skipped). The acceptance bar for PR 4 is
   delta+warm >= 5x the cold rebuild.
2. **Quality** — the stability/optimality trade-off implied by the paper's
   "temporarily cached" services: replan vs hysteresis vs incremental.

Results land in ``BENCH_dynamics.json`` next to this file.
"""

import time

from repro.dynamics import DynamicMarketSimulation, PopulationProcess
from repro.network.generators import random_mec_network
from repro.utils.tables import Table

from benchmarks.conftest import bench_path, record_bench

RESULTS_PATH = bench_path("BENCH_dynamics.json")

N_NODES = 100
EPOCHS = 12
ARRIVAL_RATE = 5.0
MEAN_LIFETIME = 8.0
INITIAL_POPULATION = 40


def _record(section: str, payload: dict) -> None:
    record_bench("BENCH_dynamics.json", section, payload)


def _best_of(fn, repeats: int = 2) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _network():
    return random_mec_network(N_NODES, rng=1)


def _run(network, policy, representation="compiled", warm_start=True, **kwargs):
    population = PopulationProcess(
        network, arrival_rate=ARRIVAL_RATE, mean_lifetime=MEAN_LIFETIME,
        rng=3, initial_population=INITIAL_POPULATION,
    )
    sim = DynamicMarketSimulation(
        network, population, policy=policy,
        representation=representation, warm_start=warm_start, **kwargs,
    )
    return sim.run(EPOCHS)


def test_bench_epochs_per_second(emit):
    """Cold rebuild vs delta-patched vs delta+warm, replan policy."""
    network = _network()
    arms = {
        "cold_object_rebuild": dict(representation="object", warm_start=False),
        "cold_compiled_delta": dict(representation="compiled", warm_start=False),
        "warm_compiled_delta": dict(representation="compiled", warm_start=True),
    }
    times = {
        name: _best_of(lambda kw=kw: _run(network, "replan", **kw))
        for name, kw in arms.items()
    }
    eps = {name: EPOCHS / t for name, t in times.items()}
    speedup = {
        name: eps[name] / eps["cold_object_rebuild"] for name in arms
    }

    table = Table(["arm", "time (s)", "epochs/sec", "speedup"])
    for name in arms:
        table.add_row([name, times[name], eps[name], speedup[name]])
    emit(table.render(
        title=f"[dynamics] replan throughput, {EPOCHS} epochs, "
              f"{N_NODES} nodes, pop ~{INITIAL_POPULATION}"
    ))

    _record("throughput", {
        "epochs": EPOCHS,
        "n_nodes": N_NODES,
        "initial_population": INITIAL_POPULATION,
        "seconds": times,
        "epochs_per_sec": eps,
        "speedup_vs_cold": speedup,
    })

    # PR 4's acceptance bar: delta-patched tables + warm-started replans
    # beat the full cold recompile by at least 5x.
    assert speedup["warm_compiled_delta"] >= 5.0, speedup
    # ...and the delta patching alone must never be a regression.
    assert speedup["cold_compiled_delta"] >= 1.0, speedup


def test_bench_policy_tradeoff(emit):
    """Replan vs hysteresis vs incremental: cost, migrations, replans."""
    network = _network()
    summaries = {}
    times = {}
    for policy in ("replan", "hysteresis", "incremental"):
        t0 = time.perf_counter()
        summaries[policy] = _run(network, policy)
        times[policy] = time.perf_counter() - t0

    table = Table([
        "policy", "total cost", "social/epoch", "migrations",
        "migration $", "replans", "epochs/sec",
    ])
    for policy, summary in summaries.items():
        table.add_row([
            policy,
            summary.total_cost,
            summary.mean_social_cost,
            summary.total_migrations,
            summary.total_migration_cost,
            summary.total_replans,
            EPOCHS / times[policy],
        ])
    emit(table.render(
        title=f"[dynamics] policy trade-off, {EPOCHS} epochs"
    ))

    _record("policies", {
        policy: {
            "total_cost": summary.total_cost,
            "mean_social_cost": summary.mean_social_cost,
            "migrations": summary.total_migrations,
            "migration_cost": summary.total_migration_cost,
            "replans": summary.total_replans,
            "epochs_per_sec": EPOCHS / times[policy],
        }
        for policy, summary in summaries.items()
    })

    replan = summaries["replan"]
    hysteresis = summaries["hysteresis"]
    incremental = summaries["incremental"]
    # Replanning buys per-epoch quality; incremental never migrates;
    # hysteresis sits in between on both axes. The warm replan is a
    # heuristic, so the hysteresis comparisons get 5% slack — a lucky
    # anchor can nose ahead of epoch-by-epoch replanning.
    assert replan.mean_social_cost <= incremental.mean_social_cost
    assert replan.mean_social_cost <= hysteresis.mean_social_cost * 1.05
    assert hysteresis.mean_social_cost <= incremental.mean_social_cost * 1.05
    assert incremental.total_migrations == 0
    assert incremental.total_replans == 0
    assert 0 < hysteresis.total_replans <= EPOCHS

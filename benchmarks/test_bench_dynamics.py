"""Extension benchmark — the dynamic market (replan vs incremental).

Not a paper figure: quantifies the stability/optimality trade-off implied
by the paper's "temporarily cached" services when the provider population
churns.
"""

import numpy as np

from repro.dynamics import DynamicMarketSimulation, PopulationProcess
from repro.network.generators import random_mec_network
from repro.utils.tables import Table


def _run_dynamics():
    network = random_mec_network(100, rng=1)
    rows = []
    for policy in ("replan", "incremental"):
        population = PopulationProcess(
            network, arrival_rate=5.0, mean_lifetime=8.0, rng=3,
            initial_population=40,
        )
        sim = DynamicMarketSimulation(network, population, policy=policy)
        summary = sim.run(12)
        rows.append((policy, summary))
    return rows


def test_bench_dynamics(benchmark, emit):
    rows = benchmark.pedantic(_run_dynamics, rounds=1, iterations=1)
    table = Table([
        "policy", "total cost", "social/epoch", "migrations", "migration $",
    ])
    for policy, summary in rows:
        table.add_row([
            policy,
            summary.total_cost,
            summary.mean_social_cost,
            summary.total_migrations,
            summary.total_migration_cost,
        ])
    emit(table.render(title="[dynamics] replan vs incremental, 12 epochs"))

    by_policy = dict(rows)
    # Replanning buys per-epoch quality; incremental never migrates.
    assert (
        by_policy["replan"].mean_social_cost
        <= by_policy["incremental"].mean_social_cost
    )
    assert by_policy["incremental"].total_migrations == 0
    assert by_policy["replan"].total_migrations > 0

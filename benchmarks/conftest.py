"""Shared benchmark configuration.

Every ``test_bench_fig*`` module regenerates one of the paper's evaluation
figures and prints the exact rows/series the figure plots (social cost,
per-group costs, running time), then asserts the paper's qualitative shape.
Absolute dollar values differ from the paper (our substrate is an emulator,
not the authors' testbed); the *orderings and trends* are the reproduction
target — see EXPERIMENTS.md.

The sweep sizes below are scaled so the whole benchmark suite finishes in a
few minutes; pass ``--paper-scale`` to run the full Section IV.A
configuration instead.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments.settings import PAPER, ExperimentConfig

#: Where ``BENCH_*.json`` artifacts live. Every benchmark module resolves
#: its artifact through :func:`bench_path`, so one environment variable —
#: ``REPRO_BENCH_DIR`` — relocates the whole set (CI points it at the
#: workspace artifact directory; the default keeps them next to the code).
BENCH_DIR = Path(
    os.environ.get("REPRO_BENCH_DIR", Path(__file__).resolve().parent)
)


def bench_path(name: str) -> Path:
    """The canonical location of one ``BENCH_*.json`` artifact."""
    return BENCH_DIR / name


def record_bench(name: str, section: str, payload: dict) -> None:
    """Fold one benchmark section into its artifact.

    Read-modify-write keyed by ``section``, so the modules of a suite (and
    repeated runs of one module) accumulate into a single document; the
    host's CPU count is stamped alongside for later interpretation of any
    parallel numbers.
    """
    path = bench_path(name)
    data = {}
    if path.exists():
        data = json.loads(path.read_text())
    data["cpu_count"] = os.cpu_count()
    data[section] = payload
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")

#: Benchmark-scale configuration: full code paths, reduced repetitions.
BENCH = ExperimentConfig(
    network_sizes=(50, 100, 150, 200, 250),
    default_size=150,
    n_providers=60,
    testbed_providers=40,
    xi_sweep=(0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
    repetitions=3,
    provider_sweep=(20, 40, 60, 80),
    data_volume_sweep=(1.0, 2.0, 3.0, 4.0, 5.0),
    demand_scale_sweep=(1.0, 2.0, 3.0, 4.0, 5.0),
    bandwidth_scale_sweep=(1.0, 2.0, 4.0, 6.0, 8.0),
)


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run the benchmarks at the paper's full Section IV.A scale",
    )
    parser.addoption(
        "--workers",
        type=int,
        default=None,
        help="sweep worker processes (0 = one per CPU; default serial); "
        "results are identical at any setting",
    )


@pytest.fixture(scope="session")
def config(request) -> ExperimentConfig:
    base = PAPER if request.config.getoption("--paper-scale") else BENCH
    workers = request.config.getoption("--workers")
    if workers is not None:
        base = base.with_(workers=workers)
    return base


@pytest.fixture
def emit(capsys):
    """Print benchmark tables to the real terminal (past pytest capture)."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _emit

"""Fig. 7 — impact of the maximum demands a_max and b_max on the testbed.

Scaling the maximum demand shrinks every cloudlet's virtual-cloudlet count
n_i (Eq. 7); when the slots (and eventually the real capacities) run out,
services are forced to stay in the remote cloud and the cost climbs — the
paper's "higher probability to reject some requests" effect.
"""

import numpy as np

from repro.experiments.figures import fig7_max_demands
from repro.experiments.report import render_sweep


def test_bench_fig7(benchmark, config, emit):
    results = benchmark.pedantic(
        fig7_max_demands, args=(config,), rounds=1, iterations=1
    )
    emit(render_sweep(results["a"], metrics=("social_cost", "rejected")))
    emit(render_sweep(results["b"], metrics=("social_cost", "rejected")))

    for panel in ("a", "b"):
        lcf = results[panel].series("LCF")
        rejections = results[panel].series("LCF", "rejected")
        # The binding end of the sweep rejects more and costs more than
        # the unconstrained start.
        assert rejections[-1] > rejections[0]
        assert lcf[-1] > lcf[0]

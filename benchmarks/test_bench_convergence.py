"""Extension benchmark — equilibrium-dynamics convergence speed.

Backs the paper's "efficient, stable" claim with numbers: rounds, moves
and wall clock of the dynamics that LCF's full-information mode relies on,
as the selfish population grows.
"""

from repro.experiments.convergence import convergence_study
from repro.utils.tables import Table


def test_bench_convergence(benchmark, emit):
    points = benchmark.pedantic(
        convergence_study,
        kwargs=dict(populations=(20, 40, 80), network_size=150, repetitions=3),
        rounds=1,
        iterations=1,
    )
    table = Table(["providers", "variant", "rounds", "moves", "wall (s)"])
    for p in points:
        table.add_row([p.n_providers, p.variant, p.rounds, p.moves, p.wall_s])
    emit(table.render(title="[convergence] best-response dynamics scaling"))

    assert all(p.all_converged and p.all_equilibria for p in points)
    # Round-robin best response stays in single-digit rounds even at 80
    # selfish players.
    best = [p for p in points if p.variant == "best"]
    assert max(p.rounds for p in best) <= 10

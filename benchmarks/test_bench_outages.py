"""Extension benchmark — outage recovery.

How fast can the market absorb cloudlet failures?  The same outage trace
is replayed against two recovery paths:

* **cold replan** — the reference: market object graph rebuilt every
  epoch, every epoch replanned from a cold LCF start, outages absorbed by
  yet another cold replan;
* **warm failover** — the fault-tolerant path this PR ships: one
  persistent delta-patched compiled market, displaced providers re-enter
  greedily at posted prices, survivors never move.

The acceptance bar: warm failover sustains at least 5x the epochs/sec of
the cold replan.  A warm *replan* arm sits in between for context (full
recovery quality, warm speed).

Each arm builds its own identically-seeded network and trace, because
outages mutate the shared cloudlet objects in place.

Results land in ``BENCH_outages.json`` next to this file.
"""

import time

from repro.dynamics import (
    DynamicMarketSimulation,
    IndependentOutageTrace,
    PopulationProcess,
)
from repro.network.generators import random_mec_network
from repro.utils.tables import Table

from benchmarks.conftest import bench_path, record_bench

RESULTS_PATH = bench_path("BENCH_outages.json")

N_NODES = 100
EPOCHS = 12
ARRIVAL_RATE = 5.0
MEAN_LIFETIME = 8.0
INITIAL_POPULATION = 40
MTTF = 4.0
MTTR = 2.0


def _record(section: str, payload: dict) -> None:
    record_bench("BENCH_outages.json", section, payload)


def _best_of(fn, repeats: int = 2):
    best_t, out = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best_t:
            best_t, out = elapsed, result
    return best_t, out


def _run(policy, representation, warm_start, recovery):
    # Fresh network + trace per run: outages zero the live cloudlet
    # capacities, so arms must not share topology objects.
    network = random_mec_network(N_NODES, rng=1)
    population = PopulationProcess(
        network, arrival_rate=ARRIVAL_RATE, mean_lifetime=MEAN_LIFETIME,
        rng=3, initial_population=INITIAL_POPULATION,
    )
    trace = IndependentOutageTrace(network, mttf=MTTF, mttr=MTTR, rng=5)
    sim = DynamicMarketSimulation(
        network, population, policy=policy,
        representation=representation, warm_start=warm_start,
        outages=trace, recovery=recovery,
    )
    return sim.run(EPOCHS)


def test_bench_outage_recovery(emit):
    """Warm failover vs warm replan vs the cold-replan reference."""
    arms = {
        "cold_replan": dict(
            policy="replan", representation="object",
            warm_start=False, recovery="replan",
        ),
        "warm_replan": dict(
            policy="replan", representation="compiled",
            warm_start=True, recovery="replan",
        ),
        "warm_failover": dict(
            policy="incremental", representation="compiled",
            warm_start=True, recovery="failover",
        ),
    }
    times, summaries = {}, {}
    for name, kw in arms.items():
        times[name], summaries[name] = _best_of(lambda kw=kw: _run(**kw))

    eps = {name: EPOCHS / t for name, t in times.items()}
    speedup = {name: eps[name] / eps["cold_replan"] for name in arms}

    table = Table([
        "arm", "time (s)", "epochs/sec", "speedup",
        "displaced", "SLA viol.", "mean social",
    ])
    for name, summary in summaries.items():
        table.add_row([
            name, times[name], eps[name], speedup[name],
            summary.total_displaced, summary.total_sla_violations,
            summary.mean_social_cost,
        ])
    emit(table.render(
        title=f"[outages] recovery throughput, {EPOCHS} epochs, "
              f"{N_NODES} nodes, MTTF={MTTF:g}, MTTR={MTTR:g}"
    ))

    _record("recovery", {
        "epochs": EPOCHS,
        "n_nodes": N_NODES,
        "initial_population": INITIAL_POPULATION,
        "mttf": MTTF,
        "mttr": MTTR,
        "seconds": times,
        "epochs_per_sec": eps,
        "speedup_vs_cold_replan": speedup,
        "availability": {
            name: {
                "displaced": summary.total_displaced,
                "sla_violations": summary.total_sla_violations,
                "cloudlet_downtime": summary.cloudlet_downtime,
                "mean_social_cost": summary.mean_social_cost,
            }
            for name, summary in summaries.items()
        },
    })

    # The trace must actually have exercised the recovery machinery.
    for name, summary in summaries.items():
        assert summary.cloudlet_downtime > 0, name
        assert summary.total_displaced > 0, name

    # The acceptance bar: the warm failover path absorbs the same outage
    # trace at >= 5x the cold-replan reference's epoch rate.
    assert speedup["warm_failover"] >= 5.0, speedup
    # Warm replanning must itself never regress below the cold reference.
    assert speedup["warm_replan"] >= 1.0, speedup

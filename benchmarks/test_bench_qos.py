"""Extension benchmark — achieved user latency by algorithm.

Not a paper figure (the paper optimises dollars and motivates with
latency); this bench closes the loop by measuring the motion-to-photon
style delay each algorithm's placement delivers. The honest picture:
OffloadCache — which optimises *only* delay — wins raw latency while
losing badly on cost (Figs. 2–6); LCF lands between the baselines on
latency while winning cost, i.e. the coordinated market does not buy its
savings with user-visible lag.
"""

import numpy as np

from repro.core import jo_offload_cache, lcf, offload_cache
from repro.market.qos import latency_report
from repro.market.workload import generate_market
from repro.network.generators import random_mec_network
from repro.utils.tables import Table


def _run(config):
    rows = []
    for seed in range(min(3, config.repetitions)):
        network = random_mec_network(config.default_size, rng=seed)
        market = generate_market(network, config.n_providers, rng=seed + 10)
        for name, assignment in (
            ("LCF", lcf(market, xi=0.7, allow_remote=True).assignment),
            ("JoOffloadCache", jo_offload_cache(market)),
            ("OffloadCache", offload_cache(market)),
        ):
            report = latency_report(assignment)
            rows.append(
                (seed, name, report.mean_ms, report.p95_ms, report.violation_rate)
            )
    return rows


def test_bench_qos(benchmark, config, emit):
    rows = benchmark.pedantic(_run, args=(config,), rounds=1, iterations=1)
    table = Table(["algorithm", "mean ms", "p95 ms", "violations"])
    by_alg = {}
    for _seed, name, mean_ms, p95_ms, viol in rows:
        by_alg.setdefault(name, []).append((mean_ms, p95_ms, viol))
    for name, entries in by_alg.items():
        table.add_row([
            name,
            float(np.mean([e[0] for e in entries])),
            float(np.mean([e[1] for e in entries])),
            float(np.mean([e[2] for e in entries])),
        ])
    emit(table.render(title="[qos] achieved user latency (50 ms budget)"))

    means = {name: np.mean([e[0] for e in entries]) for name, entries in by_alg.items()}
    # Delay-only optimisation wins raw latency; LCF must not be the worst.
    assert means["OffloadCache"] <= means["LCF"] + 1e-9
    assert means["LCF"] <= means["JoOffloadCache"] * 1.25

"""Engine and parallel-harness benchmarks (writes ``BENCH_engine.json``).

Times the two levers that speed figure regeneration up:

* the **incremental best-response engine** (compiled cost tables,
  delta-maintained loads/occupancy) against the naive reference loops, on
  a best-response-heavy game where the engine is the hot path;
* the **parallel sweep harness** against a serial run of the same seeded
  Fig. 2-style grid.

Correctness is asserted unconditionally: both engines must produce the
identical equilibrium, and the parallel sweep must be bit-identical to
the serial one. Wall-clock assertions are gated on what the host can
honestly deliver — the engine speedup is single-core and always
asserted; the 4-worker sweep speedup additionally needs >= 4 CPUs.

Each test folds its timings into ``benchmarks/BENCH_engine.json`` so the
numbers survive the run (and partial ``-k`` selections merge instead of
clobbering).
"""

import os
import time

from repro.core.bridge import market_game
from repro.experiments.figures import fig2_network_size
from repro.game.best_response import best_response_dynamics, greedy_feasible_profile
from repro.market.workload import generate_market
from repro.network.generators import random_mec_network

from benchmarks.conftest import bench_path, record_bench

RESULTS_PATH = bench_path("BENCH_engine.json")

#: Comparable (non-wall-clock) fields of AlgorithmMetrics.
_METRIC_FIELDS = ("social_cost", "coordinated_cost", "selfish_cost", "rejected", "samples")


def _record(section: str, payload: dict) -> None:
    record_bench("BENCH_engine.json", section, payload)


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_bench_engine_vs_naive(emit):
    """Naive vs incremental best-response on a BR-heavy market: identical
    equilibria, >= 2x faster (measured ~4-6x single-core)."""
    network = random_mec_network(150, rng=1)
    market = generate_market(network, n_providers=120, rng=2)
    game = market_game(market)
    start = greedy_feasible_profile(game)

    outcomes = {}
    timings = {}
    for engine in ("naive", "incremental"):
        result = best_response_dynamics(game, dict(start), engine=engine)
        outcomes[engine] = result
        timings[engine] = _best_of(
            lambda e=engine: best_response_dynamics(game, dict(start), engine=e),
            repeats=5,
        )

    naive, incremental = outcomes["naive"], outcomes["incremental"]
    assert incremental.profile == naive.profile
    assert incremental.moves == naive.moves
    assert incremental.rounds == naive.rounds
    assert incremental.converged and naive.converged

    speedup = timings["naive"] / timings["incremental"]
    _record(
        "engine",
        {
            "naive_s": timings["naive"],
            "incremental_s": timings["incremental"],
            "speedup": speedup,
            "moves": naive.moves,
        },
    )
    emit(
        f"[engine] best-response 120 players: naive {timings['naive']*1e3:.1f} ms, "
        f"incremental {timings['incremental']*1e3:.1f} ms -> {speedup:.1f}x"
    )
    assert speedup >= 2.0


def test_bench_parallel_sweep(config, emit):
    """Serial vs 4-worker Fig. 2-style sweep: bit-identical metrics; the
    pool must win >= 2x when the host actually has >= 4 CPUs."""
    serial_cfg = config.with_(workers=1)
    parallel_cfg = config.with_(workers=4)

    t0 = time.perf_counter()
    serial = fig2_network_size(serial_cfg)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = fig2_network_size(parallel_cfg)
    parallel_s = time.perf_counter() - t0

    assert serial.x_values == parallel.x_values
    for point_s, point_p in zip(serial.points, parallel.points):
        assert set(point_s) == set(point_p)
        for alg in point_s:
            for field in _METRIC_FIELDS:
                assert getattr(point_s[alg], field) == getattr(point_p[alg], field), (
                    f"{alg}.{field} differs between serial and 4-worker runs"
                )

    speedup = serial_s / parallel_s
    _record(
        "parallel_sweep",
        {
            "serial_s": serial_s,
            "parallel4_s": parallel_s,
            "speedup": speedup,
            "grid_tasks": len(serial.x_values) * config.repetitions,
        },
    )
    emit(
        f"[sweep] fig2 grid: serial {serial_s:.2f} s, 4 workers {parallel_s:.2f} s "
        f"-> {speedup:.2f}x (cpus={os.cpu_count()})"
    )
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.0

"""Engine and parallel-harness benchmarks (writes ``BENCH_engine.json``).

Times the two levers that speed figure regeneration up:

* the **incremental best-response engine** (compiled cost tables,
  delta-maintained loads/occupancy) against the naive reference loops, on
  a best-response-heavy game where the engine is the hot path;
* the **runtime-dispatched sweep harness** over a workers x
  instance-size scaling grid of the same seeded Fig. 2-style sweep
  (serial reference plus 2- and 4-worker :class:`repro.runtime.Runtime`
  pools on a small and a large tier).

Correctness is asserted unconditionally: both engines must produce the
identical equilibrium, and every point of the sweep scaling curve must
be bit-identical to the serial reference. Wall-clock assertions are
gated on what the host can honestly deliver — the engine speedup is
single-core and always asserted; the 4-worker break-even bar
additionally needs >= 4 CPUs.

Each test folds its timings into ``benchmarks/BENCH_engine.json`` so the
numbers survive the run (and partial ``-k`` selections merge instead of
clobbering).
"""

import os
import time

from repro.core.bridge import market_game
from repro.experiments.figures import fig2_network_size
from repro.game.best_response import best_response_dynamics, greedy_feasible_profile
from repro.market.workload import generate_market
from repro.network.generators import random_mec_network

from benchmarks.conftest import bench_path, record_bench

RESULTS_PATH = bench_path("BENCH_engine.json")

#: Comparable (non-wall-clock) fields of AlgorithmMetrics.
_METRIC_FIELDS = ("social_cost", "coordinated_cost", "selfish_cost", "rejected", "samples")


def _record(section: str, payload: dict) -> None:
    record_bench("BENCH_engine.json", section, payload)


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_bench_engine_vs_naive(emit):
    """Naive vs incremental best-response on a BR-heavy market: identical
    equilibria, >= 2x faster (measured ~4-6x single-core)."""
    network = random_mec_network(150, rng=1)
    market = generate_market(network, n_providers=120, rng=2)
    game = market_game(market)
    start = greedy_feasible_profile(game)

    outcomes = {}
    timings = {}
    for engine in ("naive", "incremental"):
        result = best_response_dynamics(game, dict(start), engine=engine)
        outcomes[engine] = result
        timings[engine] = _best_of(
            lambda e=engine: best_response_dynamics(game, dict(start), engine=e),
            repeats=5,
        )

    naive, incremental = outcomes["naive"], outcomes["incremental"]
    assert incremental.profile == naive.profile
    assert incremental.moves == naive.moves
    assert incremental.rounds == naive.rounds
    assert incremental.converged and naive.converged

    speedup = timings["naive"] / timings["incremental"]
    _record(
        "engine",
        {
            "naive_s": timings["naive"],
            "incremental_s": timings["incremental"],
            "speedup": speedup,
            "moves": naive.moves,
        },
    )
    emit(
        f"[engine] best-response 120 players: naive {timings['naive']*1e3:.1f} ms, "
        f"incremental {timings['incremental']*1e3:.1f} ms -> {speedup:.1f}x"
    )
    assert speedup >= 2.0


#: The workers x instance-size scaling grid.  Every cell reruns the same
#: seeded Fig. 2-style sweep through :class:`repro.runtime.Runtime` (the
#: one dispatch substrate the sweep harness now sits on), so the curve
#: measures exactly what a figure regeneration pays at each worker count.
_WORKER_COUNTS = (1, 2, 4)
_SIZE_TIERS = (
    ("small", (50, 100)),
    ("large", (150, 250)),
)


def test_bench_parallel_sweep(config, emit):
    """Workers x instance-size scaling curve of the runtime-dispatched
    sweep: bit-identical metrics at every point of the curve; with >= 4
    real CPUs the 4-worker run must at least break even against serial
    (the publish-once bar — the old inline-pickling path sat at 0.70x)."""
    curve = []
    for tier_name, sizes in _SIZE_TIERS:
        tier_cfg = config.with_(network_sizes=sizes)
        reference = None
        serial_s = None
        for workers in _WORKER_COUNTS:
            run_cfg = tier_cfg.with_(workers=workers)
            t0 = time.perf_counter()
            result = fig2_network_size(run_cfg)
            elapsed = time.perf_counter() - t0

            if reference is None:
                reference = result
                serial_s = elapsed
            else:
                assert result.x_values == reference.x_values
                for point_r, point_w in zip(reference.points, result.points):
                    assert set(point_r) == set(point_w)
                    for alg in point_r:
                        for field in _METRIC_FIELDS:
                            assert getattr(point_w[alg], field) == getattr(
                                point_r[alg], field
                            ), (
                                f"{alg}.{field} differs between serial and "
                                f"{workers}-worker runs on tier {tier_name}"
                            )
            curve.append(
                {
                    "tier": tier_name,
                    "network_sizes": list(sizes),
                    "grid_tasks": len(sizes) * config.repetitions,
                    "workers": workers,
                    "seconds": elapsed,
                    "speedup_vs_serial": serial_s / elapsed,
                }
            )
            emit(
                f"[sweep] fig2 {tier_name} tier ({'x'.join(map(str, sizes))}), "
                f"{workers} worker(s): {elapsed:.2f} s "
                f"({serial_s / elapsed:.2f}x vs serial, cpus={os.cpu_count()})"
            )

    best = max(
        (c for c in curve if c["workers"] > 1),
        key=lambda c: c["speedup_vs_serial"],
    )
    _record(
        "parallel_sweep",
        {
            "curve": curve,
            "best_speedup": best["speedup_vs_serial"],
            "best_workers": best["workers"],
            "best_tier": best["tier"],
        },
    )
    if (os.cpu_count() or 1) >= 4:
        four_large = next(
            c for c in curve
            if c["workers"] == 4 and c["tier"] == "large"
        )
        assert four_large["speedup_vs_serial"] >= 1.0, (
            f"4-worker sweep slower than serial on a >=4-CPU host: "
            f"{four_large['speedup_vs_serial']:.2f}x"
        )

"""Ablations A2–A4 — design choices DESIGN.md calls out.

A2: the Largest-Cost-First coordination rule vs smallest-cost vs random.
A3: the paper's linear congestion model vs quadratic vs M/M/1.
A4: the GAP engine inside Appro (Shmoys–Tardos vs greedy), plus the
    simulated-annealing upper-baseline.
"""

import numpy as np

from repro.core.annealing import annealed_caching
from repro.core.appro import appro
from repro.experiments.figures import (
    ablation_congestion_models,
    ablation_gap_solvers,
    ablation_selection_strategies,
    ablation_topologies,
)
from repro.experiments.report import render_sweep
from repro.market.workload import generate_market
from repro.network.generators import random_mec_network
from repro.utils.tables import Table


def test_bench_ablation_selection(benchmark, config, emit):
    result = benchmark.pedantic(
        ablation_selection_strategies, args=(config,), rounds=1, iterations=1
    )
    emit(render_sweep(result, metrics=("social_cost",)))
    # The three selection rules are close (how many providers are
    # coordinated matters more than which); see EXPERIMENTS.md A2 for the
    # honest finding that LCF's largest-cost rule is not the best of them
    # under the posted-price market.
    largest = np.mean(result.series("LCF(largest)"))
    random_sel = np.mean(result.series("LCF(random)"))
    smallest = np.mean(result.series("LCF(smallest)"))
    spread = max(largest, random_sel, smallest) / min(largest, random_sel, smallest)
    assert spread < 1.25


def test_bench_ablation_topologies(benchmark, config, emit):
    result = benchmark.pedantic(
        ablation_topologies, args=(config,), rounds=1, iterations=1
    )
    emit(render_sweep(result, metrics=("social_cost",)))
    # The headline ordering holds on every topology family.
    for i, _model in enumerate(result.x_values):
        point = result.points[i]
        assert point["LCF"].social_cost < point["JoOffloadCache"].social_cost


def test_bench_ablation_annealing(benchmark, config, emit):
    """How much headroom does Appro leave? Compare against a long
    simulated-annealing chain on the same (fully cacheable) markets."""

    def run():
        rows = []
        for seed in range(min(3, config.repetitions)):
            network = random_mec_network(config.default_size, rng=seed)
            market = generate_market(network, config.n_providers, rng=seed + 50)
            ap = appro(market, allow_remote=False)
            an = annealed_caching(market, iterations=30_000, rng=seed)
            rows.append((seed, ap.social_cost, an.social_cost))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(["seed", "Appro", "Annealed", "ratio"])
    for seed, ap_cost, an_cost in rows:
        table.add_row([seed, ap_cost, an_cost, ap_cost / an_cost])
    emit(table.render(title="[A4+] Appro vs simulated annealing"))
    # Appro's marginal pricing should stay within a few percent of the
    # annealed solution (which approaches the social optimum).
    mean_ratio = np.mean([ap / an for _, ap, an in rows])
    assert mean_ratio < 1.10


def test_bench_ablation_congestion(benchmark, config, emit):
    result = benchmark.pedantic(
        ablation_congestion_models, args=(config,), rounds=1, iterations=1
    )
    emit(render_sweep(result, metrics=("social_cost",)))
    # The ordering LCF < Jo holds under every non-decreasing model (the
    # paper's claim that only monotonicity matters).
    for i, _model in enumerate(result.x_values):
        assert result.points[i]["LCF"].social_cost < (
            result.points[i]["JoOffloadCache"].social_cost
        )


def test_bench_ablation_gap(benchmark, config, emit):
    result = benchmark.pedantic(
        ablation_gap_solvers, args=(config,), rounds=1, iterations=1
    )
    emit(render_sweep(result, metrics=("social_cost", "runtime_s")))
    st = result.points[0]["Appro(shmoys_tardos)"]
    greedy = result.points[0]["Appro(greedy)"]
    # The LP-based rounding never loses to the regret-greedy on quality
    # (runtimes are reported above; on one-service-per-slot instances the
    # LP + matching is in fact *faster* than the O(n^2 m) regret loop).
    assert st.social_cost <= greedy.social_cost * 1.02

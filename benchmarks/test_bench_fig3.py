"""Fig. 3 — the impact of the selfish fraction 1-xi at network size 250.

Regenerates all four panels over the 1-xi sweep.
"""

import numpy as np

from repro.experiments.figures import fig3_selfish_fraction
from repro.experiments.report import render_sweep


def test_bench_fig3(benchmark, config, emit):
    result = benchmark.pedantic(
        fig3_selfish_fraction, args=(config,), rounds=1, iterations=1
    )
    emit(render_sweep(
        result,
        metrics=("social_cost", "selfish_cost", "coordinated_cost", "runtime_s"),
    ))

    lcf = result.series("LCF")
    # Fig. 3(a): LCF's social cost grows with 1-xi ...
    assert lcf[-1] > lcf[0]
    # ... and LCF dominates the baselines while most providers are
    # coordinated (the paper's crossover appears only near 1-xi ~ 0.8).
    jo = result.series("JoOffloadCache")
    off = result.series("OffloadCache")
    mid = len(lcf) // 2
    assert all(l < j for l, j in zip(lcf[: mid + 1], jo[: mid + 1]))
    assert all(l < o for l, o in zip(lcf[: mid + 1], off[: mid + 1]))

    # Fig. 3(b)/(c): the split moves monotonically at the endpoints.
    selfish = result.series("LCF", "selfish_cost")
    coordinated = result.series("LCF", "coordinated_cost")
    assert selfish[0] == 0.0 and coordinated[-1] == 0.0
    assert selfish[-1] > selfish[0]
    assert coordinated[0] > coordinated[-1]

"""Fig. 6 — testbed parameter studies.

(a) impact of 1-xi on the social cost; (b) the same sweep's running times;
(c) impact of the number of service-caching requests; (d) impact of the
update data volume (1-5 GB service data at the 10% sync ratio).
"""

import numpy as np

from repro.experiments.figures import fig6_testbed_parameters
from repro.experiments.report import render_sweep


def test_bench_fig6(benchmark, config, emit):
    results = benchmark.pedantic(
        fig6_testbed_parameters, args=(config,), rounds=1, iterations=1
    )

    # (a) + (b): same sweep, two metrics.
    emit(render_sweep(results["a"], metrics=("social_cost", "runtime_s")))
    emit(render_sweep(results["c"], metrics=("social_cost",)))
    emit(render_sweep(results["d"], metrics=("social_cost",)))

    # Fig. 6(a): LCF degrades as 1-xi grows and undercuts the baselines
    # while coordination dominates.
    lcf_a = results["a"].series("LCF")
    assert lcf_a[-1] > lcf_a[0]
    jo_a = results["a"].series("JoOffloadCache")
    mid = len(lcf_a) // 2
    assert all(l < j for l, j in zip(lcf_a[: mid + 1], jo_a[: mid + 1]))

    # Fig. 6(c): more caching requests -> higher total cost (monotone).
    lcf_c = results["c"].series("LCF")
    assert all(b > a for a, b in zip(lcf_c, lcf_c[1:]))

    # Fig. 6(d): more update data -> higher total cost (endpoints).
    lcf_d = results["d"].series("LCF")
    assert lcf_d[-1] > lcf_d[0]

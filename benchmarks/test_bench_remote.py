"""Remote-transport benchmark (writes ``BENCH_remote.json``).

Measures what the spool protocol costs when it is *not* needed: trivial
tasks round-tripped through a single local ``repro host`` agent, against
the serial transport running the same batch inline. The number that
matters operationally is the per-task dispatch overhead (write task file
-> agent claims -> executes -> framed reply -> poller consumes): it is
the floor below which shipping a cell to another machine cannot pay.
Real workloads amortise it — a sweep cell settles a market for hundreds
of milliseconds — so the bar here is generous sanity, not speed: the
protocol must stay under ``OVERHEAD_BAR_S`` per task, and the publish
path must deduplicate (publishing the same payload twice ships one
blob).
"""

import multiprocessing
import os
import shutil
import tempfile
import time

from benchmarks.conftest import record_bench
from repro.runtime import RemoteTransport, SerialTransport, run_host_agent

RESULTS_NAME = "BENCH_remote.json"

#: Trivial tasks per batch (pure protocol overhead, no compute).
N_TASKS = 64

#: Per-task spool round-trip must stay under this (generous: CI boxes
#: share disks; typical local numbers are two orders of magnitude lower).
OVERHEAD_BAR_S = 0.5

_FORK = multiprocessing.get_context("fork")


def _noop(x):
    return x


def test_bench_remote_dispatch_overhead(emit):
    spool = tempfile.mkdtemp(prefix="repro-bench-spool-")
    agent = _FORK.Process(
        target=run_host_agent,
        args=(spool,),
        kwargs={"host_id": "bench-0", "lease_s": 10.0, "poll_interval_s": 0.002},
        daemon=True,
    )
    agent.start()
    tasks = list(range(N_TASKS))
    try:
        transport = RemoteTransport(
            spool, lease_s=10.0, poll_interval_s=0.005, claim_timeout_s=120.0
        )
        try:
            transport.wait_for_hosts(1, timeout_s=30.0)
            t0 = time.perf_counter()
            remote_results = transport.map(_noop, tasks)
            remote_s = time.perf_counter() - t0

            # Publish-once: the second publish of identical bytes is a
            # content-addressed cache hit, not a second blob. The payload
            # must exceed the spill threshold to exercise the shared
            # store (smaller payloads ride inline in the BlobRef).
            payload = list(range(100_000))
            t0 = time.perf_counter()
            ref_a = transport.publish(("bench", 0), payload)
            first_publish_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            ref_b = transport.publish(("bench", 0), payload)
            republish_s = time.perf_counter() - t0
            blobs = os.listdir(os.path.join(spool, "blobs"))
        finally:
            transport.close()
    finally:
        if agent.is_alive():
            agent.kill()
        agent.join(timeout=10.0)
        shutil.rmtree(spool, ignore_errors=True)

    serial = SerialTransport()
    try:
        t0 = time.perf_counter()
        serial_results = serial.map(_noop, tasks)
        serial_s = time.perf_counter() - t0
    finally:
        serial.close()

    assert remote_results == serial_results == tasks
    assert ref_a.token == ref_b.token
    assert len(blobs) == 1

    per_task_s = remote_s / N_TASKS
    payload_data = {
        "n_tasks": N_TASKS,
        "remote_batch_s": remote_s,
        "serial_batch_s": serial_s,
        "per_task_overhead_s": per_task_s,
        "tasks_per_s": N_TASKS / remote_s,
        "first_publish_s": first_publish_s,
        "republish_s": republish_s,
    }
    record_bench(RESULTS_NAME, "spool_dispatch", payload_data)
    emit(
        "remote spool dispatch: "
        f"{N_TASKS} no-op tasks in {remote_s:.3f}s "
        f"({per_task_s * 1e3:.1f} ms/task, serial batch {serial_s * 1e3:.2f} ms); "
        f"republish hit {republish_s * 1e3:.2f} ms vs first {first_publish_s * 1e3:.2f} ms"
    )
    assert per_task_s < OVERHEAD_BAR_S
